//! Workspace-level helpers shared by the runnable examples and the
//! cross-crate integration tests.
//!
//! The actual library lives in the `crates/` members; see the
//! [`diffpattern`] facade crate. This package only adds small utilities
//! for scaling example runs via environment variables.

use rand::SeedableRng;

/// Reads a `usize` knob from the environment with a default, so examples
/// can be scaled up (`DP_GENERATE=1000 cargo run --release --example
/// table1_comparison`) without recompiling.
pub fn env_knob(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Deterministic RNG for examples, seedable via `DP_SEED`.
pub fn example_rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(env_knob("DP_SEED", 42) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_defaults() {
        assert_eq!(env_knob("DP_SURELY_UNSET_KNOB", 7), 7);
    }

    #[test]
    fn rng_is_deterministic() {
        use rand::RngCore;
        let mut a = example_rng();
        let mut b = example_rng();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
