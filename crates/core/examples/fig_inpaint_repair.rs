//! `fig_inpaint_repair` — conditional generation in both directions:
//! **extend** (freeze a region of a sampled topology and let the model
//! redraw the rest) and **repair** (thaw exactly the DRC-violating
//! neighbourhood of a dirty layout and inpaint it legal).
//!
//! ```text
//! cargo run --release --example fig_inpaint_repair
//! ```
//!
//! The run asserts the two contracts the conditioning stack promises:
//! every delivered pattern carries the frozen bits exactly, and the
//! repair workload reaches at least 95 % DRC-clean.

use diffpattern::drc::check_pattern;
use diffpattern::geometry::{BitGrid, Layout, Rect};
use diffpattern::render::pattern_to_ascii;
use diffpattern::squish::{extend_to_side, DeepSquishTensor, SquishPattern};
use diffpattern::{
    hotspot_guidance, repair_conditioning, Conditioning, FrozenRegion, PatternService, Pipeline,
    PipelineConfig, RequestSpec,
};
use rand::SeedableRng;
use std::sync::Arc;

const TRAIN_ITERS: usize = 600;
const EXTEND_COUNT: usize = 4;
const REPAIR_CASES: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng)?;
    eprintln!("training {TRAIN_ITERS} iterations...");
    let _ = pipeline.train(TRAIN_ITERS, &mut rng)?;
    let base = pipeline.request_spec(EXTEND_COUNT).seed(7);
    let model = Arc::new(pipeline.into_trained_model()?);
    let channels = model.channels();
    let patch = (0..=channels)
        .find(|p| p * p == channels)
        .expect("square channel count");
    let side = patch * model.side();
    let service = PatternService::builder(Arc::clone(&model))
        .micro_batch(4)
        .build()?;

    // ---- Extend: freeze the lower-left quadrant of a sampled base ----
    let donor_spec = RequestSpec {
        count: 1,
        ..base.clone()
    }
    .seed(base.seed ^ 0x5EED);
    let (topologies, _) = service.sample_topologies(&donor_spec)?;
    let donor = topologies.into_iter().next().ok_or("no base topology")?;
    let mut mask = BitGrid::new(side, side).expect("side > 0");
    for row in 0..side / 2 {
        for col in 0..side / 2 {
            mask.set(col, row, true);
        }
    }
    let mask_t = DeepSquishTensor::fold(&mask, channels)?;
    let bits_t = DeepSquishTensor::fold(&donor, channels)?;
    let region = FrozenRegion::new(mask_t.bits().to_vec(), bits_t.bits().to_vec())?;
    let extend_spec = base.clone().conditioning(
        Conditioning::none()
            .with_frozen(region.clone())
            .with_avoid(hotspot_guidance(&base.rules)),
    );
    let extended = service.generate(&extend_spec)?;
    for g in &extended.items {
        assert_frozen(&g.pattern, &region, channels)?;
        assert!(
            check_pattern(&g.pattern, &base.rules).is_clean(),
            "extended pattern {} is not DRC-clean",
            g.provenance.index
        );
    }
    eprintln!(
        "extend: {} patterns, frozen quadrant preserved on all, all DRC-clean \
         ({} slots fell short)",
        extended.items.len(),
        extended.report.shortfall
    );
    if let Some(g) = extended.items.first() {
        println!("--- extension of the frozen quadrant ---");
        println!("{}", pattern_to_ascii(&g.pattern, 48, 20));
    }

    // ---- Repair: inpaint the violating gap of dirty two-bar layouts ----
    let rules = base.rules;
    let mut submitted = Vec::new();
    for case in 0..REPAIR_CASES {
        let dirty = dirty_layout(case as i64);
        let pattern = SquishPattern::encode(&dirty);
        assert!(
            !check_pattern(&pattern, &rules).is_clean(),
            "case {case} should start dirty"
        );
        let (ext, _) = extend_to_side(&pattern, side)?;
        let cond = repair_conditioning(&ext, &rules, channels)
            .ok_or_else(|| format!("case {case}: no repair constraint"))?;
        let spec = RequestSpec {
            count: 1,
            rules,
            max_attempts: 16,
            ..base.clone()
        }
        .seed(1_000 + case as u64)
        .conditioning(cond.clone());
        submitted.push((case, cond, service.submit(&spec)?));
    }
    let mut repaired = 0usize;
    for (case, cond, handle) in submitted {
        let batch = handle.wait()?;
        let Some(g) = batch.items.first() else {
            eprintln!("repair case {case}: fell short");
            continue;
        };
        let region = cond.frozen().expect("repair always freezes");
        assert_frozen(&g.pattern, region, channels)?;
        if check_pattern(&g.pattern, &rules).is_clean() {
            repaired += 1;
        }
    }
    eprintln!("repair: {repaired}/{REPAIR_CASES} dirty layouts repaired to DRC-clean");
    assert!(
        repaired * 20 >= REPAIR_CASES * 19,
        "repair workload below 95% DRC-clean ({repaired}/{REPAIR_CASES})"
    );
    println!("inpaint+repair contracts hold: frozen bits exact, repair {repaired}/{REPAIR_CASES}");
    Ok(())
}

/// Two legal bars plus a 20 nm gap — always dirty under the standard
/// 40 nm spacing rule; `case` shifts the geometry so every case is a
/// distinct pattern.
fn dirty_layout(case: i64) -> Layout {
    let mut l = Layout::new(Rect::new(0, 0, 2048, 2048).unwrap());
    let x = 100 + 30 * case;
    l.push(Rect::new(x, 100, x + 300, 1000 + 20 * case).unwrap());
    l.push(Rect::new(x + 320, 100, x + 600, 1000 + 20 * case).unwrap());
    l
}

fn assert_frozen(
    pattern: &SquishPattern,
    region: &FrozenRegion,
    channels: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let tensor = DeepSquishTensor::fold(pattern.topology(), channels)?;
    for (i, (&frozen, &want)) in region.mask().iter().zip(region.bits()).enumerate() {
        if frozen && tensor.bits()[i] != want {
            return Err(format!("frozen entry {i} diverged").into());
        }
    }
    Ok(())
}
