//! # DiffPattern — reliable layout pattern generation via discrete diffusion
//!
//! A from-scratch Rust reproduction of *"DiffPattern: Layout Pattern
//! Generation via Discrete Diffusion"* (DAC 2023, arXiv:2303.13060). The
//! system generates VLSI layout pattern libraries in three phases
//! (paper Fig. 4):
//!
//! 1. **Deep Squish representation** — layouts are losslessly encoded as a
//!    binary topology tensor plus geometric Δ vectors
//!    ([`dp_squish`]),
//! 2. **Topology tensor generation** — a discrete diffusion model over the
//!    binary state space synthesises fresh topologies, no thresholding
//!    anywhere ([`dp_diffusion`]),
//! 3. **2-D legal pattern assessment** — a white-box nonlinear solver
//!    assigns design-rule-clean Δ vectors ([`dp_legalize`]), giving a
//!    100 % legality rate by construction.
//!
//! This crate is the facade, built around an explicit **train/infer
//! split**:
//!
//! * [`Pipeline`] builds the dataset and trains the diffusion model;
//! * [`TrainedModel`] is the frozen, immutable artifact of training
//!   (weights + schedule + fold geometry, `TrainedModel::save`/`load` for
//!   persistence) — every operation takes `&self`, so one model serves any
//!   number of threads;
//! * [`PatternService`] is the serving engine: an owned, long-lived pool
//!   over an `Arc<TrainedModel>` that multiplexes many concurrent
//!   requests and fills every denoising micro-batch **across requests**,
//!   streaming each request's items through a `'static` [`RequestHandle`]
//!   that cancels on drop — with output bit-identical regardless of
//!   concurrent load, worker count, or admission order;
//! * [`Conditioning`] makes any request conditional: frozen-region
//!   inpainting ([`FrozenRegion`]) and hotspot-avoidance guidance
//!   ([`MotifGuidance`]) ride on [`RequestSpec`] per lane — recipes in
//!   [`hotspot_guidance`] and [`repair_conditioning`] — without changing
//!   the determinism contract;
//! * [`GenerationSession`] is the borrowing, single-request flavour of the
//!   same engine: builder-configured, fallible
//!   ([`ConfigError`]/[`GenerateError`]), thread-parallel and
//!   **deterministic per seed regardless of thread count**, streaming
//!   [`Generated`] items with full [`Provenance`];
//! * [`PatternSource`] unifies the diffusion path and all four baseline
//!   generators behind one interface for the comparison harnesses
//!   ([`table1`], [`table2`]) and the `dpgen` CLI;
//! * [`render`] produces the ASCII/PGM artwork for the figure examples.
//!
//! # Quickstart
//!
//! ```no_run
//! use diffpattern::{GenerationSession, Pipeline, PipelineConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//!
//! // Train.
//! let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::default(), &mut rng)?;
//! pipeline.train(200, &mut rng)?;
//!
//! // Freeze: an immutable, shareable, saveable model.
//! let model = pipeline.trained_model()?;
//! std::fs::write("model.dpm", model.save())?;
//!
//! // Infer: batch generation across all cores, bit-identical per seed.
//! let session = pipeline.session_builder(&model).seed(7).build()?;
//! let batch = session.generate(16)?;
//! println!(
//!     "generated {} legal patterns ({} slots fell short)",
//!     batch.items.len(),
//!     batch.report.shortfall
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # Serving many requests: `GenerationSession` → `PatternService`
//!
//! A session is the right tool for one borrower generating batches; a
//! service is the right tool for a long-lived process answering many
//! small requests (per-ruleset libraries, rule sweeps, concurrent
//! callers). The mapping:
//!
//! | `GenerationSession` | `PatternService` |
//! |---|---|
//! | `GenerationSession::builder(&model)` | [`PatternService::builder`]`(Arc<TrainedModel>)` |
//! | builder `rules`/`solver_config`/`sample_stride`/… | per-request [`RequestSpec`] fields |
//! | builder `threads` / `micro_batch` | service-level pool knobs (shared by all requests) |
//! | `session.generate(count)` | `service.submit(&spec)?` + [`RequestHandle::wait`] |
//! | `session.generate_streaming(count, f)` | iterate the [`RequestHandle`] |
//! | `session.sample_topologies(count)` | [`PatternService::sample_topologies`] |
//! | fresh worker pool per call | persistent pool, micro-batches filled **across requests** |
//! | abandon = wait for the call | drop the [`RequestHandle`] = cancel |
//!
//! Both run the same scheduler core, so the determinism contract is
//! shared: a request/batch is fully determined by its seed and spec,
//! bit-identical at every thread count, micro-batch size, priority, and
//! concurrent load.
//!
//! # Migrating from the monolithic `Pipeline` API
//!
//! The pre-0.2 `Pipeline` generation shims (deprecated since 0.2) were
//! removed in 0.3:
//!
//! | Removed | Replacement |
//! |---|---|
//! | `Pipeline::generate_legal_patterns` | [`GenerationSession::generate`] / [`PatternService::generate`] |
//! | `Pipeline::generate_topologies` | [`GenerationSession::sample_topologies`] |
//! | `Pipeline::legalize_topologies` | [`GenerationSession::generate`] (one pass) |
//! | `Pipeline::legalize_variants` | [`GenerationSession::legalize_variants`] |
//! | `Pipeline::denoiser_mut` + `dp_nn::save_params` | [`TrainedModel::save`] |
//! | `dp_nn::load_params` + `Pipeline::mark_trained` | [`TrainedModel::load`] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod conditioning;
mod engine;
mod error;
pub mod library_sink;
pub mod metrics;
mod pipeline;
pub mod render;
mod service;
mod session;
mod source;
pub mod table1;
pub mod table2;

pub use conditioning::{hotspot_guidance, repair_conditioning};
pub use error::{ConfigError, GenerateError, PipelineError};
pub use library_sink::{LibrarySink, SinkError, SinkReport};
pub use metrics::{evaluate_patterns, MethodRow};
pub use pipeline::{BackboneConfig, Pipeline, PipelineConfig, PipelineReport};
pub use service::{
    PatternService, RecvPoll, RequestHandle, RequestSpec, ServiceBuilder, ServiceStats,
};
pub use session::{Generated, Generation, GenerationSession, Provenance, SessionBuilder};
pub use source::{
    DiffusionSource, DiffusionVariantsSource, PatternSource, PixelSource, SequenceSource,
    SourceBatch,
};

pub use dp_diffusion::{Conditioning, FrozenRegion, Motif, MotifGuidance, Precision, TrainedModel};

pub use dp_baselines as baselines;
pub use dp_datagen as datagen;
pub use dp_diffusion as diffusion;
pub use dp_drc as drc;
pub use dp_geometry as geometry;
pub use dp_legalize as legalize;
pub use dp_library as library;
pub use dp_nn as nn;
pub use dp_squish as squish;
