//! # DiffPattern — reliable layout pattern generation via discrete diffusion
//!
//! A from-scratch Rust reproduction of *"DiffPattern: Layout Pattern
//! Generation via Discrete Diffusion"* (DAC 2023, arXiv:2303.13060). The
//! system generates VLSI layout pattern libraries in three phases
//! (paper Fig. 4):
//!
//! 1. **Deep Squish representation** — layouts are losslessly encoded as a
//!    binary topology tensor plus geometric Δ vectors
//!    ([`dp_squish`]),
//! 2. **Topology tensor generation** — a discrete diffusion model over the
//!    binary state space synthesises fresh topologies, no thresholding
//!    anywhere ([`dp_diffusion`]),
//! 3. **2-D legal pattern assessment** — a white-box nonlinear solver
//!    assigns design-rule-clean Δ vectors ([`dp_legalize`]), giving a
//!    100 % legality rate by construction.
//!
//! This crate is the facade: [`Pipeline`] wires the phases together,
//! [`table1`] and [`table2`] regenerate the paper's quantitative results,
//! and [`render`] produces the ASCII/PGM artwork for the figure examples.
//!
//! # Quickstart
//!
//! ```no_run
//! use diffpattern::{Pipeline, PipelineConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let config = PipelineConfig::default();
//! let mut pipeline = Pipeline::from_synthetic_map(config, &mut rng)?;
//! pipeline.train(200, &mut rng)?;
//! let patterns = pipeline.generate_legal_patterns(16, &mut rng)?;
//! println!("generated {} legal patterns", patterns.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod metrics;
mod pipeline;
pub mod render;
pub mod table1;
pub mod table2;

pub use error::PipelineError;
pub use metrics::{evaluate_patterns, MethodRow};
pub use pipeline::{Pipeline, PipelineConfig, PipelineReport};

pub use dp_baselines as baselines;
pub use dp_datagen as datagen;
pub use dp_diffusion as diffusion;
pub use dp_drc as drc;
pub use dp_geometry as geometry;
pub use dp_legalize as legalize;
pub use dp_nn as nn;
pub use dp_squish as squish;
