//! Rendering helpers for the figure-reproduction examples: ASCII art for
//! terminals and binary PGM images for files.

use dp_geometry::{BitGrid, Layout};
use dp_squish::SquishPattern;
use std::io::Write;
use std::path::Path;

/// Renders a topology matrix as ASCII art, top row first (`#` = shape).
pub fn grid_to_ascii(grid: &BitGrid) -> String {
    let mut out = String::with_capacity((grid.width() + 1) * grid.height());
    for row in (0..grid.height()).rev() {
        for col in 0..grid.width() {
            out.push(if grid.get(col, row) { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Renders a physical layout as `cols x rows` ASCII art by sampling cell
/// centres (`#` = covered).
///
/// # Panics
///
/// Panics when `cols` or `rows` is zero.
pub fn layout_to_ascii(layout: &Layout, cols: usize, rows: usize) -> String {
    assert!(cols > 0 && rows > 0, "zero render size");
    let window = layout.window();
    let mut out = String::with_capacity((cols + 1) * rows);
    for r in (0..rows).rev() {
        for c in 0..cols {
            let x = window.x0() + (window.width() * (2 * c as i64 + 1)) / (2 * cols as i64);
            let y = window.y0() + (window.height() * (2 * r as i64 + 1)) / (2 * rows as i64);
            let covered = layout
                .rects()
                .iter()
                .any(|rect| rect.contains(dp_geometry::Point::new(x, y)));
            out.push(if covered { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Renders a squish pattern's physical layout as ASCII art.
pub fn pattern_to_ascii(pattern: &SquishPattern, cols: usize, rows: usize) -> String {
    match pattern.decode() {
        Ok(layout) => layout_to_ascii(&layout, cols, rows),
        Err(_) => grid_to_ascii(pattern.topology()),
    }
}

/// Writes a layout as a binary PGM image of `size x size` pixels
/// (shape = black).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn layout_to_pgm(layout: &Layout, size: usize, path: &Path) -> std::io::Result<()> {
    let window = layout.window();
    let mut pixels = vec![255u8; size * size];
    for rect in layout.rects() {
        let sx =
            |x: i64| ((x - window.x0()) as i128 * size as i128 / window.width() as i128) as usize;
        let sy =
            |y: i64| ((y - window.y0()) as i128 * size as i128 / window.height() as i128) as usize;
        let (c0, c1) = (sx(rect.x0()), sx(rect.x1()).min(size));
        let (r0, r1) = (sy(rect.y0()), sy(rect.y1()).min(size));
        for r in r0..r1 {
            for c in c0..c1 {
                // PGM row 0 is the top of the image.
                pixels[(size - 1 - r) * size + c] = 0;
            }
        }
    }
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "P5\n{size} {size}\n255")?;
    file.write_all(&pixels)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geometry::Rect;

    #[test]
    fn grid_ascii_orientation() {
        let g = BitGrid::from_ascii(
            ".#
             #.",
        )
        .unwrap();
        assert_eq!(grid_to_ascii(&g), ".#\n#.\n");
    }

    #[test]
    fn layout_ascii_coverage() {
        let mut l = Layout::new(Rect::new(0, 0, 100, 100).unwrap());
        l.push(Rect::new(0, 0, 50, 100).unwrap());
        let art = layout_to_ascii(&l, 4, 2);
        // Left half covered: rows read "##..".
        assert_eq!(art, "##..\n##..\n");
    }

    #[test]
    fn pattern_ascii_decodes() {
        let mut l = Layout::new(Rect::new(0, 0, 100, 100).unwrap());
        l.push(Rect::new(25, 25, 75, 75).unwrap());
        let p = SquishPattern::encode(&l);
        let art = pattern_to_ascii(&p, 4, 4);
        assert!(art.contains('#'));
        assert!(art.contains('.'));
    }

    #[test]
    fn pgm_file_is_written() {
        let dir = std::env::temp_dir().join("dp_render_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.pgm");
        let mut l = Layout::new(Rect::new(0, 0, 100, 100).unwrap());
        l.push(Rect::new(0, 0, 100, 50).unwrap());
        layout_to_pgm(&l, 16, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5"));
        // 16x16 payload plus header.
        assert!(bytes.len() > 256);
        std::fs::remove_file(&path).unwrap();
    }
}
