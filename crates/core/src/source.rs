//! [`PatternSource`]: one interface over every pattern generator.
//!
//! The Table I comparison, the `dpgen` CLI and the examples all need the
//! same thing — "give me N squish patterns" — from five very different
//! engines: the discrete-diffusion [`PatternService`] and the four
//! baseline generators ([`Cae`], [`Vcae`], the LegalGAN-style
//! [`MorphLegalizer`] post-processor, and the LayouTransformer-style
//! [`SequenceModel`]). This module unifies them behind one object-safe
//! trait so harness code iterates a `Vec<Box<dyn PatternSource>>` instead
//! of hand-wiring each method.

use crate::{PatternService, PipelineError, RequestSpec};
use dp_baselines::{
    assign_borrowed_deltas, AeConfig, Cae, MorphLegalizer, SequenceModel, SequenceModelConfig, Vcae,
};
use dp_geometry::{BitGrid, Coord};
use dp_legalize::Solver;
use dp_squish::SquishPattern;
use rand::{Rng, RngCore};
use std::rc::Rc;

/// What a source hands back for one request.
#[derive(Debug, Clone)]
pub struct SourceBatch {
    /// The generated patterns.
    pub patterns: Vec<SquishPattern>,
    /// Distinct topologies behind the patterns, when the method has that
    /// notion (`None` for sources that generate in physical coordinates).
    pub topologies: Option<usize>,
}

/// A uniform, object-safe interface over pattern generators: the diffusion
/// service and all four baselines implement it, so comparison harnesses
/// drive every method through the same loop.
pub trait PatternSource {
    /// Method name as printed in Table I.
    fn name(&self) -> String;

    /// Generates a batch of `count` patterns.
    ///
    /// For topology-per-pattern methods `count` is the number of
    /// topologies; [`DiffusionVariantsSource`] expands each into multiple
    /// legal patterns.
    ///
    /// # Errors
    ///
    /// [`PipelineError`] on structural or configuration failures; methods
    /// that can fall short return fewer patterns instead.
    fn generate(
        &mut self,
        count: usize,
        rng: &mut dyn RngCore,
    ) -> Result<SourceBatch, PipelineError>;
}

/// DiffPattern-S through a [`PatternService`]: one legal pattern per
/// sampled topology. Ignores the passed RNG — the spec's seed fully
/// determines the batch (that is the determinism contract). Successive
/// `generate` calls submit independent requests against the shared
/// engine, so several sources over one service micro-batch together.
#[derive(Debug)]
pub struct DiffusionSource<'s> {
    service: &'s PatternService,
    spec: RequestSpec,
    label: String,
}

impl<'s> DiffusionSource<'s> {
    /// Wraps a service under the given Table I label; `spec` supplies
    /// rules, seed, stride and donors (its `count` is overridden per
    /// call).
    pub fn new(service: &'s PatternService, spec: RequestSpec, label: impl Into<String>) -> Self {
        DiffusionSource {
            service,
            spec,
            label: label.into(),
        }
    }
}

impl PatternSource for DiffusionSource<'_> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn generate(
        &mut self,
        count: usize,
        _rng: &mut dyn RngCore,
    ) -> Result<SourceBatch, PipelineError> {
        let spec = RequestSpec {
            count,
            ..self.spec.clone()
        };
        let batch = self.service.generate(&spec)?;
        Ok(SourceBatch {
            topologies: Some(batch.items.len()),
            patterns: batch.items.into_iter().map(|g| g.pattern).collect(),
        })
    }
}

/// DiffPattern-L: `count` topologies from the service (same seed ⇒ the
/// same topologies as [`DiffusionSource`]), each legalized into up to
/// `variants_per_topology` distinct patterns by a solver built from the
/// spec's rules.
#[derive(Debug)]
pub struct DiffusionVariantsSource<'s> {
    service: &'s PatternService,
    spec: RequestSpec,
    solver: Solver,
    variants_per_topology: usize,
    label: String,
}

impl<'s> DiffusionVariantsSource<'s> {
    /// Wraps a service under the given label.
    pub fn new(
        service: &'s PatternService,
        spec: RequestSpec,
        variants_per_topology: usize,
        label: impl Into<String>,
    ) -> Self {
        let solver = Solver::new(spec.rules, spec.solver);
        DiffusionVariantsSource {
            service,
            spec,
            solver,
            variants_per_topology,
            label: label.into(),
        }
    }
}

impl PatternSource for DiffusionVariantsSource<'_> {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn generate(
        &mut self,
        count: usize,
        rng: &mut dyn RngCore,
    ) -> Result<SourceBatch, PipelineError> {
        let spec = RequestSpec {
            count,
            ..self.spec.clone()
        };
        let (topologies, _) = self.service.sample_topologies(&spec)?;
        let mut patterns = Vec::new();
        for topo in &topologies {
            let (mut variants, _report) = crate::engine::legalize_variants_with(
                &self.solver,
                topo,
                self.variants_per_topology,
                &mut &mut *rng,
            )?;
            patterns.append(&mut variants);
        }
        Ok(SourceBatch {
            patterns,
            topologies: Some(topologies.len()),
        })
    }
}

/// Which pixel-space baseline generator a [`PixelSource`] wraps.
#[derive(Debug, Clone)]
enum PixelModel {
    Cae { cae: Cae, noise: f32 },
    Vcae(Vcae),
}

/// A pixel-space baseline (CAE or VCAE), optionally post-processed by the
/// LegalGAN-style morphological legalizer, with borrowed Δ assignment —
/// the implicit delta mechanism the paper criticises.
///
/// Seed grids and donor patterns are taken as `Rc` slices so every
/// source built over the same dataset (CAE, VCAE, their `+LegalGAN`
/// copies) shares one allocation instead of duplicating the training set.
#[derive(Debug, Clone)]
pub struct PixelSource {
    name: String,
    model: PixelModel,
    seeds: Rc<[BitGrid]>,
    donors: Rc<[SquishPattern]>,
    window: Coord,
    legalizer: Option<MorphLegalizer>,
}

impl PixelSource {
    /// Trains a CAE on `grids` (also kept as the perturbation seeds) and
    /// wraps it as a source. `donors` supply the borrowed Δ vectors,
    /// `window` the tile size.
    pub fn fit_cae(
        name: impl Into<String>,
        config: AeConfig,
        grids: Rc<[BitGrid]>,
        donors: Rc<[SquishPattern]>,
        window: Coord,
        iterations: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut cae = Cae::new(config, rng);
        let _ = cae.train(&grids, iterations, 8, rng);
        PixelSource {
            name: name.into(),
            model: PixelModel::Cae { cae, noise: 0.5 },
            seeds: grids,
            donors,
            window,
            legalizer: None,
        }
    }

    /// Trains a VCAE on `grids` and wraps it as a source (a VCAE samples
    /// from the prior, so no seed grids are retained).
    pub fn fit_vcae(
        name: impl Into<String>,
        config: AeConfig,
        grids: &[BitGrid],
        donors: Rc<[SquishPattern]>,
        window: Coord,
        iterations: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut vcae = Vcae::new(config, 0.05, rng);
        let _ = vcae.train(grids, iterations, 8, rng);
        PixelSource {
            name: name.into(),
            model: PixelModel::Vcae(vcae),
            seeds: Rc::from([]),
            donors,
            window,
            legalizer: None,
        }
    }

    /// A copy of this source (sharing the trained weights) that runs the
    /// LegalGAN-style morphological legalizer on every topology — the
    /// "+LegalGAN" rows of Table I without retraining the generator.
    pub fn with_legalizer(&self, name: impl Into<String>, legalizer: MorphLegalizer) -> Self {
        PixelSource {
            name: name.into(),
            legalizer: Some(legalizer),
            ..self.clone()
        }
    }
}

impl PatternSource for PixelSource {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn generate(
        &mut self,
        count: usize,
        rng: &mut dyn RngCore,
    ) -> Result<SourceBatch, PipelineError> {
        let mut patterns = Vec::with_capacity(count);
        for _ in 0..count {
            let mut topo = match &mut self.model {
                PixelModel::Cae { cae, noise } => {
                    let noise = *noise;
                    cae.generate(&self.seeds, noise, &mut &mut *rng)
                }
                PixelModel::Vcae(vcae) => vcae.generate(&mut &mut *rng),
            };
            if let Some(legalizer) = &self.legalizer {
                topo = legalizer.legalize(&topo);
            }
            patterns.push(assign_borrowed_deltas(
                &topo,
                &self.donors,
                self.window,
                &mut &mut *rng,
            ));
        }
        Ok(SourceBatch {
            topologies: Some(count),
            patterns,
        })
    }
}

/// The LayouTransformer-style baseline: sequential polygon generation in
/// physical coordinates (native Δ vectors, no borrowing).
#[derive(Debug, Clone)]
pub struct SequenceSource {
    name: String,
    model: SequenceModel,
}

impl SequenceSource {
    /// Fits the order-2 Markov sequence model on `donors`.
    pub fn fit(name: impl Into<String>, donors: &[SquishPattern], window: Coord) -> Self {
        SequenceSource {
            name: name.into(),
            model: SequenceModel::fit(
                donors,
                SequenceModelConfig {
                    window,
                    ..SequenceModelConfig::default()
                },
            ),
        }
    }
}

impl PatternSource for SequenceSource {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn generate(
        &mut self,
        count: usize,
        rng: &mut dyn RngCore,
    ) -> Result<SourceBatch, PipelineError> {
        let patterns = (0..count)
            .map(|_| SquishPattern::encode(&self.model.generate(&mut &mut *rng)))
            .collect();
        Ok(SourceBatch {
            patterns,
            topologies: None,
        })
    }
}
