use std::fmt;

/// Error type for pipeline orchestration.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// Dataset construction produced no usable tiles.
    EmptyDataset,
    /// The diffusion substrate reported an error.
    Diffusion(dp_diffusion::DiffusionError),
    /// The design rules were inconsistent.
    Rules(dp_drc::RulesError),
    /// Generation was requested before training.
    NotTrained,
    /// The pipeline configuration was invalid.
    Config(ConfigError),
    /// Pattern generation failed structurally.
    Generate(GenerateError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::EmptyDataset => write!(f, "no usable tiles in the dataset"),
            PipelineError::Diffusion(e) => write!(f, "diffusion error: {e}"),
            PipelineError::Rules(e) => write!(f, "design rule error: {e}"),
            PipelineError::NotTrained => {
                write!(f, "generation requested before the model was trained")
            }
            PipelineError::Config(e) => write!(f, "configuration error: {e}"),
            PipelineError::Generate(e) => write!(f, "generation error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Diffusion(e) => Some(e),
            PipelineError::Rules(e) => Some(e),
            PipelineError::Config(e) => Some(e),
            PipelineError::Generate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dp_diffusion::DiffusionError> for PipelineError {
    fn from(e: dp_diffusion::DiffusionError) -> Self {
        PipelineError::Diffusion(e)
    }
}

impl From<dp_drc::RulesError> for PipelineError {
    fn from(e: dp_drc::RulesError) -> Self {
        PipelineError::Rules(e)
    }
}

impl From<ConfigError> for PipelineError {
    fn from(e: ConfigError) -> Self {
        PipelineError::Config(e)
    }
}

impl From<GenerateError> for PipelineError {
    fn from(e: GenerateError) -> Self {
        PipelineError::Generate(e)
    }
}

/// A rejected configuration — returned by the builders
/// ([`crate::GenerationSession::builder`], [`crate::Pipeline::from_tiles`])
/// instead of panicking, so services can validate untrusted configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The reverse-sampling stride must be at least 1.
    ZeroStride,
    /// The per-item sampling attempt budget must be at least 1.
    ZeroAttempts,
    /// The sampling micro-batch (denoising lanes per U-Net call) must be
    /// at least 1.
    ZeroMicroBatch,
    /// The fold channel count must be a perfect square.
    ChannelsNotSquare {
        /// Offending channel count.
        channels: usize,
    },
    /// The topology matrix side must be divisible by the fold patch `√C`.
    SideNotDivisible {
        /// Configured matrix side.
        matrix_side: usize,
        /// Fold patch side `√C`.
        patch: usize,
    },
    /// Admission backpressure: the service's pending-request queue is at
    /// its [`crate::ServiceBuilder::max_queued_requests`] bound. Not a
    /// misconfiguration of the spec — retry after the queue drains (a
    /// serving front-end maps this to HTTP 429).
    QueueFull {
        /// Requests pending when admission was refused.
        queued: usize,
        /// The configured bound.
        max_queued: usize,
    },
    /// `first_index + count` overflows `usize` — the request's absolute
    /// item-index range is unrepresentable.
    IndexOverflow {
        /// The spec's `first_index`.
        first_index: usize,
        /// The spec's `count`.
        count: usize,
    },
    /// A frozen-region conditioning does not span the model's topology
    /// tensor: inpainting masks must cover every channel-major entry.
    ConditioningShape {
        /// Entries in the model's topology tensor (`C · M · M`).
        expected: usize,
        /// Entries the spec's frozen mask actually covers.
        mask: usize,
    },
    /// The solver window is smaller than the topology's scan-line count.
    WindowTooSmall {
        /// Unfolded topology matrix side (scan lines per axis).
        matrix_side: usize,
        /// Configured window width in nm.
        target_width: i64,
        /// Configured window height in nm.
        target_height: i64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroStride => write!(f, "sample stride must be at least 1"),
            ConfigError::ZeroAttempts => {
                write!(f, "per-item sampling attempt budget must be at least 1")
            }
            ConfigError::ZeroMicroBatch => {
                write!(f, "sampling micro-batch must be at least 1")
            }
            ConfigError::ChannelsNotSquare { channels } => {
                write!(f, "fold channel count {channels} is not a perfect square")
            }
            ConfigError::QueueFull { queued, max_queued } => write!(
                f,
                "admission queue is full ({queued} pending, bound {max_queued}); retry later"
            ),
            ConfigError::IndexOverflow { first_index, count } => write!(
                f,
                "first_index {first_index} + count {count} overflows the item index space"
            ),
            ConfigError::ConditioningShape { expected, mask } => write!(
                f,
                "frozen-region mask covers {mask} entries but the model's \
                 topology tensor has {expected}"
            ),
            ConfigError::SideNotDivisible { matrix_side, patch } => write!(
                f,
                "matrix side {matrix_side} is not divisible by the fold patch {patch}"
            ),
            ConfigError::WindowTooSmall {
                matrix_side,
                target_width,
                target_height,
            } => write!(
                f,
                "solver window {target_width}x{target_height} nm cannot hold \
                 {matrix_side} scan intervals per axis"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A structural failure during batch generation. Ordinary solver
/// infeasibility and pre-filter rejections are *not* errors — they are
/// counted in the [`crate::PipelineReport`] (including its `shortfall`
/// field); this type covers failures that indicate a broken invariant.
#[derive(Debug)]
#[non_exhaustive]
pub enum GenerateError {
    /// The solver's Δ vectors did not match the topology they were solved
    /// for — a solver/squish contract violation.
    Assembly(dp_squish::SquishError),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::Assembly(e) => {
                write!(f, "solver output did not assemble into a pattern: {e}")
            }
        }
    }
}

impl std::error::Error for GenerateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GenerateError::Assembly(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PipelineError::from(dp_diffusion::DiffusionError::EmptyDataset);
        assert!(e.to_string().contains("diffusion"));
        assert!(e.source().is_some());
        assert!(PipelineError::NotTrained.source().is_none());
    }

    #[test]
    fn config_errors_display() {
        let e = PipelineError::from(ConfigError::ZeroStride);
        assert!(e.to_string().contains("stride"));
        let e = ConfigError::WindowTooSmall {
            matrix_side: 64,
            target_width: 32,
            target_height: 32,
        };
        assert!(e.to_string().contains("64"));
    }
}
