use std::fmt;

/// Error type for pipeline orchestration.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// Dataset construction produced no usable tiles.
    EmptyDataset,
    /// The diffusion substrate reported an error.
    Diffusion(dp_diffusion::DiffusionError),
    /// The design rules were inconsistent.
    Rules(dp_drc::RulesError),
    /// Generation was requested before training.
    NotTrained,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::EmptyDataset => write!(f, "no usable tiles in the dataset"),
            PipelineError::Diffusion(e) => write!(f, "diffusion error: {e}"),
            PipelineError::Rules(e) => write!(f, "design rule error: {e}"),
            PipelineError::NotTrained => {
                write!(f, "generation requested before the model was trained")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Diffusion(e) => Some(e),
            PipelineError::Rules(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dp_diffusion::DiffusionError> for PipelineError {
    fn from(e: dp_diffusion::DiffusionError) -> Self {
        PipelineError::Diffusion(e)
    }
}

impl From<dp_drc::RulesError> for PipelineError {
    fn from(e: dp_drc::RulesError) -> Self {
        PipelineError::Rules(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PipelineError::from(dp_diffusion::DiffusionError::EmptyDataset);
        assert!(e.to_string().contains("diffusion"));
        assert!(e.source().is_some());
        assert!(PipelineError::NotTrained.source().is_none());
    }
}
