//! Evaluation metrics shared by the Table I harness: diversity (paper
//! Eq. 4) and legality (paper Definition 2) of a generated pattern set.

use dp_datagen::PatternLibrary;
use dp_drc::{check_pattern, DesignRules};
use dp_squish::SquishPattern;
use std::fmt;

/// One row of the Table I comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodRow {
    /// Method name as printed.
    pub name: String,
    /// Topologies generated (None when the method has no separate topology
    /// phase, like LayouTransformer — the paper prints '-').
    pub topologies: Option<usize>,
    /// Generated patterns.
    pub patterns: usize,
    /// Diversity of all generated patterns.
    pub diversity: f64,
    /// DRC-clean patterns ("Legality" numerator).
    pub legal: usize,
    /// Diversity of the legal subset.
    pub diversity_legal: f64,
}

impl MethodRow {
    /// Legality percentage.
    pub fn legality_pct(&self) -> f64 {
        if self.patterns == 0 {
            0.0
        } else {
            100.0 * self.legal as f64 / self.patterns as f64
        }
    }
}

impl fmt::Display for MethodRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let topo = self
            .topologies
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into());
        write!(
            f,
            "{:<22} {:>10} {:>9} {:>10.4} {:>8} ({:>6.2}%) {:>10.4}",
            self.name,
            topo,
            self.patterns,
            self.diversity,
            self.legal,
            self.legality_pct(),
            self.diversity_legal,
        )
    }
}

/// Table header matching [`MethodRow`]'s `Display` columns.
pub fn table_header() -> String {
    format!(
        "{:<22} {:>10} {:>9} {:>10} {:>17} {:>10}",
        "Set/Method", "Topologies", "Patterns", "Diversity", "Legal (    %)", "DivLegal"
    )
}

/// Evaluates a generated pattern set: joint diversity, per-pattern DRC,
/// and diversity of the legal subset.
///
/// Patterns are recorded by their *canonical* complexity: generated and
/// extended topologies carry duplicate adjacent rows/columns that do not
/// correspond to real scan lines, so each topology is squished to its core
/// before counting (paper Definition 1 counts true scan lines).
pub fn evaluate_patterns(
    name: &str,
    topologies: Option<usize>,
    patterns: &[SquishPattern],
    rules: &DesignRules,
) -> MethodRow {
    let mut all = PatternLibrary::new();
    let mut legal_lib = PatternLibrary::new();
    let mut legal = 0usize;
    for p in patterns {
        all.add_topology(p.topology());
        if check_pattern(p, rules).is_clean() {
            legal += 1;
            legal_lib.add_topology(p.topology());
        }
    }
    MethodRow {
        name: name.to_string(),
        topologies,
        patterns: patterns.len(),
        diversity: all.diversity(),
        legal,
        diversity_legal: legal_lib.diversity(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geometry::{Layout, Rect};

    fn legal_pattern(offset: i64) -> SquishPattern {
        let mut l = Layout::new(Rect::new(0, 0, 2048, 2048).unwrap());
        l.push(Rect::new(100 + offset, 200, 700 + offset, 1800).unwrap());
        SquishPattern::encode(&l)
    }

    fn illegal_pattern() -> SquishPattern {
        let mut l = Layout::new(Rect::new(0, 0, 2048, 2048).unwrap());
        l.push(Rect::new(100, 200, 130, 1800).unwrap()); // 30 nm sliver
        SquishPattern::encode(&l)
    }

    #[test]
    fn counts_legal_and_diversity() {
        let rules = DesignRules::standard();
        let patterns = vec![legal_pattern(0), legal_pattern(50), illegal_pattern()];
        let row = evaluate_patterns("test", Some(3), &patterns, &rules);
        assert_eq!(row.patterns, 3);
        assert_eq!(row.legal, 2);
        assert!((row.legality_pct() - 66.666).abs() < 0.01);
        // All three have the same complexity (one bar), so diversity 0...
        // actually the two legal bars share (3, 3); the sliver also (3, 3).
        assert!(row.diversity >= 0.0);
        assert!(row.diversity_legal >= 0.0);
    }

    #[test]
    fn empty_set_row() {
        let rules = DesignRules::standard();
        let row = evaluate_patterns("empty", None, &[], &rules);
        assert_eq!(row.patterns, 0);
        assert_eq!(row.legality_pct(), 0.0);
    }

    #[test]
    fn display_renders_all_columns() {
        let rules = DesignRules::standard();
        let row = evaluate_patterns("m", None, &[legal_pattern(0)], &rules);
        let s = row.to_string();
        assert!(s.contains('m') && s.contains('-') && s.contains('%'));
        assert!(!table_header().is_empty());
    }
}
