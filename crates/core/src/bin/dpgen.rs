//! `dpgen` — command-line front end for the DiffPattern pipeline.
//!
//! ```text
//! dpgen train   --iters 20000 --model model.dpm [--seed 42]
//! dpgen gen     --model model.dpm --count 50 --out library/ [--stride 5] [--threads 4]
//!               [--micro-batch 8] [--rules standard --rules larger-space ...]
//! dpgen demo    [--iters 4000 --count 8 --threads 2]
//! ```
//!
//! `train` fits the discrete diffusion model on a freshly generated
//! synthetic metal layer and saves the frozen [`TrainedModel`] (weights +
//! schedule + fold geometry in one self-describing file); `gen` reloads it
//! and emits a DRC-clean pattern library (PGM images + CSV manifest)
//! through a [`diffpattern::PatternService`] — one model load and one
//! persistent worker pool, however many rule sets are requested. Passing
//! `--rules` more than once serves every preset concurrently from that
//! single engine (the requests fill each other's denoising micro-batches)
//! and writes one manifest per rule set under `OUT/<preset>/`. `demo`
//! trains and generates in one go and prints ASCII art. The argument
//! parser is deliberately dependency-free (`--key value` pairs only).
//!
//! `--weights FILE` is accepted as an alias of `--model FILE` for
//! compatibility with pre-0.2 invocations (the file format changed: old
//! raw-weight blobs are rejected with a clear error).

use diffpattern::drc::{check_pattern, DesignRules};
use diffpattern::geometry::BitGrid;
use diffpattern::library::{merge_libraries, Library, LibraryConfig, LibraryWriter};
use diffpattern::render::{layout_to_pgm, pattern_to_ascii};
use diffpattern::squish::{extend_to_side, DeepSquishTensor};
use diffpattern::{
    hotspot_guidance, repair_conditioning, Conditioning, FrozenRegion, Generation, LibrarySink,
    PatternService, Pipeline, PipelineConfig, Precision, RequestSpec, TrainedModel,
};
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `library` carries a positional sub-action (`build`/`stat`/`merge`)
    // before its `--key value` pairs, so it parses its own tail.
    if args.first().map(String::as_str) == Some("library") {
        return match library_cmd(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some((command, options)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "train" => train(&options),
        "gen" => generate(&options),
        "demo" => demo(&options),
        _ => {
            eprintln!("unknown command `{command}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dpgen train --iters N --model FILE [--seed N] [--steps K]
  dpgen gen   --model FILE --count N --out DIR [--seed N] [--stride N] [--threads N]
              [--micro-batch N] [--precision exact|bf16] [--rules PRESET]...
              [--freeze-rect X,Y,W,H] [--freeze-from FILE] [--avoid-hotspots]
  dpgen demo  [--iters N] [--count N] [--seed N] [--threads N]
  dpgen library build --model FILE --out DIR [--count N] [--seed N] [--rules PRESET]...
              [--first-index N] [--segment-bytes N] [--stop-after N] [--threads N]
  dpgen library repair --model FILE --dir DIR [--rules PRESET] [--method NAME]
              [--bucket RULESET] [--seed N] [--threads N] [--micro-batch N]
  dpgen library stat  --dir DIR
  dpgen library merge --out DIR --shard DIR [--shard DIR]...

rule presets: standard, larger-space, smaller-area
(repeat --rules to serve several rule sets from one engine; each preset
gets its own manifest under OUT/<preset>/)

--precision bf16 samples through a bfloat16-weight copy of the model:
faster U-Net calls, still deterministic per (seed, index), but outputs
differ from the default exact path.

conditional generation (gen): --freeze-rect X,Y,W,H freezes the cells of
that topology-matrix rectangle (cell coordinates, row 0 at the bottom)
through the whole reverse chain — diffusion inpainting. The frozen bits
come from --freeze-from FILE (an ASCII topology: '#'/'1' filled, '.'/'0'
empty, top row first, exactly matrix-side lines) or, without it, from a
base topology the model samples deterministically from the request seed.
--avoid-hotspots adds rule-derived guidance steering the draw away from
isolated-cell hotspot motifs. dpgen verifies every delivered pattern
carries the frozen bits exactly and exits non-zero otherwise.

`library build` appends to a durable content-addressed store (resumable:
re-running continues from the last valid record). --stop-after N dies
with exit code 3 after N settled slots, simulating a crash for recovery
testing. `library repair` re-checks a bucket under a rules preset and
regenerates every DRC-flagged entry by inpainting: the violating
neighbourhood is redrawn, the legal remainder is frozen, and repairs
land in the same store under method `repair`. `stat` prints a
deterministic, timestamp-free summary; `merge` combines disjoint-index
shard builds into a fresh store.";

/// Parsed options: every `--key value` pair, with repeated keys collected
/// in order (`--rules a --rules b`).
// `BTreeMap` so any diagnostic listing of options is deterministic.
type Options = BTreeMap<String, Vec<String>>;

/// Value-less boolean options: present means `true`.
const FLAGS: &[&str] = &["avoid-hotspots"];

fn parse(args: &[String]) -> Option<(String, Options)> {
    let mut it = args.iter();
    let command = it.next()?.clone();
    let mut options = Options::new();
    while let Some(key) = it.next() {
        let key = key.strip_prefix("--")?;
        let value = if FLAGS.contains(&key) {
            "true".to_string()
        } else {
            it.next()?.clone()
        };
        options.entry(key.to_string()).or_default().push(value);
    }
    Some((command, options))
}

/// Last occurrence wins for single-valued numeric options.
fn opt_usize(options: &Options, key: &str, default: usize) -> usize {
    options
        .get(key)
        .and_then(|v| v.last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opt_str<'o>(options: &'o Options, key: &str) -> Option<&'o str> {
    options.get(key).and_then(|v| v.last()).map(String::as_str)
}

fn opt_precision(options: &Options) -> Result<Precision, Box<dyn std::error::Error>> {
    match opt_str(options, "precision") {
        None => Ok(Precision::Exact),
        Some(s) => Precision::parse(s)
            .ok_or_else(|| format!("unknown precision `{s}` (expected exact or bf16)").into()),
    }
}

fn model_path(options: &Options, command: &str) -> Result<String, Box<dyn std::error::Error>> {
    opt_str(options, "model")
        .or_else(|| opt_str(options, "weights"))
        .map(str::to_string)
        .ok_or_else(|| format!("`{command}` needs --model FILE").into())
}

fn rules_preset(name: &str) -> Result<DesignRules, Box<dyn std::error::Error>> {
    match name {
        "standard" | "normal" => Ok(DesignRules::standard()),
        "larger-space" | "larger_space" => Ok(DesignRules::larger_space()),
        "smaller-area" | "smaller_area" => Ok(DesignRules::smaller_area()),
        _ => Err(format!(
            "unknown rules preset `{name}` (expected standard, larger-space or smaller-area)"
        )
        .into()),
    }
}

/// The side of the model's unfolded topology matrix (`√C × M` cells).
fn matrix_side(model: &TrainedModel) -> usize {
    let patch = (0..=model.channels())
        .find(|p| p * p == model.channels())
        .expect("trained models have square channel counts");
    patch * model.side()
}

/// Parses `X,Y,W,H` (topology-matrix cell coordinates, row 0 at the
/// bottom) and checks it fits the `side × side` matrix.
fn parse_rect(s: &str, side: usize) -> Result<(usize, usize, usize, usize), String> {
    let parts: Vec<usize> = s
        .split(',')
        .map(|p| p.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("--freeze-rect expects X,Y,W,H (got `{s}`)"))?;
    let [x, y, w, h] = parts[..] else {
        return Err(format!("--freeze-rect expects four values (got `{s}`)"));
    };
    if w == 0 || h == 0 || x + w > side || y + h > side {
        return Err(format!(
            "--freeze-rect {x},{y},{w},{h} does not fit the {side}x{side} topology matrix"
        ));
    }
    Ok((x, y, w, h))
}

/// Parses an ASCII topology (`#`/`1` filled, `.`/`0` empty, top row
/// first) into a `side × side` grid.
fn parse_topology(text: &str, side: usize) -> Result<BitGrid, String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.len() != side {
        return Err(format!(
            "--freeze-from needs {side} rows of {side} cells (got {} rows)",
            lines.len()
        ));
    }
    let mut grid = BitGrid::new(side, side).expect("side > 0");
    for (li, line) in lines.iter().enumerate() {
        let cells: Vec<char> = line.trim().chars().collect();
        if cells.len() != side {
            return Err(format!(
                "--freeze-from row {li} has {} cells, expected {side}",
                cells.len()
            ));
        }
        for (col, &c) in cells.iter().enumerate() {
            let filled = match c {
                '#' | '1' => true,
                '.' | '0' => false,
                other => return Err(format!("--freeze-from: unexpected cell `{other}`")),
            };
            // Text rows run top-down; BitGrid rows bottom-up.
            grid.set(col, side - 1 - li, filled);
        }
    }
    Ok(grid)
}

/// Builds the frozen region for `gen`: `--freeze-rect` selects the cells,
/// the bits come from `--freeze-from` or a deterministically sampled base
/// topology.
fn freeze_region(
    service: &PatternService,
    base: &RequestSpec,
    options: &Options,
) -> Result<Option<FrozenRegion>, Box<dyn std::error::Error>> {
    let Some(rect) = opt_str(options, "freeze-rect") else {
        if options.contains_key("freeze-from") {
            return Err("--freeze-from needs --freeze-rect X,Y,W,H".into());
        }
        return Ok(None);
    };
    let model = service.model();
    let side = matrix_side(model);
    let (x, y, w, h) = parse_rect(rect, side)?;
    let donor = match opt_str(options, "freeze-from") {
        Some(file) => parse_topology(&std::fs::read_to_string(file)?, side)?,
        None => {
            // No donor file: the model itself supplies the base topology,
            // deterministically from the request seed.
            let spec = RequestSpec {
                count: 1,
                ..base.clone()
            }
            .seed(base.seed ^ 0x5EED);
            let (topologies, _) = service.sample_topologies(&spec)?;
            topologies
                .into_iter()
                .next()
                .ok_or("sampling the base topology fell short")?
        }
    };
    let mut mask = BitGrid::new(side, side).expect("side > 0");
    for row in y..y + h {
        for col in x..x + w {
            mask.set(col, row, true);
        }
    }
    let mask_t = DeepSquishTensor::fold(&mask, model.channels())?;
    let bits_t = DeepSquishTensor::fold(&donor, model.channels())?;
    Ok(Some(FrozenRegion::new(
        mask_t.bits().to_vec(),
        bits_t.bits().to_vec(),
    )?))
}

/// Every delivered pattern must carry the frozen bits exactly; a
/// mismatch is a contract violation worth a non-zero exit.
fn verify_frozen(
    batch: &Generation,
    region: &FrozenRegion,
    channels: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    for g in &batch.items {
        let tensor = DeepSquishTensor::fold(g.pattern.topology(), channels)?;
        for (i, (&frozen, &want)) in region.mask().iter().zip(region.bits()).enumerate() {
            if frozen && tensor.bits()[i] != want {
                return Err(
                    format!("pattern {} clobbered frozen entry {i}", g.provenance.index).into(),
                );
            }
        }
    }
    Ok(())
}

fn build_pipeline(
    options: &Options,
    rng: &mut rand::rngs::StdRng,
) -> Result<Pipeline, Box<dyn std::error::Error>> {
    let mut config = PipelineConfig::tiny();
    config.train.diffusion_steps = opt_usize(options, "steps", 30);
    config.sample_stride = opt_usize(options, "stride", 1);
    Ok(Pipeline::from_synthetic_map(config, rng)?)
}

fn train(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let iters = opt_usize(options, "iters", 20_000);
    let model_file = model_path(options, "train")?;
    let seed = opt_usize(options, "seed", 42) as u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let mut pipeline = build_pipeline(options, &mut rng)?;
    eprintln!(
        "dataset: {} tiles (H = {:.3} bits); training {iters} iterations...",
        pipeline.dataset().report.accepted,
        pipeline.dataset().library().diversity()
    );
    let report = pipeline.train(iters, &mut rng)?;
    eprintln!(
        "loss {:.4} -> {:.4}",
        report.head_mean(50),
        report.tail_mean(50)
    );
    let model = pipeline.into_trained_model()?;
    let blob = model.save();
    std::fs::write(&model_file, &blob)?;
    eprintln!("saved {} bytes of model to {model_file}", blob.len());
    Ok(())
}

fn generate(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let model_file = model_path(options, "gen")?;
    let count = opt_usize(options, "count", 50);
    let out = PathBuf::from(opt_str(options, "out").ok_or("`gen` needs --out DIR")?);
    let seed = opt_usize(options, "seed", 43) as u64;
    let threads = opt_usize(options, "threads", 0);
    let micro_batch = opt_usize(options, "micro-batch", 8);
    let precision = opt_precision(options)?;
    let presets: Vec<String> = options
        .get("rules")
        .cloned()
        .unwrap_or_else(|| vec!["standard".to_string()]);
    let rule_sets: Vec<(String, DesignRules)> = presets
        .iter()
        .map(|p| rules_preset(p).map(|r| (p.clone(), r)))
        .collect::<Result<_, _>>()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    // The pipeline supplies the dataset (Solving-E donors and config); the
    // trained weights come from the frozen model file — loaded once and
    // shared by every rule set's request.
    let pipeline = build_pipeline(options, &mut rng)?;
    let model = Arc::new(TrainedModel::load(&std::fs::read(&model_file)?)?);
    let service = PatternService::builder(model)
        .threads(threads)
        .micro_batch(micro_batch)
        .build()?;
    let base = pipeline.request_spec(count).seed(seed).precision(precision);
    let frozen = freeze_region(&service, &base, options)?;
    let avoid = options.contains_key("avoid-hotspots");
    let channels = service.model().channels();

    // Submit every rule set up front: one engine, one pool, and the
    // requests fill each other's denoising micro-batches.
    let mut handles = Vec::with_capacity(rule_sets.len());
    for (preset, rules) in &rule_sets {
        let mut cond = Conditioning::none();
        if let Some(region) = &frozen {
            cond = cond.with_frozen(region.clone());
        }
        if avoid {
            cond = cond.with_avoid(hotspot_guidance(rules));
        }
        let spec = RequestSpec {
            rules: *rules,
            ..base.clone()
        }
        .conditioning(cond);
        handles.push((preset.clone(), *rules, service.submit(&spec)?));
    }

    let single = rule_sets.len() == 1;
    for (preset, rules, handle) in handles {
        let dir = if single {
            out.clone()
        } else {
            out.join(&preset)
        };
        let batch = handle.wait()?;
        if let Some(region) = &frozen {
            verify_frozen(&batch, region, channels)?;
            eprintln!(
                "[{preset}] frozen bits verified on {} patterns",
                batch.items.len()
            );
        }
        write_library(&dir, &batch, &rules)?;
        let r = batch.report;
        eprintln!(
            "[{preset}] wrote {} patterns to {} with {} threads (sampled {}, repaired {}, \
             solver failures {}, shortfall {})",
            batch.items.len(),
            dir.display(),
            service.threads(),
            r.topologies_sampled,
            r.prefilter_repaired,
            r.solver_failures,
            r.shortfall
        );
    }
    Ok(())
}

/// Writes one rule set's library: PGM images plus a CSV manifest.
fn write_library(
    dir: &Path,
    batch: &Generation,
    rules: &DesignRules,
) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    let mut manifest = std::fs::File::create(dir.join("manifest.csv"))?;
    writeln!(manifest, "file,cx,cy,width_nm,height_nm,drc_clean,attempts")?;
    for g in &batch.items {
        let i = g.provenance.index;
        let p = &g.pattern;
        let file = format!("pattern_{i:05}.pgm");
        layout_to_pgm(&p.decode()?, 256, &dir.join(&file))?;
        let core = diffpattern::squish::squish_to_core(p.topology());
        let clean = check_pattern(p, rules).is_clean();
        writeln!(
            manifest,
            "{file},{},{},{},{},{clean},{}",
            core.width(),
            core.height(),
            p.width(),
            p.height(),
            g.provenance.attempts
        )?;
    }
    Ok(())
}

fn library_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some((action, options)) = parse(args) else {
        return Err(format!("`library` needs an action\n{USAGE}").into());
    };
    match action.as_str() {
        "build" => library_build(&options),
        "repair" => library_repair(&options),
        "stat" => library_stat(&options),
        "merge" => library_merge(&options),
        _ => Err(format!("unknown library action `{action}`\n{USAGE}").into()),
    }
}

/// The conditioned repair flow: re-check one bucket of a durable store
/// under a rules preset, and for every DRC-flagged entry regenerate the
/// pattern by inpainting — the violating neighbourhood is thawed, the
/// legal remainder frozen to the entry's own bits
/// ([`repair_conditioning`]) — draining the conditioned requests through
/// a [`LibrarySink`] into the same store under method `repair`.
fn library_repair(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let model_file = model_path(options, "library repair")?;
    let dir = opt_str(options, "dir").ok_or("`library repair` needs --dir DIR")?;
    let preset = opt_str(options, "rules").unwrap_or("standard").to_string();
    let rules = rules_preset(&preset)?;
    let method = opt_str(options, "method")
        .unwrap_or("diffpattern")
        .to_string();
    // The source bucket's ruleset name: re-checking a bucket built under
    // one preset against another is the curation workload.
    let bucket = opt_str(options, "bucket").unwrap_or("standard").to_string();
    let seed = opt_usize(options, "seed", 47) as u64;
    let threads = opt_usize(options, "threads", 0);
    let micro_batch = opt_usize(options, "micro-batch", 8);

    let model = Arc::new(TrainedModel::load(&std::fs::read(&model_file)?)?);
    let channels = model.channels();
    let side = matrix_side(&model);

    // Scan pass (read-only): collect the flagged entries and build each
    // one's inpainting constraint.
    let lib = Library::open(dir)?;
    let records = lib
        .records(&method, &bucket)
        .ok_or_else(|| format!("no bucket {method}/{bucket} in {dir}"))?
        .to_vec();
    let total = records.len();
    let mut scratch = Vec::new();
    let mut flagged = Vec::new();
    let mut skipped = 0usize;
    for r in &records {
        let rec = lib.read(r, &mut scratch)?;
        if check_pattern(&rec.pattern, &rules).is_clean() {
            continue;
        }
        // Entries too complex for the model's matrix (or whose violating
        // cells do not survive the extension) cannot be inpainted.
        let cond = extend_to_side(&rec.pattern, side)
            .ok()
            .and_then(|(ext, _)| repair_conditioning(&ext, &rules, channels));
        match cond {
            Some(cond) => flagged.push(cond),
            None => skipped += 1,
        }
    }
    drop(lib);
    eprintln!(
        "bucket {method}/{bucket}: {total} entries, {} flagged under `{preset}` rules, \
         {skipped} not repairable",
        flagged.len() + skipped
    );
    if flagged.is_empty() {
        return Ok(());
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pipeline = build_pipeline(options, &mut rng)?;
    let service = PatternService::builder(Arc::clone(&model))
        .threads(threads)
        .micro_batch(micro_batch)
        .build()?;
    let base = pipeline.request_spec(1).seed(seed);

    let mut writer = LibraryWriter::open(dir, LibraryConfig::default())?;
    let cursor = writer.open_bucket("repair", &preset, 0)?;

    // One conditioned single-slot request per flagged entry, submitted up
    // front; each lane's constraint differs, so they run as independent
    // plans on the shared pool.
    let mut handles = Vec::with_capacity(flagged.len());
    for (i, cond) in flagged.iter().enumerate() {
        let spec = RequestSpec {
            count: 1,
            first_index: cursor as usize + i,
            rules,
            ..base.clone()
        }
        .conditioning(cond.clone());
        handles.push(service.submit(&spec)?);
    }
    let mut report = diffpattern::SinkReport::default();
    let mut sink = LibrarySink::new(&mut writer, "repair", &preset);
    for handle in handles {
        let r = sink.drain(handle)?;
        report.accepted += r.accepted;
        report.duplicates += r.duplicates;
        report.skipped += r.skipped;
        report.next_index = r.next_index;
    }
    let lib = writer.finish()?;

    // Verify the stored repairs: DRC-clean under the target rules and
    // frozen-bit exact against each entry's constraint.
    let mut clean = 0u64;
    let mut scratch = Vec::new();
    for r in lib.records("repair", &preset).unwrap_or(&[]) {
        let rec = lib.read(r, &mut scratch)?;
        if rec.source_index < cursor {
            continue;
        }
        let cond = &flagged[(rec.source_index - cursor) as usize];
        let region = cond.frozen().expect("repair conditioning always freezes");
        let tensor = DeepSquishTensor::fold(rec.pattern.topology(), channels)?;
        for (i, (&frozen, &want)) in region.mask().iter().zip(region.bits()).enumerate() {
            if frozen && tensor.bits()[i] != want {
                return Err(format!(
                    "repair of slot {} clobbered frozen entry {i}",
                    rec.source_index
                )
                .into());
            }
        }
        if check_pattern(&rec.pattern, &rules).is_clean() {
            clean += 1;
        }
    }
    // A duplicate repair was byte-identical to an already-stored clean
    // pattern, so it counts as a success; only shortfall slots fail.
    let succeeded = clean + report.duplicates;
    let goal = flagged.len() as u64;
    eprintln!(
        "repaired {succeeded}/{goal} flagged entries to DRC-clean \
         ({} stored, {} duplicates, {} shortfall)",
        report.accepted, report.duplicates, report.skipped
    );
    if succeeded * 20 < goal * 19 {
        return Err(format!("repair success rate {succeeded}/{goal} is below 95%").into());
    }
    Ok(())
}

/// Deterministic (timestamp-free) store summary, printed to stdout so CI
/// can diff the output of resumed vs uninterrupted builds.
fn print_stat(lib: &Library) {
    println!("segments: {}", lib.segment_count());
    println!("records: {}", lib.len());
    println!("content_hash: {:016x}", lib.content_hash());
    let keys: Vec<(String, String)> = lib
        .buckets()
        .map(|(m, r)| (m.to_string(), r.to_string()))
        .collect();
    for (m, r) in keys {
        let s = lib.stats(&m, &r).expect("listed bucket");
        println!(
            "bucket {m}/{r}: base {} next {} accepted {} dup {} skip {} legal {} \
             topologies {} distinct {} diversity {:.6} bits ({:016x})",
            s.base,
            s.next_index,
            s.accepted,
            s.duplicates,
            s.skipped,
            s.legal,
            s.topologies,
            s.distinct_complexities,
            s.diversity,
            s.diversity.to_bits()
        );
    }
}

fn library_build(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let model_file = model_path(options, "library build")?;
    let out = PathBuf::from(opt_str(options, "out").ok_or("`library build` needs --out DIR")?);
    let count = opt_usize(options, "count", 50);
    let first_index = opt_usize(options, "first-index", 0);
    let seed = opt_usize(options, "seed", 43) as u64;
    let threads = opt_usize(options, "threads", 0);
    let micro_batch = opt_usize(options, "micro-batch", 8);
    let segment_bytes = opt_usize(options, "segment-bytes", 256 * 1024) as u64;
    let stop_after: Option<u64> = opt_str(options, "stop-after").map(str::parse).transpose()?;
    let presets: Vec<String> = options
        .get("rules")
        .cloned()
        .unwrap_or_else(|| vec!["standard".to_string()]);
    let rule_sets: Vec<(String, DesignRules)> = presets
        .iter()
        .map(|p| rules_preset(p).map(|r| (p.clone(), r)))
        .collect::<Result<_, _>>()?;

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pipeline = build_pipeline(options, &mut rng)?;
    // Train-or-load: a missing model file is trained in place so shard
    // and resume invocations can share it afterwards.
    let model = if Path::new(&model_file).exists() {
        Arc::new(TrainedModel::load(&std::fs::read(&model_file)?)?)
    } else {
        let iters = opt_usize(options, "iters", 4_000);
        eprintln!("model {model_file} not found; training {iters} iterations first...");
        let mut train_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut train_pipeline = build_pipeline(options, &mut train_rng)?;
        train_pipeline.train(iters, &mut train_rng)?;
        let trained = train_pipeline.into_trained_model()?;
        std::fs::write(&model_file, trained.save())?;
        Arc::new(trained)
    };
    let service = PatternService::builder(model)
        .threads(threads)
        .micro_batch(micro_batch)
        .build()?;
    let mut writer = LibraryWriter::open(
        &out,
        LibraryConfig {
            segment_bytes,
            ..LibraryConfig::default()
        },
    )?;
    let base_spec = pipeline.request_spec(count).seed(seed);

    // Open every bucket first and submit all remainders up front: one
    // engine, one pool, requests fill each other's micro-batches; a
    // resumed build only asks for the sub-range past its cursor.
    let end = (first_index + count) as u64;
    let mut jobs = Vec::with_capacity(rule_sets.len());
    for (preset, rules) in &rule_sets {
        let cursor = writer.open_bucket("diffpattern", preset, first_index as u64)?;
        if cursor < end {
            let spec = RequestSpec {
                rules: *rules,
                count: (end - cursor) as usize,
                first_index: cursor as usize,
                ..base_spec.clone()
            };
            jobs.push((preset.clone(), Some(service.submit(&spec)?)));
        } else {
            jobs.push((preset.clone(), None));
        }
    }

    let mut settled = 0u64;
    for (preset, handle) in jobs {
        let Some(handle) = handle else {
            eprintln!("[{preset}] already complete (cursor at {end})");
            continue;
        };
        let mut sink = LibrarySink::new(&mut writer, "diffpattern", &preset);
        let report = sink.drain_with(handle, |_| {
            settled += 1;
            if stop_after.is_some_and(|n| settled >= n) {
                eprintln!("--stop-after {settled}: simulating a crash (no checkpoint flush)");
                std::process::exit(3);
            }
        })?;
        eprintln!(
            "[{preset}] +{} patterns ({} duplicates, {} skipped), cursor now {}",
            report.accepted, report.duplicates, report.skipped, report.next_index
        );
    }
    let lib = writer.finish()?;
    print_stat(&lib);
    Ok(())
}

fn library_stat(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let dir = opt_str(options, "dir").ok_or("`library stat` needs --dir DIR")?;
    print_stat(&Library::open(dir)?);
    Ok(())
}

fn library_merge(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let out = opt_str(options, "out").ok_or("`library merge` needs --out DIR")?;
    let shard_dirs = options
        .get("shard")
        .filter(|v| !v.is_empty())
        .ok_or("`library merge` needs --shard DIR (repeatable)")?;
    let shards: Vec<Library> = shard_dirs
        .iter()
        .map(Library::open)
        .collect::<Result<_, _>>()?;
    let segment_bytes = opt_usize(options, "segment-bytes", 256 * 1024) as u64;
    let merged = merge_libraries(
        out,
        &shards,
        LibraryConfig {
            segment_bytes,
            ..LibraryConfig::default()
        },
    )?;
    print_stat(&merged);
    Ok(())
}

fn demo(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let iters = opt_usize(options, "iters", 4_000);
    let count = opt_usize(options, "count", 4);
    let seed = opt_usize(options, "seed", 42) as u64;
    let threads = opt_usize(options, "threads", 0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let mut pipeline = build_pipeline(options, &mut rng)?;
    eprintln!("training {iters} iterations...");
    let _ = pipeline.train(iters, &mut rng)?;
    let model = pipeline.trained_model()?;
    let session = pipeline
        .session_builder(&model)
        .threads(threads)
        .seed(seed)
        .build()?;
    let batch = session.generate(count)?;
    for g in &batch.items {
        println!(
            "--- pattern {} (DRC clean: {}, attempts {}) ---",
            g.provenance.index,
            check_pattern(&g.pattern, session.rules()).is_clean(),
            g.provenance.attempts
        );
        println!("{}", pattern_to_ascii(&g.pattern, 48, 20));
    }
    if batch.report.shortfall > 0 {
        eprintln!("note: {} slots fell short", batch.report.shortfall);
    }
    Ok(())
}
