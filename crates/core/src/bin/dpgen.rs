//! `dpgen` — command-line front end for the DiffPattern pipeline.
//!
//! ```text
//! dpgen train   --iters 20000 --weights model.dpw [--seed 42]
//! dpgen gen     --weights model.dpw --count 50 --out library/ [--stride 5]
//! dpgen demo    [--iters 4000 --count 8]
//! ```
//!
//! `train` fits the discrete diffusion model on a freshly generated
//! synthetic metal layer and saves the U-Net weights; `gen` reloads them
//! and emits a DRC-clean pattern library (PGM images + CSV manifest);
//! `demo` does both in one go and prints ASCII art. The argument parser is
//! deliberately dependency-free (`--key value` pairs only).

use diffpattern::drc::check_pattern;
use diffpattern::nn::{load_params, save_params};
use diffpattern::render::{layout_to_pgm, pattern_to_ascii};
use diffpattern::{Pipeline, PipelineConfig};
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, options)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "train" => train(&options),
        "gen" => generate(&options),
        "demo" => demo(&options),
        _ => {
            eprintln!("unknown command `{command}`\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dpgen train --iters N --weights FILE [--seed N] [--steps K]
  dpgen gen   --weights FILE --count N --out DIR [--seed N] [--stride N]
  dpgen demo  [--iters N] [--count N] [--seed N]";

type Options = HashMap<String, String>;

fn parse(args: &[String]) -> Option<(String, Options)> {
    let mut it = args.iter();
    let command = it.next()?.clone();
    let mut options = Options::new();
    while let Some(key) = it.next() {
        let key = key.strip_prefix("--")?;
        let value = it.next()?;
        options.insert(key.to_string(), value.clone());
    }
    Some((command, options))
}

fn opt_usize(options: &Options, key: &str, default: usize) -> usize {
    options
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_pipeline(
    options: &Options,
    rng: &mut rand::rngs::StdRng,
) -> Result<Pipeline, Box<dyn std::error::Error>> {
    let mut config = PipelineConfig::tiny();
    config.train.diffusion_steps = opt_usize(options, "steps", 30);
    config.sample_stride = opt_usize(options, "stride", 1);
    Ok(Pipeline::from_synthetic_map(config, rng)?)
}

fn train(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let iters = opt_usize(options, "iters", 20_000);
    let weights = options
        .get("weights")
        .ok_or("`train` needs --weights FILE")?;
    let seed = opt_usize(options, "seed", 42) as u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let mut pipeline = build_pipeline(options, &mut rng)?;
    eprintln!(
        "dataset: {} tiles (H = {:.3} bits); training {iters} iterations...",
        pipeline.dataset().report.accepted,
        pipeline.dataset().library().diversity()
    );
    let report = pipeline.train(iters, &mut rng)?;
    eprintln!(
        "loss {:.4} -> {:.4}",
        report.head_mean(50),
        report.tail_mean(50)
    );
    let blob = save_params(&pipeline.denoiser_mut().unet_mut().params_mut());
    std::fs::write(weights, &blob)?;
    eprintln!("saved {} bytes of weights to {weights}", blob.len());
    Ok(())
}

fn generate(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let weights = options.get("weights").ok_or("`gen` needs --weights FILE")?;
    let count = opt_usize(options, "count", 50);
    let out = PathBuf::from(options.get("out").ok_or("`gen` needs --out DIR")?);
    let seed = opt_usize(options, "seed", 43) as u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let mut pipeline = build_pipeline(options, &mut rng)?;
    let blob = std::fs::read(weights)?;
    load_params(&mut pipeline.denoiser_mut().unet_mut().params_mut(), &blob)?;
    pipeline.mark_trained();

    std::fs::create_dir_all(&out)?;
    let patterns = pipeline.generate_legal_patterns(count, &mut rng)?;
    let mut manifest = std::fs::File::create(out.join("manifest.csv"))?;
    writeln!(manifest, "file,cx,cy,width_nm,height_nm,drc_clean")?;
    for (i, p) in patterns.iter().enumerate() {
        let file = format!("pattern_{i:05}.pgm");
        layout_to_pgm(&p.decode()?, 256, &out.join(&file))?;
        let core = diffpattern::squish::squish_to_core(p.topology());
        let clean = check_pattern(p, &pipeline.config().rules).is_clean();
        writeln!(
            manifest,
            "{file},{},{},{},{},{clean}",
            core.width(),
            core.height(),
            p.width(),
            p.height()
        )?;
    }
    let r = pipeline.report();
    eprintln!(
        "wrote {} patterns to {} (sampled {}, repaired {}, solver failures {})",
        patterns.len(),
        out.display(),
        r.topologies_sampled,
        r.prefilter_repaired,
        r.solver_failures
    );
    Ok(())
}

fn demo(options: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let iters = opt_usize(options, "iters", 4_000);
    let count = opt_usize(options, "count", 4);
    let seed = opt_usize(options, "seed", 42) as u64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let mut pipeline = build_pipeline(options, &mut rng)?;
    eprintln!("training {iters} iterations...");
    let _ = pipeline.train(iters, &mut rng)?;
    let patterns = pipeline.generate_legal_patterns(count, &mut rng)?;
    for (i, p) in patterns.iter().enumerate() {
        println!(
            "--- pattern {i} (DRC clean: {}) ---",
            check_pattern(p, &pipeline.config().rules).is_clean()
        );
        println!("{}", pattern_to_ascii(p, 48, 20));
    }
    Ok(())
}
