//! [`GenerationSession`]: the inference-side engine of the train/infer
//! split.
//!
//! A session borrows an immutable [`TrainedModel`], owns one legalization
//! [`Solver`] (built once, reused for every pattern), and shards batch
//! generation across `std::thread::scope` workers. Workers pull
//! **micro-batches** of slots and advance their denoising chains in
//! lock-step — one U-Net evaluation per step for the whole chunk (see
//! [`SessionBuilder::micro_batch`]). Every batch item still draws its own
//! RNG from `(session seed, item index)`, so the output is
//! **bit-identical for a given seed regardless of the thread count or the
//! micro-batch size** — scaling either knob never changes what gets
//! generated, only how fast.
//!
//! ```no_run
//! use diffpattern::{GenerationSession, Pipeline, PipelineConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::default(), &mut rng)?;
//! pipeline.train(200, &mut rng)?;
//! let model = pipeline.trained_model()?;
//! let session = pipeline.session_builder(&model).threads(4).seed(7).build()?;
//! let batch = session.generate(16)?;
//! println!("{} legal patterns, shortfall {}", batch.items.len(), batch.report.shortfall);
//! # Ok(())
//! # }
//! ```

use crate::{ConfigError, GenerateError, PipelineReport};
use dp_diffusion::{BatchScratch, Sampler, TrainedModel};
use dp_drc::DesignRules;
use dp_geometry::{bowtie, BitGrid};
use dp_legalize::{Init, SolveStats, Solver, SolverConfig};
use dp_squish::SquishPattern;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Where a generated pattern came from: enough to reproduce it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// Position of this item in the requested batch.
    pub index: usize,
    /// The per-item RNG seed (derived from the session seed and `index`).
    pub seed: u64,
    /// Sampling attempts consumed, including the successful one.
    pub attempts: usize,
    /// Whether the bow-tie pre-filter repaired the topology.
    pub repaired: bool,
    /// Convergence statistics of the legalization solve.
    pub solve: SolveStats,
}

/// One streamed generation result: a DRC-clean pattern plus its
/// [`Provenance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generated {
    /// The legal squish pattern.
    pub pattern: SquishPattern,
    /// How it was produced.
    pub provenance: Provenance,
}

/// A completed batch: items in batch-index order plus the aggregated
/// per-worker reports.
#[derive(Debug, Clone)]
pub struct Generation {
    /// The generated patterns, sorted by [`Provenance::index`].
    pub items: Vec<Generated>,
    /// Merged statistics of every worker, including the
    /// [`PipelineReport::shortfall`] count of batch slots that exhausted
    /// their attempt budget.
    pub report: PipelineReport,
}

/// Builder for [`GenerationSession`]; see the module docs for an example.
///
/// All knobs have working defaults; `build` validates the combination and
/// returns [`ConfigError`] instead of panicking.
#[derive(Debug, Clone)]
pub struct SessionBuilder<'m> {
    model: &'m TrainedModel,
    rules: DesignRules,
    solver: SolverConfig,
    stride: usize,
    repair_bowties: bool,
    max_attempts: usize,
    threads: usize,
    micro_batch: usize,
    seed: u64,
    donors: Vec<SquishPattern>,
}

impl<'m> SessionBuilder<'m> {
    /// Design rules for legalization (default: [`DesignRules::standard`]).
    pub fn rules(mut self, rules: DesignRules) -> Self {
        self.rules = rules;
        self
    }

    /// Legalization solver settings (default: a window matching the
    /// paper's 2048 nm tile).
    pub fn solver_config(mut self, config: SolverConfig) -> Self {
        self.solver = config;
        self
    }

    /// Reverse-sampling stride: 1 runs the full ancestral chain, larger
    /// values use the respaced sampler with `K / stride` denoiser calls.
    pub fn sample_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Repair bow-ties instead of rejecting the sample (default: true).
    pub fn repair_bowties(mut self, repair: bool) -> Self {
        self.repair_bowties = repair;
        self
    }

    /// Per-item sampling attempt budget before the slot is counted as
    /// shortfall (default: 4).
    pub fn max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Worker thread count; 0 (the default) uses the machine's available
    /// parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sampling micro-batch: how many denoising chains each worker
    /// advances in lock-step per U-Net call (default: 8, tuned via the
    /// `nn_micro` batched-infer bench). Larger values amortise each
    /// layer's weight traffic over more lanes; output is **bit-identical
    /// at every setting** because every lane keeps its own
    /// `(seed, index)`-derived RNG stream.
    pub fn micro_batch(mut self, micro_batch: usize) -> Self {
        self.micro_batch = micro_batch;
        self
    }

    /// Batch seed. Together with an item's index it fully determines that
    /// item, independent of thread count (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Donor patterns for Solving-E initialisation (paper Table II's
    /// accelerated mode). Empty (the default) falls back to Solving-R.
    pub fn donors(mut self, donors: Vec<SquishPattern>) -> Self {
        self.donors = donors;
        self
    }

    /// Validates the configuration and builds the session.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroStride`], [`ConfigError::ZeroAttempts`], or
    /// [`ConfigError::WindowTooSmall`] when the solver window cannot hold
    /// the model's topology matrix.
    pub fn build(self) -> Result<GenerationSession<'m>, ConfigError> {
        if self.stride == 0 {
            return Err(ConfigError::ZeroStride);
        }
        if self.max_attempts == 0 {
            return Err(ConfigError::ZeroAttempts);
        }
        if self.micro_batch == 0 {
            return Err(ConfigError::ZeroMicroBatch);
        }
        let matrix_side = self.model.matrix_side();
        if (matrix_side as i64) > self.solver.target_width
            || (matrix_side as i64) > self.solver.target_height
        {
            return Err(ConfigError::WindowTooSmall {
                matrix_side,
                target_width: self.solver.target_width,
                target_height: self.solver.target_height,
            });
        }
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        let sampler = self.model.sampler();
        let retained = sampler.strided_steps(self.stride);
        Ok(GenerationSession {
            model: self.model,
            sampler,
            solver: Solver::new(self.rules, self.solver),
            rules: self.rules,
            retained,
            stride: self.stride,
            repair_bowties: self.repair_bowties,
            max_attempts: self.max_attempts,
            threads,
            micro_batch: self.micro_batch,
            seed: self.seed,
            donors: self.donors,
        })
    }
}

/// A configured generation engine over a shared [`TrainedModel`]: samples
/// topologies, pre-filters bow-ties, legalizes with a reused [`Solver`],
/// and streams [`Generated`] items — across as many threads as you ask
/// for, deterministically per seed.
#[derive(Debug)]
pub struct GenerationSession<'m> {
    model: &'m TrainedModel,
    sampler: Sampler,
    solver: Solver,
    rules: DesignRules,
    retained: Vec<usize>,
    stride: usize,
    repair_bowties: bool,
    max_attempts: usize,
    threads: usize,
    micro_batch: usize,
    seed: u64,
    donors: Vec<SquishPattern>,
}

impl<'m> GenerationSession<'m> {
    /// Starts a builder over `model` with default settings.
    pub fn builder(model: &'m TrainedModel) -> SessionBuilder<'m> {
        SessionBuilder {
            model,
            rules: DesignRules::standard(),
            solver: SolverConfig::for_window(2048, 2048),
            stride: 1,
            repair_bowties: true,
            max_attempts: 4,
            threads: 0,
            micro_batch: 8,
            seed: 0,
            donors: Vec::new(),
        }
    }

    /// The shared model.
    pub fn model(&self) -> &'m TrainedModel {
        self.model
    }

    /// The design rules in force.
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// The session's (reused) legalization solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Worker thread count used for batches.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lock-step denoising lanes per U-Net call (see
    /// [`SessionBuilder::micro_batch`]).
    pub fn micro_batch(&self) -> usize {
        self.micro_batch
    }

    /// The batch seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates a batch of `count` legal patterns, collecting the stream
    /// into index order. Slots whose attempt budget ran out are reported
    /// in [`PipelineReport::shortfall`] rather than silently missing.
    ///
    /// # Errors
    ///
    /// [`GenerateError`] on structural failures only; solver infeasibility
    /// and pre-filter rejections are statistics, not errors.
    pub fn generate(&self, count: usize) -> Result<Generation, GenerateError> {
        let mut items = Vec::with_capacity(count);
        let report = self.generate_streaming(count, |g| items.push(g))?;
        items.sort_by_key(|g| g.provenance.index);
        Ok(Generation { items, report })
    }

    /// Generates `count` patterns, invoking `on_item` as each finished
    /// [`Generated`] arrives (completion order under multiple threads,
    /// index order with one). Returns the aggregated report.
    ///
    /// # Errors
    ///
    /// As [`GenerationSession::generate`].
    pub fn generate_streaming(
        &self,
        count: usize,
        on_item: impl FnMut(Generated),
    ) -> Result<PipelineReport, GenerateError> {
        self.run_batch(
            count,
            |indices, scratch| self.generate_items(indices, scratch),
            on_item,
        )
    }

    /// Samples `count` topology matrices (pre-filtered, no legalization) —
    /// the raw Table II "Sampling" phase, thread-parallel and
    /// deterministic per seed like [`GenerationSession::generate`].
    pub fn sample_topologies(&self, count: usize) -> (Vec<BitGrid>, PipelineReport) {
        let mut out: Vec<(usize, BitGrid)> = Vec::with_capacity(count);
        let report = self
            .run_batch(
                count,
                |indices, scratch| self.sample_items(indices, scratch),
                |item: (usize, BitGrid)| out.push(item),
            )
            .expect("topology sampling is infallible");
        out.sort_by_key(|(index, _)| *index);
        (out.into_iter().map(|(_, grid)| grid).collect(), report)
    }

    /// Legalizes one topology into up to `variants` distinct patterns
    /// (DiffPattern-L, paper Fig. 7), with full failure accounting in the
    /// returned report.
    ///
    /// # Errors
    ///
    /// [`GenerateError::Assembly`] when a solution does not match the
    /// topology (a solver contract violation).
    pub fn legalize_variants(
        &self,
        topology: &BitGrid,
        variants: usize,
        rng: &mut impl Rng,
    ) -> Result<(Vec<SquishPattern>, PipelineReport), GenerateError> {
        let solve = self.solver.solve_many_report(topology, variants, rng);
        let mut report = PipelineReport {
            solver_failures: solve.failures,
            ..PipelineReport::default()
        };
        let mut patterns = Vec::with_capacity(solve.solutions.len());
        for s in solve.solutions {
            let pattern = SquishPattern::new(topology.clone(), s.dx, s.dy)
                .map_err(GenerateError::Assembly)?;
            report.legal_patterns += 1;
            patterns.push(pattern);
        }
        Ok((patterns, report))
    }

    /// Runs `count` independent work items across the configured worker
    /// threads, merging their report deltas and streaming their outputs.
    ///
    /// Workers pull **micro-batches** of item indices off an atomic
    /// counter (chunks of [`GenerationSession::micro_batch`] consecutive
    /// slots) and advance each chunk's denoising chains in lock-step, so
    /// every worker evaluates the U-Net once per step for its whole chunk
    /// instead of once per item. Each worker owns one
    /// [`BatchScratch`] reused across its chunks, so steady-state sampling
    /// allocates nothing per denoising step. When more than one worker
    /// runs, inner GEMM parallelism is disabled inside the workers (the
    /// batch is already data-parallel; nesting a second layer of threads
    /// per matrix multiply would oversubscribe the machine) — a
    /// single-worker batch keeps it enabled so large multiplies can still
    /// use the whole machine.
    ///
    /// `count == 0` and `micro_batch > count` are both well-defined: the
    /// first chunk simply covers fewer (or zero) slots, no worker blocks,
    /// and the returned report is all-zero for an empty batch.
    fn run_batch<T: Send>(
        &self,
        count: usize,
        work: impl Fn(
                &[usize],
                &mut BatchScratch,
            ) -> Result<Vec<(PipelineReport, Option<T>)>, GenerateError>
            + Sync,
        mut on_item: impl FnMut(T),
    ) -> Result<PipelineReport, GenerateError> {
        let mut report = PipelineReport::default();
        let micro = self.micro_batch.max(1);
        let chunks = count.div_ceil(micro);
        let workers = self.threads.min(chunks).max(1);
        let absorb = |report: &mut PipelineReport,
                      lanes: Vec<(PipelineReport, Option<T>)>,
                      on_item: &mut dyn FnMut(T)| {
            for (delta, item) in lanes {
                report.merge(&delta);
                match item {
                    Some(item) => on_item(item),
                    None => report.shortfall += 1,
                }
            }
        };
        if workers <= 1 {
            let mut scratch = BatchScratch::new();
            for chunk in 0..chunks {
                let start = chunk * micro;
                let indices: Vec<usize> = (start..(start + micro).min(count)).collect();
                let lanes = work(&indices, &mut scratch)?;
                absorb(&mut report, lanes, &mut on_item);
            }
            return Ok(report);
        }

        let next = AtomicUsize::new(0);
        type LaneResults<T> = Result<Vec<(PipelineReport, Option<T>)>, GenerateError>;
        let (tx, rx) = mpsc::channel::<LaneResults<T>>();
        let mut first_error = None;
        std::thread::scope(|scope| {
            let work = &work;
            let next = &next;
            for _ in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || {
                    dp_nn::with_inner_gemm_parallelism(false, || {
                        let mut scratch = BatchScratch::new();
                        loop {
                            let start = next.fetch_add(micro, Ordering::Relaxed);
                            if start >= count {
                                break;
                            }
                            let indices: Vec<usize> = (start..(start + micro).min(count)).collect();
                            if tx.send(work(&indices, &mut scratch)).is_err() {
                                break;
                            }
                        }
                    })
                });
            }
            drop(tx);
            // Drain on the coordinating thread so `on_item` can stream
            // results to the caller as they complete.
            while let Ok(message) = rx.recv() {
                match message {
                    Ok(lanes) => absorb(&mut report, lanes, &mut on_item),
                    Err(e) => {
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
            }
        });
        match first_error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Produces a micro-batch of items end to end (lock-step batched
    /// sampling → per-lane pre-filter → per-lane solve), retrying within
    /// each lane's attempt budget. A `None` outcome means shortfall.
    fn generate_items(
        &self,
        indices: &[usize],
        scratch: &mut BatchScratch,
    ) -> Result<Vec<(PipelineReport, Option<Generated>)>, GenerateError> {
        self.micro_batch_core(
            indices,
            scratch,
            |index, seed, attempt, grid, repaired, rng, report| {
                let init_donor = (!self.donors.is_empty())
                    .then(|| &self.donors[rng.gen_range(0..self.donors.len())]);
                let solve = match init_donor {
                    Some(donor) => {
                        self.solver
                            .solve(&grid, Init::Existing(donor.dx(), donor.dy()), rng)
                    }
                    None => self.solver.solve(&grid, Init::Random, rng),
                };
                match solve {
                    Ok(solution) => {
                        let stats = solution.stats;
                        let pattern = SquishPattern::new(grid, solution.dx, solution.dy)
                            .map_err(GenerateError::Assembly)?;
                        report.legal_patterns += 1;
                        Ok(Some(Generated {
                            pattern,
                            provenance: Provenance {
                                index,
                                seed,
                                attempts: attempt,
                                repaired,
                                solve: stats,
                            },
                        }))
                    }
                    Err(_) => {
                        report.solver_failures += 1;
                        Ok(None)
                    }
                }
            },
        )
    }

    /// Topology-only micro-batch: lock-step sampling → pre-filter, no
    /// solving.
    #[allow(clippy::type_complexity)]
    fn sample_items(
        &self,
        indices: &[usize],
        scratch: &mut BatchScratch,
    ) -> Result<Vec<(PipelineReport, Option<(usize, BitGrid)>)>, GenerateError> {
        self.micro_batch_core(
            indices,
            scratch,
            |index, _seed, _attempt, grid, _repaired, _rng, _report| Ok(Some((index, grid))),
        )
    }

    /// The micro-batched retry engine shared by generation and
    /// topology-only sampling.
    ///
    /// Every requested slot becomes a *lane* with its own
    /// `(session seed, index)`-derived RNG. Per round, all still-active
    /// lanes draw one topology together through the batched sampler (one
    /// U-Net evaluation per denoising step for the whole round); each
    /// lane then runs the bow-tie pre-filter and — when the sample
    /// survives — the per-lane `finish` stage (donor pick + solve for
    /// generation, a no-op for raw sampling) on its own RNG. Lanes leave
    /// the round set when `finish` produces an outcome or their attempt
    /// budget is spent, so a chunk's denoising batch only ever shrinks.
    ///
    /// Because a lane's RNG sees exactly the draw sequence the old
    /// single-item path consumed (sample bits, then donor/solver draws,
    /// then the next attempt), outcomes are **bit-identical for every
    /// `micro_batch` setting**, including 1.
    fn micro_batch_core<T>(
        &self,
        indices: &[usize],
        scratch: &mut BatchScratch,
        mut finish: impl FnMut(
            usize,
            u64,
            usize,
            BitGrid,
            bool,
            &mut rand::rngs::StdRng,
            &mut PipelineReport,
        ) -> Result<Option<T>, GenerateError>,
    ) -> Result<Vec<(PipelineReport, Option<T>)>, GenerateError> {
        struct Lane<T> {
            index: usize,
            seed: u64,
            rng: rand::rngs::StdRng,
            attempts: usize,
            report: PipelineReport,
            outcome: Option<T>,
            active: bool,
        }
        let mut lanes: Vec<Lane<T>> = indices
            .iter()
            .map(|&index| {
                let seed = item_seed(self.seed, index);
                Lane {
                    index,
                    seed,
                    rng: rand::rngs::StdRng::seed_from_u64(seed),
                    attempts: 0,
                    report: PipelineReport::default(),
                    outcome: None,
                    active: true,
                }
            })
            .collect();
        let (channels, side) = (self.model.channels(), self.model.side());

        while lanes.iter().any(|l| l.active) {
            // One lock-step sampling attempt across every active lane.
            let mut rngs: Vec<&mut rand::rngs::StdRng> = lanes
                .iter_mut()
                .filter(|l| l.active)
                .map(|l| &mut l.rng)
                .collect();
            let tensors = if self.stride <= 1 {
                self.sampler
                    .sample_batch_with(self.model, channels, side, &mut rngs, scratch)
            } else {
                self.sampler.sample_respaced_batch_with(
                    self.model,
                    channels,
                    side,
                    &self.retained,
                    &mut rngs,
                    scratch,
                )
            };
            drop(rngs);

            let mut tensors = tensors.into_iter();
            for lane in lanes.iter_mut().filter(|l| l.active) {
                let tensor = tensors.next().expect("one sample per active lane");
                lane.attempts += 1;
                lane.report.topologies_sampled += 1;
                let mut grid = tensor.unfold();
                let filtered = if bowtie::is_bowtie_free(&grid) {
                    Some((grid, false))
                } else if self.repair_bowties {
                    bowtie::repair_bowties(&mut grid);
                    lane.report.prefilter_repaired += 1;
                    Some((grid, true))
                } else {
                    lane.report.prefilter_rejected += 1;
                    None
                };
                if let Some((grid, repaired)) = filtered {
                    if let Some(outcome) = finish(
                        lane.index,
                        lane.seed,
                        lane.attempts,
                        grid,
                        repaired,
                        &mut lane.rng,
                        &mut lane.report,
                    )? {
                        lane.outcome = Some(outcome);
                        lane.active = false;
                        continue;
                    }
                }
                if lane.attempts >= self.max_attempts {
                    lane.active = false;
                }
            }
        }
        Ok(lanes
            .into_iter()
            .map(|lane| (lane.report, lane.outcome))
            .collect())
    }
}

/// Derives the per-item RNG seed from the batch seed and item index
/// (splitmix64 finaliser): items are independent of each other and of the
/// thread that happens to run them.
fn item_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|i| item_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(item_seed(1, 0), item_seed(2, 0));
    }
}
