//! [`GenerationSession`]: the inference-side engine of the train/infer
//! split.
//!
//! A session borrows an immutable [`TrainedModel`], owns one legalization
//! [`Solver`] (built once, reused for every pattern), and runs batch
//! generation through the same scheduler core as
//! [`crate::PatternService`] — each `generate()` call is a one-shot
//! single-request service whose workers live in a `std::thread::scope`.
//! Workers pull **micro-batches** of lanes and advance their denoising
//! chains in lock-step — one U-Net evaluation per step for the whole
//! chunk (see [`SessionBuilder::micro_batch`]). Every batch item still
//! draws its own RNG from `(session seed, item index)`, so the output is
//! **bit-identical for a given seed regardless of the thread count or the
//! micro-batch size** — scaling either knob never changes what gets
//! generated, only how fast.
//!
//! For many small concurrent requests, prefer the owned, long-lived
//! [`crate::PatternService`], which keeps a persistent pool and fills
//! micro-batches *across* requests.
//!
//! ```no_run
//! use diffpattern::{GenerationSession, Pipeline, PipelineConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::default(), &mut rng)?;
//! pipeline.train(200, &mut rng)?;
//! let model = pipeline.trained_model()?;
//! let session = pipeline.session_builder(&model).threads(4).seed(7).build()?;
//! let batch = session.generate(16)?;
//! println!("{} legal patterns, shortfall {}", batch.items.len(), batch.report.shortfall);
//! # Ok(())
//! # }
//! ```

use crate::engine::{self, Engine, LaneMsg, Mode, Payload, RequestJob};
use crate::{ConfigError, GenerateError, PipelineReport};
use dp_diffusion::{Conditioning, Precision, Sampler, TrainedModel};
use dp_drc::DesignRules;
use dp_geometry::BitGrid;
use dp_legalize::{SolveStats, Solver, SolverConfig};
use dp_squish::SquishPattern;
use rand::Rng;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Where a generated pattern came from: enough to reproduce it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// Position of this item in the requested batch.
    pub index: usize,
    /// The per-item RNG seed (derived from the request seed and `index`).
    pub seed: u64,
    /// Sampling attempts consumed, including the successful one.
    pub attempts: usize,
    /// Whether the bow-tie pre-filter repaired the topology.
    pub repaired: bool,
    /// Convergence statistics of the legalization solve.
    pub solve: SolveStats,
}

/// One streamed generation result: a DRC-clean pattern plus its
/// [`Provenance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generated {
    /// The legal squish pattern.
    pub pattern: SquishPattern,
    /// How it was produced.
    pub provenance: Provenance,
}

/// A completed batch: items in batch-index order plus the aggregated
/// per-lane reports.
#[derive(Debug, Clone)]
pub struct Generation {
    /// The generated patterns, sorted by [`Provenance::index`].
    pub items: Vec<Generated>,
    /// Merged statistics of every lane, including the
    /// [`PipelineReport::shortfall`] count of batch slots that exhausted
    /// their attempt budget.
    pub report: PipelineReport,
}

/// Builder for [`GenerationSession`]; see the module docs for an example.
///
/// All knobs have working defaults; `build` validates the combination and
/// returns [`ConfigError`] instead of panicking.
#[derive(Debug, Clone)]
pub struct SessionBuilder<'m> {
    model: &'m TrainedModel,
    rules: DesignRules,
    solver: SolverConfig,
    stride: usize,
    repair_bowties: bool,
    max_attempts: usize,
    threads: usize,
    micro_batch: usize,
    seed: u64,
    donors: Vec<SquishPattern>,
}

impl<'m> SessionBuilder<'m> {
    /// Design rules for legalization (default: [`DesignRules::standard`]).
    pub fn rules(mut self, rules: DesignRules) -> Self {
        self.rules = rules;
        self
    }

    /// Legalization solver settings (default: a window matching the
    /// paper's 2048 nm tile).
    pub fn solver_config(mut self, config: SolverConfig) -> Self {
        self.solver = config;
        self
    }

    /// Reverse-sampling stride: 1 runs the full ancestral chain, larger
    /// values use the respaced sampler with `K / stride` denoiser calls.
    pub fn sample_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Repair bow-ties instead of rejecting the sample (default: true).
    pub fn repair_bowties(mut self, repair: bool) -> Self {
        self.repair_bowties = repair;
        self
    }

    /// Per-item sampling attempt budget before the slot is counted as
    /// shortfall (default: 4).
    pub fn max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Worker thread count; 0 (the default) uses the machine's available
    /// parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sampling micro-batch: how many denoising chains each worker
    /// advances in lock-step per U-Net call (default: 8, tuned via the
    /// `nn_micro` batched-infer bench). Larger values amortise each
    /// layer's weight traffic over more lanes; output is **bit-identical
    /// at every setting** because every lane keeps its own
    /// `(seed, index)`-derived RNG stream.
    pub fn micro_batch(mut self, micro_batch: usize) -> Self {
        self.micro_batch = micro_batch;
        self
    }

    /// Batch seed. Together with an item's index it fully determines that
    /// item, independent of thread count (default: 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Donor patterns for Solving-E initialisation (paper Table II's
    /// accelerated mode). Empty (the default) falls back to Solving-R.
    pub fn donors(mut self, donors: Vec<SquishPattern>) -> Self {
        self.donors = donors;
        self
    }

    /// Validates the configuration and builds the session.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroStride`], [`ConfigError::ZeroAttempts`], or
    /// [`ConfigError::WindowTooSmall`] when the solver window cannot hold
    /// the model's topology matrix.
    pub fn build(self) -> Result<GenerationSession<'m>, ConfigError> {
        if self.micro_batch == 0 {
            return Err(ConfigError::ZeroMicroBatch);
        }
        engine::validate_request(
            self.stride,
            self.max_attempts,
            self.model.matrix_side(),
            &self.solver,
        )?;
        let threads = engine::resolve_threads(self.threads);
        let sampler = self.model.sampler();
        let retained: Arc<[usize]> = sampler.strided_steps(self.stride).into();
        Ok(GenerationSession {
            model: self.model,
            sampler,
            solver: Solver::new(self.rules, self.solver),
            rules: self.rules,
            retained,
            stride: self.stride,
            repair_bowties: self.repair_bowties,
            max_attempts: self.max_attempts,
            threads,
            micro_batch: self.micro_batch,
            seed: self.seed,
            donors: self.donors.into(),
        })
    }
}

/// A configured generation engine over a shared [`TrainedModel`]: samples
/// topologies, pre-filters bow-ties, legalizes with a reused [`Solver`],
/// and streams [`Generated`] items — across as many threads as you ask
/// for, deterministically per seed.
///
/// Internally each batch call runs the [`crate::PatternService`]
/// scheduler core with exactly one request, so the two APIs share one
/// engine and one determinism contract.
#[derive(Debug)]
pub struct GenerationSession<'m> {
    model: &'m TrainedModel,
    sampler: Sampler,
    solver: Solver,
    rules: DesignRules,
    retained: Arc<[usize]>,
    stride: usize,
    repair_bowties: bool,
    max_attempts: usize,
    threads: usize,
    micro_batch: usize,
    seed: u64,
    donors: Arc<[SquishPattern]>,
}

impl<'m> GenerationSession<'m> {
    /// Starts a builder over `model` with default settings.
    pub fn builder(model: &'m TrainedModel) -> SessionBuilder<'m> {
        SessionBuilder {
            model,
            rules: DesignRules::standard(),
            solver: SolverConfig::for_window(2048, 2048),
            stride: 1,
            repair_bowties: true,
            max_attempts: 4,
            threads: 0,
            micro_batch: 8,
            seed: 0,
            donors: Vec::new(),
        }
    }

    /// The shared model.
    pub fn model(&self) -> &'m TrainedModel {
        self.model
    }

    /// The design rules in force.
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// The session's (reused) legalization solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Worker thread count used for batches.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Lock-step denoising lanes per U-Net call (see
    /// [`SessionBuilder::micro_batch`]).
    pub fn micro_batch(&self) -> usize {
        self.micro_batch
    }

    /// The batch seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates a batch of `count` legal patterns, collecting the stream
    /// into index order. Slots whose attempt budget ran out are reported
    /// in [`PipelineReport::shortfall`] rather than silently missing.
    ///
    /// # Errors
    ///
    /// [`GenerateError`] on structural failures only; solver infeasibility
    /// and pre-filter rejections are statistics, not errors.
    pub fn generate(&self, count: usize) -> Result<Generation, GenerateError> {
        let mut items = Vec::with_capacity(count);
        let report = self.generate_streaming(count, |g| items.push(g))?;
        items.sort_by_key(|g| g.provenance.index);
        Ok(Generation { items, report })
    }

    /// Generates `count` patterns, invoking `on_item` as each finished
    /// [`Generated`] arrives (completion order under multiple threads,
    /// index order with one). Returns the aggregated report.
    ///
    /// # Errors
    ///
    /// As [`GenerationSession::generate`].
    pub fn generate_streaming(
        &self,
        count: usize,
        mut on_item: impl FnMut(Generated),
    ) -> Result<PipelineReport, GenerateError> {
        self.run_request(count, Mode::Generate, |payload| {
            if let Payload::Pattern(generated) = payload {
                on_item(generated);
            }
        })
    }

    /// Samples `count` topology matrices (pre-filtered, no legalization) —
    /// the raw Table II "Sampling" phase, thread-parallel and
    /// deterministic per seed like [`GenerationSession::generate`].
    pub fn sample_topologies(&self, count: usize) -> (Vec<BitGrid>, PipelineReport) {
        let mut out: Vec<(usize, BitGrid)> = Vec::with_capacity(count);
        let report = self
            .run_request(count, Mode::TopologyOnly, |payload| {
                if let Payload::Topology(index, grid) = payload {
                    out.push((index, grid));
                }
            })
            .expect("topology sampling is infallible");
        out.sort_by_key(|(index, _)| *index);
        (out.into_iter().map(|(_, grid)| grid).collect(), report)
    }

    /// Legalizes one topology into up to `variants` distinct patterns
    /// (DiffPattern-L, paper Fig. 7), with full failure accounting in the
    /// returned report.
    ///
    /// # Errors
    ///
    /// [`GenerateError::Assembly`] when a solution does not match the
    /// topology (a solver contract violation).
    pub fn legalize_variants(
        &self,
        topology: &BitGrid,
        variants: usize,
        rng: &mut impl Rng,
    ) -> Result<(Vec<SquishPattern>, PipelineReport), GenerateError> {
        engine::legalize_variants_with(&self.solver, topology, variants, rng)
    }

    /// Runs one request through the shared scheduler core: a one-shot
    /// [`Engine`] whose workers exit when the queue drains. With one
    /// effective worker the loop runs inline on the calling thread (inner
    /// GEMM parallelism stays enabled, so large multiplies can use the
    /// whole machine); with more, scoped workers disable inner GEMM
    /// threads — the batch is already data-parallel — while the calling
    /// thread drains the stream.
    ///
    /// `count == 0` and `micro_batch > count` are both well-defined: the
    /// request admits zero lanes (its channel disconnects immediately) or
    /// one undersized chunk, no worker blocks, and the report is all-zero
    /// for an empty batch.
    fn run_request(
        &self,
        count: usize,
        mode: Mode,
        mut on_payload: impl FnMut(Payload),
    ) -> Result<PipelineReport, GenerateError> {
        let engine = Engine::new(
            self.sampler.clone(),
            self.model.channels(),
            self.model.side(),
            self.micro_batch,
            true,
            0,
        );
        let job = RequestJob {
            mode,
            seed: self.seed,
            count,
            first_index: 0,
            stride: self.stride,
            // Sessions borrow a caller-prepacked model and always run it
            // as-is; the precision knob is a service/request-level feature.
            precision: Precision::Exact,
            retained: Arc::clone(&self.retained),
            max_attempts: self.max_attempts,
            repair_bowties: self.repair_bowties,
            solver: self.solver.clone(),
            donors: Arc::clone(&self.donors),
            // Sessions always run unconditioned (`plan_hash() == 0`);
            // per-request conditioning is a service-level feature.
            conditioning: Arc::new(Conditioning::none()),
            cond_hash: 0,
            deadline: None,
        };
        let rx = engine
            .submit(job, 0, Arc::new(AtomicBool::new(false)))
            .expect("a session engine has no admission bound");

        let chunks = count.div_ceil(self.micro_batch.max(1));
        let workers = self.threads.min(chunks).max(1);

        let mut report = PipelineReport::default();
        let mut first_error: Option<GenerateError> = None;
        // `first_error` is threaded as an argument (not captured) so the
        // single-worker loop below can also read it between chunks.
        let mut absorb = |msg: LaneMsg, first_error: &mut Option<GenerateError>| {
            report.merge(&msg.delta);
            match msg.payload {
                Ok(Some(payload)) => on_payload(payload),
                Ok(None) => report.shortfall += 1,
                Err(e) => {
                    if first_error.is_none() {
                        *first_error = Some(e);
                    }
                }
            }
        };

        if workers <= 1 {
            // Drain between chunks so `on_payload` streams as results
            // complete (index order with one worker) and the channel never
            // buffers more than one chunk's messages; stop at the first
            // structural error instead of burning the rest of the batch.
            engine::run_worker_observed(self.model, &engine, || {
                for msg in rx.try_iter() {
                    absorb(msg, &mut first_error);
                }
                first_error.is_none()
            });
            for msg in rx.try_iter() {
                absorb(msg, &mut first_error);
            }
        } else {
            std::thread::scope(|scope| {
                let engine = &engine;
                let model = self.model;
                for _ in 0..workers {
                    scope.spawn(move || {
                        dp_nn::with_inner_gemm_parallelism(false, || {
                            engine::run_worker(model, engine)
                        })
                    });
                }
                // Drain on the coordinating thread so `on_payload` can
                // stream results to the caller as they complete; the
                // iterator ends when the last lane's sender is dropped.
                for msg in rx.iter() {
                    absorb(msg, &mut first_error);
                }
            });
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }
}
