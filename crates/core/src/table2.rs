//! The Table II harness: model efficiency.
//!
//! The paper reports the average wall-clock cost of (a) sampling one
//! topology from the diffusion model and (b) solving the nonlinear system
//! for one topology, with random (Solving-R) versus existing-vector
//! (Solving-E) initialisation — the latter 2.30x faster in the paper.

use crate::{ConfigError, PatternService, RequestSpec};
use dp_legalize::{Init, Solver};
use dp_squish::SquishPattern;
use rand::Rng;
use std::time::Instant;

/// One row of the efficiency table.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyRow {
    /// Phase name as printed (`Sampling`, `Solving-R`, `Solving-E`).
    pub phase: String,
    /// Average seconds per sample.
    pub seconds: f64,
    /// Acceleration relative to the phase's baseline (`None` for
    /// sampling, which the paper prints as N/A).
    pub acceleration: Option<f64>,
    /// Mean projection iterations per solve (`None` for sampling) — a
    /// machine-independent convergence measure alongside wall-clock time.
    pub mean_iterations: Option<f64>,
}

impl std::fmt::Display for EfficiencyRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.acceleration {
            Some(a) => write!(f, "{:<12} {:>12.4} s {:>8.2}x", self.phase, self.seconds, a)?,
            None => write!(f, "{:<12} {:>12.4} s      N/A", self.phase, self.seconds)?,
        }
        if let Some(it) = self.mean_iterations {
            write!(f, "  ({it:.1} iters)")?;
        }
        Ok(())
    }
}

/// Measures the three rows of Table II through a [`PatternService`].
///
/// `spec` supplies the rules, seed and stride (its `count` is overridden
/// by `samples`); `donors` supply the existing Δ vectors for Solving-E
/// (the paper draws them from the extended training set) — with no donors
/// the Solving-E phase degrades to random initialisation, like the
/// service does. Sampling runs through the service's persistent pool at
/// its configured micro-batch, so this also measures the serving engine's
/// throughput.
///
/// # Errors
///
/// [`ConfigError`] when the spec is rejected by the service.
pub fn run(
    service: &PatternService,
    spec: &RequestSpec,
    donors: &[SquishPattern],
    samples: usize,
    rng: &mut impl Rng,
) -> Result<Vec<EfficiencyRow>, ConfigError> {
    // Phase 1: topology sampling.
    let start = Instant::now();
    let (topologies, _) = service.sample_topologies(&RequestSpec {
        count: samples,
        ..spec.clone()
    })?;
    let sampling = start.elapsed().as_secs_f64() / samples.max(1) as f64;

    // Phase 2: solving with random vs existing initialisation on the SAME
    // topologies, so the comparison is paired. One solver is built from
    // the spec and reused for every solve — no per-call construction.
    let solver = Solver::new(spec.rules, spec.solver);

    let start = Instant::now();
    let mut iters_r = 0usize;
    for topo in &topologies {
        if let Ok(s) = solver.solve(topo, Init::Random, rng) {
            iters_r += s.stats.iterations;
        }
    }
    let solving_r = start.elapsed().as_secs_f64() / topologies.len().max(1) as f64;

    let start = Instant::now();
    let mut iters_e = 0usize;
    for topo in &topologies {
        let init = if donors.is_empty() {
            Init::Random
        } else {
            let donor = &donors[rng.gen_range(0..donors.len())];
            Init::Existing(donor.dx(), donor.dy())
        };
        if let Ok(s) = solver.solve(topo, init, rng) {
            iters_e += s.stats.iterations;
        }
    }
    let solving_e = start.elapsed().as_secs_f64() / topologies.len().max(1) as f64;
    let n_topo = topologies.len().max(1) as f64;

    Ok(vec![
        EfficiencyRow {
            phase: "Sampling".into(),
            seconds: sampling,
            acceleration: None,
            mean_iterations: None,
        },
        EfficiencyRow {
            phase: "Solving-R".into(),
            seconds: solving_r,
            acceleration: Some(1.0),
            mean_iterations: Some(iters_r as f64 / n_topo),
        },
        EfficiencyRow {
            phase: "Solving-E".into(),
            seconds: solving_e,
            acceleration: Some(if solving_e > 0.0 {
                solving_r / solving_e
            } else {
                f64::INFINITY
            }),
            mean_iterations: Some(iters_e as f64 / n_topo),
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};
    use rand::SeedableRng;

    #[test]
    fn measures_three_phases() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
        let _ = pipeline.train(4, &mut rng).unwrap();
        let model = std::sync::Arc::new(pipeline.trained_model().unwrap());
        let service = crate::PatternService::builder(model)
            .threads(1)
            .build()
            .unwrap();
        let spec = pipeline.request_spec(0);
        let rows = run(&service, &spec, &pipeline.dataset().extended, 3, &mut rng).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].phase, "Sampling");
        assert!(rows[0].seconds > 0.0);
        assert!(rows[2].acceleration.unwrap() > 0.0);
        for r in &rows {
            assert!(!r.to_string().is_empty());
        }
    }
}
