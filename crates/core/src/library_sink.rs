//! Draining a [`RequestHandle`] stream into a durable pattern library.
//!
//! [`PatternService`](crate::PatternService) streams items in
//! *completion* order, while [`dp_library::LibraryWriter`] requires
//! *ascending source-index* order per bucket (that is what makes
//! first-occurrence-wins dedup deterministic under resume and merge).
//! [`LibrarySink`] bridges the two with a reorder buffer: items are
//! held until their index is next, shortfall indices (slots the
//! generator never delivered) are recorded as skips once the stream
//! ends, and every delivered pattern lands in the store at its absolute
//! index `first_index + Provenance::index`.
//!
//! The sink never checkpoints — callers decide their durability points
//! (typically [`dp_library::LibraryWriter::checkpoint`] periodically
//! and `finish` at the end), which keeps a simulated kill in tests and
//! the `dpgen library build --stop-after` path honest: dropping
//! mid-drain loses exactly the uncommitted tail, nothing else.

use crate::service::RequestHandle;
use crate::session::Generated;
use dp_library::{IngestOutcome, LibraryError, LibraryWriter};
use std::collections::BTreeMap;

/// What a drain did, with running totals (also passed to the observer
/// after every slot, delivered or skipped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkReport {
    /// Patterns stored (new topologies + new variants).
    pub accepted: u64,
    /// Byte-identical patterns dropped and counted by the store.
    pub duplicates: u64,
    /// Slots the generator never delivered, recorded as skips.
    pub skipped: u64,
    /// The bucket's next source index after the drain.
    pub next_index: u64,
}

/// Error draining a request stream into a library.
#[derive(Debug)]
#[non_exhaustive]
pub enum SinkError {
    /// The store rejected or failed an ingest.
    Library(LibraryError),
    /// The generation request itself failed.
    Generate {
        /// Rendered [`crate::GenerateError`].
        detail: String,
    },
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkError::Library(e) => write!(f, "library sink: {e}"),
            SinkError::Generate { detail } => write!(f, "library sink: request failed: {detail}"),
        }
    }
}

impl std::error::Error for SinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SinkError::Library(e) => Some(e),
            SinkError::Generate { .. } => None,
        }
    }
}

impl From<LibraryError> for SinkError {
    fn from(e: LibraryError) -> Self {
        SinkError::Library(e)
    }
}

/// Index-ordered ingest of request streams into one library bucket.
pub struct LibrarySink<'a> {
    writer: &'a mut LibraryWriter,
    method: String,
    ruleset: String,
}

impl std::fmt::Debug for LibrarySink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LibrarySink")
            .field("method", &self.method)
            .field("ruleset", &self.ruleset)
            .finish()
    }
}

impl<'a> LibrarySink<'a> {
    /// A sink feeding the `(method, ruleset)` bucket of `writer`.
    pub fn new(writer: &'a mut LibraryWriter, method: &str, ruleset: &str) -> Self {
        LibrarySink {
            writer,
            method: method.to_string(),
            ruleset: ruleset.to_string(),
        }
    }

    /// Drains a request stream into the bucket. `first_index` must be
    /// the spec's [`crate::RequestSpec::first_index`], which must in
    /// turn equal the bucket's cursor
    /// ([`dp_library::LibraryWriter::open_bucket`] returns it) — the
    /// store rejects anything else as out-of-order.
    ///
    /// Patterns from the service are DRC-clean by construction, so they
    /// are stored with `legal = true`.
    pub fn drain(&mut self, handle: RequestHandle) -> Result<SinkReport, SinkError> {
        self.drain_with(handle, |_| {})
    }

    /// Like [`LibrarySink::drain`], with an observer called after every
    /// settled slot (accept, dedup, or skip) with the running totals —
    /// the hook `dpgen library build --stop-after` uses to die at an
    /// exact point, and `dpserve` uses to bump its metrics counters.
    pub fn drain_with(
        &mut self,
        mut handle: RequestHandle,
        mut observer: impl FnMut(&SinkReport),
    ) -> Result<SinkReport, SinkError> {
        let first_index = handle.first_index() as u64;
        let mut report = SinkReport {
            next_index: first_index,
            ..SinkReport::default()
        };
        let mut buffered: BTreeMap<usize, Generated> = BTreeMap::new();
        let mut next = 0usize;
        let mut delivered = 0usize;
        while let Some(item) = handle.recv() {
            delivered += 1;
            buffered.insert(item.provenance.index, item);
            while let Some(ready) = buffered.remove(&next) {
                self.ingest_one(first_index, next, &ready, &mut report)?;
                next += 1;
                observer(&report);
            }
        }
        if let Some(e) = handle.error() {
            return Err(SinkError::Generate {
                detail: e.to_string(),
            });
        }
        // Stream over: `delivered + shortfall == count`, so the slots
        // past the last deliverable are exactly the shortfall. Interior
        // gaps still buffered past them drain in index order.
        let count = delivered + handle.report().shortfall;
        for i in next..count {
            match buffered.remove(&i) {
                Some(ready) => self.ingest_one(first_index, i, &ready, &mut report)?,
                None => {
                    self.writer.record_skip(&self.method, &self.ruleset)?;
                    report.skipped += 1;
                    report.next_index += 1;
                }
            }
            observer(&report);
        }
        Ok(report)
    }

    fn ingest_one(
        &mut self,
        first_index: u64,
        index: usize,
        item: &Generated,
        report: &mut SinkReport,
    ) -> Result<(), SinkError> {
        let outcome = self.writer.ingest(
            &self.method,
            &self.ruleset,
            first_index + index as u64,
            &item.pattern,
            true,
        )?;
        match outcome {
            IngestOutcome::NewTopology | IngestOutcome::NewVariant => report.accepted += 1,
            IngestOutcome::Duplicate => report.duplicates += 1,
        }
        report.next_index += 1;
        Ok(())
    }
}
