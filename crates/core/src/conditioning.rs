//! Service-level conditioning recipes: turning design rules and DRC
//! reports into the per-lane [`Conditioning`] a [`crate::RequestSpec`]
//! carries.
//!
//! The diffusion crate owns the *mechanism* (frozen-region inpainting,
//! motif-avoidance guidance); this module owns the two *policies* the
//! serving stack uses:
//!
//! * [`hotspot_guidance`] — the avoidance term for "generate hotspot-free
//!   topologies under these rules" requests (the `dpgen
//!   --avoid-hotspots` flag),
//! * [`repair_conditioning`] — the inpainting constraint for the library
//!   repair workload: freeze every cell of a DRC-flagged pattern except
//!   the violating neighbourhood, so a resample keeps the legal
//!   structure and redraws only what the checker objected to.

use dp_diffusion::{Conditioning, FrozenRegion, Motif, MotifGuidance};
use dp_drc::{flagged_cells, DesignRules};
use dp_geometry::BitGrid;
use dp_squish::{DeepSquishTensor, SquishPattern};

/// The motif-avoidance term for hotspot-free generation under `rules`:
/// isolated single cells are the topology-level signature of
/// minimum-width/minimum-area hotspots, so the terminal draw is biased
/// toward its 4-neighbour consensus. The weight is doubled when an
/// isolated cell cannot even satisfy the area rule at minimum width
/// (`width_min² < area_min`) — under such rules the motif is a
/// guaranteed violation, not merely a risk.
pub fn hotspot_guidance(rules: &DesignRules) -> MotifGuidance {
    let min_square = (rules.width_min() as i128).pow(2);
    let weight = if min_square < rules.area_min() {
        8.0
    } else {
        4.0
    };
    MotifGuidance::new(Motif::IsolatedCell, weight).expect("fixed weights are finite and positive")
}

/// Builds the inpainting constraint that repairs `pattern` under
/// `rules`: every cell [`flagged_cells`] implicates in a violation —
/// dilated by one cell in all eight directions, so the sampler can move
/// material *into* the offending neighbourhood — is left free, and the
/// rest of the topology is frozen to its current bits. The returned
/// conditioning also carries [`hotspot_guidance`], steering the redrawn
/// cells away from fresh hotspots.
///
/// Returns `None` when the pattern is already clean (nothing to thaw) or
/// when its topology cannot fold into a `channels`-deep tensor (the
/// caller must extend the pattern to the serving model's matrix side
/// first, e.g. with [`dp_squish::extend_to_side`]).
pub fn repair_conditioning(
    pattern: &SquishPattern,
    rules: &DesignRules,
    channels: usize,
) -> Option<Conditioning> {
    let flagged = flagged_cells(pattern, rules);
    if flagged.is_empty() {
        return None;
    }
    let topo = pattern.topology();
    let (w, h) = (topo.width(), topo.height());
    let mut mask = BitGrid::new(w, h).expect("topology is non-empty");
    for row in 0..h {
        for col in 0..w {
            let thaw = (row.saturating_sub(1)..=(row + 1).min(h - 1))
                .any(|r| (col.saturating_sub(1)..=(col + 1).min(w - 1)).any(|c| flagged.get(c, r)));
            mask.set(col, row, !thaw);
        }
    }
    let mask_t = DeepSquishTensor::fold(&mask, channels).ok()?;
    let bits_t = DeepSquishTensor::fold(topo, channels).ok()?;
    let region = FrozenRegion::new(mask_t.bits().to_vec(), bits_t.bits().to_vec())
        .expect("mask and bits fold from the same grid shape");
    Some(
        Conditioning::none()
            .with_frozen(region)
            .with_avoid(hotspot_guidance(rules)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geometry::{Layout, Rect};

    fn rules() -> DesignRules {
        DesignRules::builder()
            .space_min(40)
            .width_min(40)
            .area_range(4_000, 2_000_000)
            .build()
            .unwrap()
    }

    fn tile() -> Layout {
        Layout::new(Rect::new(0, 0, 2048, 2048).unwrap())
    }

    #[test]
    fn guidance_targets_isolated_cells_and_scales_with_rules() {
        let g = hotspot_guidance(&rules());
        assert_eq!(g.motif(), Motif::IsolatedCell);
        assert!(g.weight() > 0.0);
        // width_min² = 1600 < area_min 4000: the doubled weight kicks in.
        let strict = hotspot_guidance(&rules());
        // width_min² = 250 000 ≥ area_min 4000: the base weight.
        let relaxed = hotspot_guidance(
            &DesignRules::builder()
                .space_min(40)
                .width_min(500)
                .area_range(4_000, 2_000_000)
                .build()
                .unwrap(),
        );
        assert!(strict.weight() > relaxed.weight());
    }

    #[test]
    fn clean_pattern_needs_no_repair() {
        let mut l = tile();
        l.push(Rect::new(100, 100, 400, 1000).unwrap());
        l.push(Rect::new(600, 100, 900, 1000).unwrap());
        let p = SquishPattern::encode(&l);
        let (p, _) = dp_squish::extend_to_side(&p, 16).unwrap();
        assert!(repair_conditioning(&p, &rules(), 16).is_none());
    }

    #[test]
    fn dirty_pattern_freezes_the_legal_remainder() {
        let mut l = tile();
        l.push(Rect::new(100, 100, 400, 1000).unwrap());
        l.push(Rect::new(420, 100, 700, 1000).unwrap()); // 20 nm gap
        let p = SquishPattern::encode(&l);
        let (p, _) = dp_squish::extend_to_side(&p, 16).unwrap();
        let cond = repair_conditioning(&p, &rules(), 16).expect("pattern is dirty");
        assert!(cond.avoid().is_some());
        let region = cond.frozen().expect("repair freezes the legal cells");
        assert_eq!(region.len(), 16 * 16);
        // Something is frozen (the legal bars survive) and something is
        // thawed (the violating gap can be redrawn).
        let frozen = region.mask().iter().filter(|&&m| m).count();
        assert!(frozen > 0 && frozen < region.len());
        // Frozen targets are the pattern's own bits: a conditioned
        // resample reproduces the legal structure exactly.
        let bits = DeepSquishTensor::fold(p.topology(), 16).unwrap();
        for (i, (&m, &b)) in region.mask().iter().zip(region.bits()).enumerate() {
            if m {
                assert_eq!(b, bits.bits()[i], "frozen target {i} diverges");
            }
        }
    }

    #[test]
    fn unfoldable_topology_yields_none() {
        let mut l = tile();
        l.push(Rect::new(100, 100, 400, 1000).unwrap());
        l.push(Rect::new(420, 100, 700, 1000).unwrap());
        // Non-square topology: fold fails, so no conditioning.
        let p = SquishPattern::encode(&l);
        assert!(repair_conditioning(&p, &rules(), 16).is_none());
    }
}
