//! The shared generation engine behind [`crate::PatternService`] and
//! [`crate::GenerationSession`]: a request scheduler whose workers fill
//! each denoising micro-batch with lanes drawn from **multiple pending
//! requests**.
//!
//! Every requested item is a *lane* with its own RNG derived from
//! `(request seed, item index)` (splitmix64 finaliser). Because the
//! batched sampler advances each lane on exactly the random stream a solo
//! chain would consume, and the stacked U-Net evaluation is bit-identical
//! per item, a lane's outcome does not depend on which other lanes —
//! from the same request or any other — happen to share its micro-batch.
//! That is the whole determinism argument: scheduling (worker count,
//! admission order, concurrent load, priorities) chooses *when* a lane
//! runs, never *what* it produces.
//!
//! The module is internal; the public faces are [`crate::PatternService`]
//! (persistent workers over an owned `Arc<TrainedModel>`) and
//! [`crate::GenerationSession`] (one-shot scoped workers over a borrowed
//! model). Both run [`run_worker`] verbatim, so every session test also
//! exercises the service core.

use crate::{GenerateError, Generated, PipelineReport, Provenance};
use dp_diffusion::{BatchScratch, Conditioning, Precision, Sampler, TrainedModel};
use dp_geometry::{bowtie, BitGrid};
use dp_legalize::{Init, Solver};
use dp_squish::{DeepSquishTensor, SquishPattern};
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// What a finished lane hands back through its request's channel.
pub(crate) enum Payload {
    /// A fully legalized pattern with provenance.
    Pattern(Generated),
    /// A pre-filtered topology (no legalization), tagged with its index.
    Topology(usize, BitGrid),
}

/// One completed lane: the statistics delta it accumulated plus its
/// outcome. `Ok(None)` means the lane exhausted its attempt budget —
/// shortfall, accounted by the receiver.
pub(crate) struct LaneMsg {
    pub(crate) delta: PipelineReport,
    pub(crate) payload: Result<Option<Payload>, GenerateError>,
}

/// What the lanes of a request produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Sample → pre-filter → legalize into [`Payload::Pattern`]s.
    Generate,
    /// Sample → pre-filter only, into [`Payload::Topology`]s.
    TopologyOnly,
}

/// The immutable description of one admitted request, shared between the
/// scheduler queue and every in-flight lane.
pub(crate) struct RequestJob {
    pub(crate) mode: Mode,
    pub(crate) seed: u64,
    pub(crate) count: usize,
    /// Absolute index of the request's first item: lane `i` derives its
    /// RNG stream from `item_seed(seed, first_index + i)`, so a request
    /// is an exact sub-range of the `(seed, index)` item space.
    pub(crate) first_index: usize,
    /// Reverse-sampling stride; with `precision` and the conditioning
    /// hash it forms the [`LanePlan`] key: lanes may share a lock-step
    /// micro-batch only when they traverse the same denoising step
    /// sequence through the same model under the same constraints.
    pub(crate) stride: usize,
    /// Which prepacked model variant evaluates this request's lanes
    /// ([`Precision::Exact`] keeps the bit-exact contract; `Bf16` runs the
    /// engine's lazily-built reduced-precision copy). Part of the plan
    /// key alongside `stride`.
    pub(crate) precision: Precision,
    /// The retained denoising steps for `stride > 1` (precomputed once).
    pub(crate) retained: Arc<[usize]>,
    /// Per-lane sampling constraints (frozen region, motif guidance) —
    /// every lane of the request samples under the same conditioning.
    /// [`Conditioning::none`] is the unconditioned path and draws the
    /// exact random sequence the pre-conditioning sampler drew.
    pub(crate) conditioning: Arc<Conditioning>,
    /// [`Conditioning::plan_hash`] of `conditioning`, precomputed at
    /// submit: the third component of the micro-batch plan key (lanes
    /// only share a lock-step batch when their conditioning matches).
    pub(crate) cond_hash: u64,
    pub(crate) max_attempts: usize,
    pub(crate) repair_bowties: bool,
    pub(crate) solver: Solver,
    pub(crate) donors: Arc<[SquishPattern]>,
    /// Absolute deadline. Lanes not delivered by this instant are
    /// converted to shortfall: unclaimed lanes at claim time, in-flight
    /// lanes between denoising rounds. `None` never expires.
    pub(crate) deadline: Option<Instant>,
}

/// The micro-batch *plan key*: the sampling parameters every lane of a
/// lock-step chunk must agree on. Stride and precision decide which
/// denoising steps run through which model variant; the conditioning
/// hash keeps differently-constrained lanes out of each other's batches
/// (the batched sampler applies one [`Conditioning`] to the whole
/// chunk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LanePlan {
    stride: usize,
    precision: Precision,
    cond_hash: u64,
}

impl LanePlan {
    fn of(job: &RequestJob) -> Self {
        LanePlan {
            stride: job.stride,
            precision: job.precision,
            cond_hash: job.cond_hash,
        }
    }
}

struct Request {
    job: RequestJob,
    priority: i32,
    /// Admission sequence number: the FIFO tie-break within a priority.
    seq: u64,
    cancel: Arc<AtomicBool>,
    tx: mpsc::Sender<LaneMsg>,
}

/// A claimed work item: one batch slot of one request, with its own RNG
/// stream and attempt budget.
struct Lane {
    req: Arc<Request>,
    index: usize,
    seed: u64,
    rng: rand::rngs::StdRng,
    attempts: usize,
    report: PipelineReport,
    outcome: Option<Payload>,
    error: Option<GenerateError>,
    active: bool,
}

/// A request still holding unclaimed lanes.
struct PendingRequest {
    req: Arc<Request>,
    next_lane: usize,
}

struct Sched {
    /// Pending requests, kept sorted by `(priority desc, seq asc)`.
    queue: Vec<PendingRequest>,
    next_seq: u64,
    shutdown: bool,
}

/// The scheduler: a queue of admitted requests plus the sampling
/// geometry workers need to draw lanes. Workers block on the condvar in
/// service mode and exit when idle in one-shot (session) mode.
pub(crate) struct Engine {
    sampler: Sampler,
    channels: usize,
    side: usize,
    micro_batch: usize,
    /// One-shot mode: workers return instead of parking when the queue is
    /// empty (used by `GenerationSession`'s scoped workers).
    exit_when_idle: bool,
    /// Admission bound on *pending* (not yet fully claimed) requests;
    /// 0 means unbounded.
    max_queued: usize,
    /// Lanes claimed by workers whose result message has not been
    /// delivered yet — the live load figure `/metrics` exposes.
    lanes_in_flight: AtomicUsize,
    /// The bf16-prepacked model copy, built from the workers' exact model
    /// on the first [`Precision::Bf16`] chunk and shared by every worker
    /// thereafter (the master weights are identical, only the packed GEMM
    /// panels differ — see [`TrainedModel::with_precision`]).
    bf16_model: OnceLock<TrainedModel>,
    sched: Mutex<Sched>,
    work: Condvar,
}

/// A point-in-time view of the scheduler, surfaced as
/// [`crate::ServiceStats`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EngineStats {
    pub(crate) queued_requests: usize,
    pub(crate) queued_lanes: usize,
    pub(crate) lanes_in_flight: usize,
}

/// Admission rejected: the pending-request queue is at its bound.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueFull {
    pub(crate) queued: usize,
}

impl Engine {
    pub(crate) fn new(
        sampler: Sampler,
        channels: usize,
        side: usize,
        micro_batch: usize,
        exit_when_idle: bool,
        max_queued: usize,
    ) -> Self {
        Engine {
            sampler,
            channels,
            side,
            micro_batch: micro_batch.max(1),
            exit_when_idle,
            max_queued,
            lanes_in_flight: AtomicUsize::new(0),
            bf16_model: OnceLock::new(),
            sched: Mutex::new(Sched {
                queue: Vec::new(),
                next_seq: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        }
    }

    /// The one place the scheduler mutex is acquired. Poisoning means a
    /// worker panicked mid-rearrangement and the queue may be torn;
    /// resuming over it could duplicate or drop lanes, so propagating
    /// the original panic (and letting the supervisor restart) is the
    /// safer failure mode.
    fn lock_sched(&self) -> std::sync::MutexGuard<'_, Sched> {
        // dp-lint: allow(panic-in-serving-tier): poisoned scheduler state must not be resumed — propagate the worker panic
        self.sched.lock().expect("scheduler lock poisoned")
    }

    /// Parks on the work condvar, optionally with a timeout, reacquiring
    /// the scheduler lock (same poisoning policy as [`Engine::lock_sched`]).
    fn wait_work<'e>(
        &'e self,
        guard: std::sync::MutexGuard<'e, Sched>,
        timeout: Option<std::time::Duration>,
    ) -> std::sync::MutexGuard<'e, Sched> {
        let reacquired = match timeout {
            Some(t) => self
                .work
                .wait_timeout(guard, t)
                .map(|(g, _)| g)
                .map_err(|_| ()),
            None => self.work.wait(guard).map_err(|_| ()),
        };
        // dp-lint: allow(panic-in-serving-tier): poisoned scheduler state must not be resumed — propagate the worker panic
        reacquired.expect("scheduler lock poisoned while waiting")
    }

    /// Queue depth and in-flight lane count right now. The two reads are
    /// not one atomic snapshot — a lane can move from queued to in-flight
    /// between them — but each figure is individually exact.
    pub(crate) fn stats(&self) -> EngineStats {
        let sched = self.lock_sched();
        EngineStats {
            queued_requests: sched.queue.len(),
            queued_lanes: sched
                .queue
                .iter()
                .map(|p| p.req.job.count - p.next_lane)
                .sum(),
            lanes_in_flight: self.lanes_in_flight.load(Ordering::Relaxed),
        }
    }

    /// The retained-step subset for a request stride (the per-request
    /// sampling plan).
    pub(crate) fn strided_steps(&self, stride: usize) -> Vec<usize> {
        self.sampler.strided_steps(stride)
    }

    /// Admits a request. The returned receiver yields one [`LaneMsg`] per
    /// requested item and disconnects when the last lane has been
    /// delivered (or the engine shuts down / the request is cancelled
    /// before its lanes are claimed). A zero-count request disconnects
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the engine was built with a pending-request
    /// bound and that many requests are already waiting — the admission
    /// backpressure the serving layer maps to HTTP 429.
    pub(crate) fn submit(
        &self,
        job: RequestJob,
        priority: i32,
        cancel: Arc<AtomicBool>,
    ) -> Result<mpsc::Receiver<LaneMsg>, QueueFull> {
        let (tx, rx) = mpsc::channel();
        if job.count == 0 {
            return Ok(rx);
        }
        {
            let mut sched = self.lock_sched();
            // Cancelled entries do not count against the bound (they are
            // dead weight a claim pass will drop), expired ones neither —
            // sweep both before judging fullness.
            sched
                .queue
                .retain(|p| !p.req.cancel.load(Ordering::Relaxed));
            Self::expire_due(&mut sched);
            if self.max_queued != 0 && sched.queue.len() >= self.max_queued {
                return Err(QueueFull {
                    queued: sched.queue.len(),
                });
            }
            let seq = sched.next_seq;
            sched.next_seq += 1;
            let req = Arc::new(Request {
                job,
                priority,
                seq,
                cancel,
                tx,
            });
            // Keep the queue sorted: higher priority first, then admission
            // order. Scheduling order affects only latency — per-lane RNGs
            // make every outcome independent of it.
            use std::cmp::Reverse;
            let pos = sched
                .queue
                .iter()
                .position(|p| (Reverse(p.req.priority), p.req.seq) > (Reverse(priority), seq))
                .unwrap_or(sched.queue.len());
            sched
                .queue
                .insert(pos, PendingRequest { req, next_lane: 0 });
        }
        self.work.notify_all();
        Ok(rx)
    }

    /// Converts every queued request whose deadline has passed into
    /// shortfall: each unclaimed lane gets an `Ok(None)` message (counted
    /// by the receiver exactly like an exhausted attempt budget) and the
    /// entry leaves the queue. Returns the nearest *future* deadline among
    /// the survivors, so parked workers know how long they may sleep.
    fn expire_due(sched: &mut Sched) -> Option<Instant> {
        // dp-lint: allow(nondeterministic-time): deadline expiry is wall-clock by definition and never reaches pattern bytes
        let now = Instant::now();
        let mut nearest: Option<Instant> = None;
        sched.queue.retain_mut(|p| {
            let Some(deadline) = p.req.job.deadline else {
                return true;
            };
            if deadline > now {
                nearest = Some(nearest.map_or(deadline, |n| n.min(deadline)));
                return true;
            }
            for _ in p.next_lane..p.req.job.count {
                let _ = p.req.tx.send(LaneMsg {
                    delta: PipelineReport::default(),
                    payload: Ok(None),
                });
            }
            false
        });
        nearest
    }

    /// Wakes every parked worker without changing any state. Used after a
    /// request is cancelled so an otherwise-idle pool runs a claim pass,
    /// which prunes the cancelled entry (dropping its solver, donors and
    /// channel sender) instead of retaining it until the next submit.
    pub(crate) fn nudge(&self) {
        self.work.notify_all();
    }

    /// Wakes every worker and makes all future/parked [`Engine::claim`]
    /// calls return `None`. Queued-but-unclaimed lanes are dropped; their
    /// requests' channels disconnect.
    pub(crate) fn shutdown(&self) {
        let mut sched = self.lock_sched();
        sched.shutdown = true;
        sched.queue.clear();
        drop(sched);
        self.work.notify_all();
    }

    /// Claims the next micro-batch of lanes, drawing from as many pending
    /// requests as needed to fill it (the cross-request batching at the
    /// heart of the service). All claimed lanes share one [`LanePlan`]
    /// (stride, precision and conditioning); requests on a different plan
    /// wait for their own batch.
    ///
    /// Returns `None` when the engine is shut down, or — in one-shot mode
    /// — when no claimable work remains.
    fn claim(&self) -> Option<Vec<Lane>> {
        let mut sched = self.lock_sched();
        loop {
            if sched.shutdown {
                return None;
            }
            // Cancelled requests are pruned at claim time: their unclaimed
            // lanes simply never run (in-flight lanes drain in the worker
            // loop). Deadline-expired requests are converted to shortfall
            // in the same pass.
            sched
                .queue
                .retain(|p| !p.req.cancel.load(Ordering::Relaxed));
            let nearest_deadline = Self::expire_due(&mut sched);

            let mut lanes: Vec<Lane> = Vec::new();
            let mut plan = LanePlan {
                stride: 0,
                precision: Precision::Exact,
                cond_hash: 0,
            };
            let mut i = 0;
            while i < sched.queue.len() && lanes.len() < self.micro_batch {
                let pending = &mut sched.queue[i];
                if lanes.is_empty() {
                    plan = LanePlan::of(&pending.req.job);
                } else if LanePlan::of(&pending.req.job) != plan {
                    i += 1;
                    continue;
                }
                while pending.next_lane < pending.req.job.count && lanes.len() < self.micro_batch {
                    let index = pending.next_lane;
                    pending.next_lane += 1;
                    let seed = item_seed(pending.req.job.seed, pending.req.job.first_index + index);
                    lanes.push(Lane {
                        req: Arc::clone(&pending.req),
                        index,
                        seed,
                        rng: lane_rng(seed),
                        attempts: 0,
                        report: PipelineReport::default(),
                        outcome: None,
                        error: None,
                        active: true,
                    });
                }
                if pending.next_lane >= pending.req.job.count {
                    sched.queue.remove(i);
                } else {
                    i += 1;
                }
            }
            if !lanes.is_empty() {
                self.lanes_in_flight
                    .fetch_add(lanes.len(), Ordering::Relaxed);
                return Some(lanes);
            }
            if self.exit_when_idle {
                return None;
            }
            // Park until new work arrives — or, when some queued request
            // carries a deadline, at most until that deadline, so expiry
            // is observed by an otherwise idle pool.
            sched = match nearest_deadline {
                Some(deadline) => {
                    // dp-lint: allow(nondeterministic-time): bounding a park by a wall-clock deadline; never reaches pattern bytes
                    let wait = deadline.saturating_duration_since(Instant::now());
                    self.wait_work(sched, Some(wait))
                }
                None => self.wait_work(sched, None),
            };
        }
    }

    /// Runs a claimed chunk to completion: per round, all still-active
    /// lanes draw one topology together through the batched sampler (one
    /// U-Net evaluation per denoising step for the whole round); each lane
    /// then runs its request's bow-tie pre-filter and — when the sample
    /// survives — its finish stage (donor pick + solve for
    /// [`Mode::Generate`], a no-op for [`Mode::TopologyOnly`]) on its own
    /// RNG. Lanes leave the round set on success, error or a spent attempt
    /// budget, so a chunk's denoising batch only ever shrinks.
    ///
    /// A lane's RNG sees exactly the draw sequence a solo run would
    /// consume (sample bits, then donor/solver draws, then the next
    /// attempt), so outcomes are bit-identical for every batch
    /// composition — including the degenerate single-lane one.
    ///
    /// Cancellation is observed between rounds: in-flight lanes of a
    /// cancelled request stop sampling further attempts, and whatever they
    /// produced is discarded by the dead channel.
    fn process_chunk(&self, model: &TrainedModel, lanes: &mut [Lane], scratch: &mut BatchScratch) {
        let (channels, side) = (self.channels, self.side);
        // All lanes of a chunk share one plan (claim's invariant), so the
        // model variant is a per-chunk choice. The bf16 copy is built once
        // per engine, on first use, and shared by every worker.
        let model = match lanes.first().map(|l| l.req.job.precision) {
            Some(Precision::Bf16) => self
                .bf16_model
                .get_or_init(|| model.with_precision(Precision::Bf16)),
            _ => model,
        };
        loop {
            // dp-lint: allow(nondeterministic-time): deadline observation between rounds; never reaches pattern bytes
            let now = Instant::now();
            for lane in lanes.iter_mut().filter(|l| l.active) {
                // Cancellation and deadline expiry share an exit: the lane
                // stops sampling with `outcome = None`. A cancelled lane's
                // message lands in a dead channel; an expired one is
                // delivered and counted as shortfall by the receiver.
                if lane.req.cancel.load(Ordering::Relaxed)
                    || lane.req.job.deadline.is_some_and(|d| d <= now)
                {
                    lane.active = false;
                }
            }
            // All active lanes share one plan (claim's invariant), so the
            // first active lane's retained steps and conditioning describe
            // the whole round. `retained` is the full `1..=K` chain for
            // stride 1 and the respaced subset otherwise — the conditioned
            // batch core runs both bit-identically to the dedicated entry
            // points it replaced.
            let Some(plan) = lanes.iter().find(|l| l.active).map(|l| {
                (
                    Arc::clone(&l.req.job.retained),
                    Arc::clone(&l.req.job.conditioning),
                )
            }) else {
                return;
            };
            let (retained, conditioning) = plan;

            let mut rngs: Vec<&mut rand::rngs::StdRng> = lanes
                .iter_mut()
                .filter(|l| l.active)
                .map(|l| &mut l.rng)
                .collect();
            let tensors = self.sampler.sample_conditioned_batch_with(
                model,
                channels,
                side,
                &retained,
                &conditioning,
                &mut rngs,
                scratch,
            );
            drop(rngs);

            let mut tensors = tensors.into_iter();
            for lane in lanes.iter_mut().filter(|l| l.active) {
                // dp-lint: allow(panic-in-serving-tier): the sampler returns exactly one tensor per lane RNG by construction
                let tensor = tensors.next().expect("one sample per active lane");
                lane.attempts += 1;
                lane.report.topologies_sampled += 1;
                let mut grid = tensor.unfold();
                let filtered = if bowtie::is_bowtie_free(&grid) {
                    Some((grid, false))
                } else if lane.req.job.repair_bowties {
                    // Bow-tie repair edits cells without regard for the
                    // request's frozen region; a repair that clobbers a
                    // frozen bit is rejected like any other bad sample
                    // (the inpainting contract outranks repair).
                    bowtie::repair_bowties(&mut grid);
                    if frozen_preserved(&lane.req.job.conditioning, &grid, channels) {
                        lane.report.prefilter_repaired += 1;
                        Some((grid, true))
                    } else {
                        lane.report.prefilter_rejected += 1;
                        None
                    }
                } else {
                    lane.report.prefilter_rejected += 1;
                    None
                };
                if let Some((grid, repaired)) = filtered {
                    match finish_lane(lane, grid, repaired) {
                        Ok(Some(payload)) => {
                            lane.outcome = Some(payload);
                            lane.active = false;
                            continue;
                        }
                        Ok(None) => {}
                        Err(e) => {
                            lane.error = Some(e);
                            lane.active = false;
                            continue;
                        }
                    }
                }
                if lane.attempts >= lane.req.job.max_attempts {
                    lane.active = false;
                }
            }
        }
    }
}

/// Whether `grid` still carries every frozen bit of the request's
/// conditioning — checked after bow-tie repair, the one stage that may
/// edit cells after the sampler's exact clamp. Unconditioned requests
/// (and unfrozen ones) pass trivially without folding.
fn frozen_preserved(conditioning: &Conditioning, grid: &BitGrid, channels: usize) -> bool {
    let Some(region) = conditioning.frozen() else {
        return true;
    };
    let Ok(tensor) = DeepSquishTensor::fold(grid, channels) else {
        return false;
    };
    region
        .mask()
        .iter()
        .zip(region.bits().iter().zip(tensor.bits()))
        .all(|(&frozen, (&want, &got))| !frozen || want == got)
}

/// The per-lane finish stage after a sample survived the pre-filter.
fn finish_lane(
    lane: &mut Lane,
    grid: BitGrid,
    repaired: bool,
) -> Result<Option<Payload>, GenerateError> {
    match lane.req.job.mode {
        Mode::TopologyOnly => Ok(Some(Payload::Topology(lane.index, grid))),
        Mode::Generate => {
            let job = &lane.req.job;
            let init_donor = (!job.donors.is_empty())
                .then(|| &job.donors[lane.rng.gen_range(0..job.donors.len())]);
            let solve = match init_donor {
                Some(donor) => {
                    job.solver
                        .solve(&grid, Init::Existing(donor.dx(), donor.dy()), &mut lane.rng)
                }
                None => job.solver.solve(&grid, Init::Random, &mut lane.rng),
            };
            match solve {
                Ok(solution) => {
                    let stats = solution.stats;
                    let pattern = SquishPattern::new(grid, solution.dx, solution.dy)
                        .map_err(GenerateError::Assembly)?;
                    lane.report.legal_patterns += 1;
                    Ok(Some(Payload::Pattern(Generated {
                        pattern,
                        provenance: Provenance {
                            index: lane.index,
                            seed: lane.seed,
                            attempts: lane.attempts,
                            repaired,
                            solve: stats,
                        },
                    })))
                }
                Err(_) => {
                    lane.report.solver_failures += 1;
                    Ok(None)
                }
            }
        }
    }
}

/// The worker loop both engines run: claim a cross-request micro-batch,
/// drive it to completion with one reused [`BatchScratch`], deliver each
/// lane's message to its own request, repeat until the engine says stop.
///
/// Messages are sent in lane order, so a single worker serving a single
/// request streams items in index order — the `GenerationSession`
/// contract PR 2 documented.
pub(crate) fn run_worker(model: &TrainedModel, engine: &Engine) {
    run_worker_observed(model, engine, || true);
}

/// [`run_worker`] with a hook invoked after each chunk's messages are
/// delivered; returning `false` stops the loop (the session's inline
/// single-worker path uses it to drain the request channel between
/// chunks — keeping `generate_streaming` incremental and the channel
/// short — and to fail fast on the first structural error).
///
/// If the loop unwinds (a panic anywhere in sampling or solving), the
/// engine is shut down on the way out: queued requests' senders drop, so
/// outstanding `RequestHandle`s disconnect instead of blocking forever
/// on a pool that lost its worker. The panic still propagates.
pub(crate) fn run_worker_observed(
    model: &TrainedModel,
    engine: &Engine,
    mut after_chunk: impl FnMut() -> bool,
) {
    struct PanicGuard<'e> {
        engine: &'e Engine,
        finished: bool,
    }
    impl Drop for PanicGuard<'_> {
        fn drop(&mut self) {
            if !self.finished {
                self.engine.shutdown();
            }
        }
    }
    let mut guard = PanicGuard {
        engine,
        finished: false,
    };

    let mut scratch = BatchScratch::new();
    while let Some(mut lanes) = engine.claim() {
        engine.process_chunk(model, &mut lanes, &mut scratch);
        for lane in lanes {
            let payload = match lane.error {
                Some(e) => Err(e),
                None => Ok(lane.outcome),
            };
            // A dead receiver (dropped handle) just discards the message;
            // the lane's work is already done and nobody is owed it.
            let _ = lane.req.tx.send(LaneMsg {
                delta: lane.report,
                payload,
            });
            engine.lanes_in_flight.fetch_sub(1, Ordering::Relaxed);
        }
        if !after_chunk() {
            break;
        }
    }
    guard.finished = true;
}

/// Shared request-parameter validation: both `SessionBuilder::build` and
/// `PatternService::submit` gate on it, so a spec rejected by one path
/// can never slip through the other.
pub(crate) fn validate_request(
    stride: usize,
    max_attempts: usize,
    matrix_side: usize,
    solver: &dp_legalize::SolverConfig,
) -> Result<(), crate::ConfigError> {
    if stride == 0 {
        return Err(crate::ConfigError::ZeroStride);
    }
    if max_attempts == 0 {
        return Err(crate::ConfigError::ZeroAttempts);
    }
    if (matrix_side as i64) > solver.target_width || (matrix_side as i64) > solver.target_height {
        return Err(crate::ConfigError::WindowTooSmall {
            matrix_side,
            target_width: solver.target_width,
            target_height: solver.target_height,
        });
    }
    Ok(())
}

/// Resolves a `threads` knob: 0 means the machine's available
/// parallelism (shared by the session and service builders).
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Legalizes one topology into up to `variants` distinct patterns with
/// full failure accounting — shared by
/// `GenerationSession::legalize_variants` and `DiffusionVariantsSource`.
pub(crate) fn legalize_variants_with(
    solver: &Solver,
    topology: &BitGrid,
    variants: usize,
    rng: &mut impl Rng,
) -> Result<(Vec<SquishPattern>, PipelineReport), GenerateError> {
    let solve = solver.solve_many_report(topology, variants, rng);
    let mut report = PipelineReport {
        solver_failures: solve.failures,
        ..PipelineReport::default()
    };
    let mut patterns = Vec::with_capacity(solve.solutions.len());
    for s in solve.solutions {
        let pattern =
            SquishPattern::new(topology.clone(), s.dx, s.dy).map_err(GenerateError::Assembly)?;
        report.legal_patterns += 1;
        patterns.push(pattern);
    }
    Ok((patterns, report))
}

/// Derives the per-item RNG seed from the request seed and item index
/// (splitmix64 finaliser): items are independent of each other and of the
/// worker/batch that happens to run them.
pub(crate) fn item_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The one sanctioned lane-RNG construction site: a lane's generator is
/// seeded with the [`item_seed`] splitmix64 derivation and nothing else,
/// so a lane's draw sequence depends only on (request seed, item index)
/// — never on scheduling, batching or worker identity.
pub(crate) fn lane_rng(lane_seed: u64) -> rand::rngs::StdRng {
    // dp-lint: allow(rng-discipline): this helper is the sanctioned splitmix64 lane-derivation site the rule points everyone at
    rand::rngs::StdRng::seed_from_u64(lane_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..1000).map(|i| item_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(item_seed(1, 0), item_seed(2, 0));
    }
}
