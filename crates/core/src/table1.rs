//! The Table I harness: diversity and legality of every method on a shared
//! dataset.
//!
//! The paper generates 100 000 topologies per method on GPU clusters; the
//! harness scales the counts by configuration (see `EXPERIMENTS.md` for
//! the sizes used in the recorded run) while keeping the comparison
//! structure identical:
//!
//! | Row | Generator | Delta assignment |
//! |---|---|---|
//! | Real Patterns | — (training tiles) | native |
//! | CAE | perturbed-latent decode + threshold | borrowed (implicit) |
//! | VCAE | prior-sample decode + threshold | borrowed (implicit) |
//! | CAE+LegalGAN | CAE + morphological legalizer | borrowed (implicit) |
//! | VCAE+LegalGAN | VCAE + morphological legalizer | borrowed (implicit) |
//! | LayouTransformer | polygon-sequence Markov model | native (physical) |
//! | DiffPattern-S | discrete diffusion | white-box solver, 1 per topology |
//! | DiffPattern-L | discrete diffusion | white-box solver, many per topology |

use crate::metrics::{evaluate_patterns, MethodRow};
use crate::{Pipeline, PipelineError};
use dp_baselines::{
    assign_borrowed_deltas, AeConfig, Cae, MorphLegalizer, SequenceModel, SequenceModelConfig, Vcae,
};
use dp_datagen::PatternLibrary;
use dp_geometry::BitGrid;
use dp_squish::SquishPattern;
use rand::Rng;

/// Scale knobs for the Table I run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Config {
    /// Patterns generated per method (paper: 100 000).
    pub generate: usize,
    /// Training iterations for the CAE/VCAE baselines.
    pub ae_iterations: usize,
    /// Latent/feature scale of the CAE/VCAE baselines.
    pub ae: AeConfig,
    /// Legal variants per topology for DiffPattern-L (paper: 100).
    pub variants_per_topology: usize,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            generate: 200,
            ae_iterations: 300,
            ae: AeConfig::default(),
            variants_per_topology: 10,
        }
    }
}

impl Table1Config {
    /// A very small configuration for tests.
    pub fn tiny() -> Self {
        Table1Config {
            generate: 8,
            ae_iterations: 30,
            ae: AeConfig {
                side: 32,
                features: 4,
                latent: 8,
            },
            variants_per_topology: 3,
        }
    }
}

/// Runs every row of Table I on the pipeline's dataset. The pipeline must
/// already be trained.
///
/// # Errors
///
/// Propagates [`PipelineError`] from the DiffPattern rows.
pub fn run(
    pipeline: &mut Pipeline,
    config: Table1Config,
    rng: &mut impl Rng,
) -> Result<Vec<MethodRow>, PipelineError> {
    let rules = pipeline.config().rules;
    let window = pipeline.config().tile;
    let matrix_side = pipeline.config().dataset.matrix_side;
    assert_eq!(
        config.ae.side, matrix_side,
        "AE baseline side must match the dataset matrix side"
    );
    let donors: Vec<SquishPattern> = pipeline.dataset().patterns.clone();
    // Training grids for the pixel baselines: the extended topology
    // matrices (unfold of the dataset tensors).
    let grids: Vec<BitGrid> = pipeline
        .dataset()
        .tensors
        .iter()
        .map(|t| t.unfold())
        .collect();

    let mut rows = Vec::new();

    // Real patterns row (legality is not applicable; the paper prints '-').
    let real_lib: PatternLibrary = {
        let mut lib = PatternLibrary::new();
        for p in &donors {
            lib.add_pattern(p);
        }
        lib
    };
    rows.push(MethodRow {
        name: "Real Patterns".into(),
        topologies: None,
        patterns: real_lib.len(),
        diversity: real_lib.diversity(),
        legal: real_lib.len(),
        diversity_legal: real_lib.diversity(),
    });

    // CAE and CAE+LegalGAN share one trained model.
    let mut cae = Cae::new(config.ae, rng);
    let _ = cae.train(&grids, config.ae_iterations, 8, rng);
    let cae_topos: Vec<BitGrid> = (0..config.generate)
        .map(|_| cae.generate(&grids, 0.5, rng))
        .collect();
    rows.push(pixel_row(
        "CAE [7]", &cae_topos, &donors, window, &rules, rng,
    ));
    let legalizer = MorphLegalizer::default();
    let cae_clean: Vec<BitGrid> = cae_topos.iter().map(|t| legalizer.legalize(t)).collect();
    rows.push(pixel_row(
        "CAE+LegalGAN [8]",
        &cae_clean,
        &donors,
        window,
        &rules,
        rng,
    ));

    // VCAE and VCAE+LegalGAN.
    let mut vcae = Vcae::new(config.ae, 0.05, rng);
    let _ = vcae.train(&grids, config.ae_iterations, 8, rng);
    let vcae_topos: Vec<BitGrid> = (0..config.generate).map(|_| vcae.generate(rng)).collect();
    rows.push(pixel_row(
        "VCAE [8]",
        &vcae_topos,
        &donors,
        window,
        &rules,
        rng,
    ));
    let vcae_clean: Vec<BitGrid> = vcae_topos.iter().map(|t| legalizer.legalize(t)).collect();
    rows.push(pixel_row(
        "VCAE+LegalGAN [8]",
        &vcae_clean,
        &donors,
        window,
        &rules,
        rng,
    ));

    // LayouTransformer: sequential generation in physical coordinates.
    let seq = SequenceModel::fit(
        &donors,
        SequenceModelConfig {
            window,
            ..SequenceModelConfig::default()
        },
    );
    let seq_patterns: Vec<SquishPattern> = (0..config.generate)
        .map(|_| SquishPattern::encode(&seq.generate(rng)))
        .collect();
    rows.push(evaluate_patterns(
        "LayouTransformer [9]",
        None,
        &seq_patterns,
        &rules,
    ));

    // DiffPattern-S.
    let topologies = pipeline.generate_topologies(config.generate, rng)?;
    let s_patterns = pipeline.legalize_topologies(&topologies, rng);
    rows.push(evaluate_patterns(
        "DiffPattern-S",
        Some(topologies.len()),
        &s_patterns,
        &rules,
    ));

    // DiffPattern-L: many legal variants per topology.
    let mut l_patterns = Vec::new();
    for topo in &topologies {
        l_patterns.extend(pipeline.legalize_variants(topo, config.variants_per_topology, rng));
    }
    rows.push(evaluate_patterns(
        "DiffPattern-L",
        Some(topologies.len()),
        &l_patterns,
        &rules,
    ));

    Ok(rows)
}

/// Evaluates a pixel-method row: topologies get borrowed deltas (the
/// implicit assignment) before DRC.
fn pixel_row(
    name: &str,
    topologies: &[BitGrid],
    donors: &[SquishPattern],
    window: i64,
    rules: &dp_drc::DesignRules,
    rng: &mut impl Rng,
) -> MethodRow {
    let patterns: Vec<SquishPattern> = topologies
        .iter()
        .map(|t| assign_borrowed_deltas(t, donors, window, rng))
        .collect();
    evaluate_patterns(name, Some(topologies.len()), &patterns, rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineConfig;
    use rand::SeedableRng;

    #[test]
    fn tiny_table_runs_all_rows() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
        let _ = pipeline.train(4, &mut rng).unwrap();
        let rows = run(&mut pipeline, Table1Config::tiny(), &mut rng).unwrap();
        assert_eq!(rows.len(), 8);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"Real Patterns"));
        assert!(names.contains(&"DiffPattern-S"));
        assert!(names.contains(&"DiffPattern-L"));

        // Structural claim of the paper: every DiffPattern output is legal.
        for row in rows.iter().filter(|r| r.name.starts_with("DiffPattern")) {
            assert_eq!(row.legal, row.patterns, "{row}");
        }
    }
}
