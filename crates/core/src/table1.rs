//! The Table I harness: diversity and legality of every method on a shared
//! dataset.
//!
//! The paper generates 100 000 topologies per method on GPU clusters; the
//! harness scales the counts by configuration (see `EXPERIMENTS.md` for
//! the sizes used in the recorded run) while keeping the comparison
//! structure identical. Every generation method — the four baselines and
//! both DiffPattern modes — runs through the same [`PatternSource`]
//! interface, so adding a method to the table means adding one source to
//! the list:
//!
//! | Row | Generator | Delta assignment |
//! |---|---|---|
//! | Real Patterns | — (training tiles) | native |
//! | CAE | perturbed-latent decode + threshold | borrowed (implicit) |
//! | VCAE | prior-sample decode + threshold | borrowed (implicit) |
//! | CAE+LegalGAN | CAE + morphological legalizer | borrowed (implicit) |
//! | VCAE+LegalGAN | VCAE + morphological legalizer | borrowed (implicit) |
//! | LayouTransformer | polygon-sequence Markov model | native (physical) |
//! | DiffPattern-S | discrete diffusion | white-box solver, 1 per topology |
//! | DiffPattern-L | discrete diffusion | white-box solver, many per topology |

use crate::metrics::{evaluate_patterns, MethodRow};
use crate::source::{
    DiffusionSource, DiffusionVariantsSource, PatternSource, PixelSource, SequenceSource,
};
use crate::{PatternService, PipelineError, RequestSpec};
use dp_baselines::{AeConfig, MorphLegalizer};
use dp_datagen::{Dataset, PatternLibrary};
use dp_geometry::BitGrid;
use dp_squish::SquishPattern;
use rand::{Rng, RngCore};
use std::rc::Rc;

/// Scale knobs for the Table I run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Config {
    /// Patterns generated per method (paper: 100 000).
    pub generate: usize,
    /// Training iterations for the CAE/VCAE baselines.
    pub ae_iterations: usize,
    /// Latent/feature scale of the CAE/VCAE baselines.
    pub ae: AeConfig,
    /// Legal variants per topology for DiffPattern-L (paper: 100).
    pub variants_per_topology: usize,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            generate: 200,
            ae_iterations: 300,
            ae: AeConfig::default(),
            variants_per_topology: 10,
        }
    }
}

impl Table1Config {
    /// A very small configuration for tests.
    pub fn tiny() -> Self {
        Table1Config {
            generate: 8,
            ae_iterations: 30,
            ae: AeConfig {
                side: 32,
                features: 4,
                latent: 8,
            },
            variants_per_topology: 3,
        }
    }
}

/// Runs every row of Table I: the service supplies the trained diffusion
/// model and its worker pool, `spec` the rules/seed/stride every
/// DiffPattern row uses, `dataset` the shared training data every
/// baseline fits on.
///
/// # Errors
///
/// Propagates [`PipelineError`] from the generation sources.
///
/// # Panics
///
/// Panics when `config.ae.side` does not match the dataset matrix side
/// (a harness misconfiguration, not a data error).
pub fn run(
    service: &PatternService,
    spec: &RequestSpec,
    dataset: &Dataset,
    config: Table1Config,
    rng: &mut impl Rng,
) -> Result<Vec<MethodRow>, PipelineError> {
    let rules = spec.rules;
    let window = spec.solver.target_width;
    let matrix_side = service.model().matrix_side();
    assert_eq!(
        config.ae.side, matrix_side,
        "AE baseline side must match the dataset matrix side"
    );
    let donors: Vec<SquishPattern> = dataset.patterns.clone();
    // Shared pools: every pixel source holds an Rc into the same
    // allocations. The grids are the extended topology matrices (unfold
    // of the dataset tensors).
    let grid_pool: Rc<[BitGrid]> = dataset.tensors.iter().map(|t| t.unfold()).collect();
    let donor_pool: Rc<[SquishPattern]> = donors.clone().into();

    let mut rows = Vec::new();

    // Real patterns row (legality is not applicable; the paper prints '-').
    let real_lib: PatternLibrary = {
        let mut lib = PatternLibrary::new();
        for p in &donors {
            lib.add_pattern(p);
        }
        lib
    };
    rows.push(MethodRow {
        name: "Real Patterns".into(),
        topologies: None,
        patterns: real_lib.len(),
        diversity: real_lib.diversity(),
        legal: real_lib.len(),
        diversity_legal: real_lib.diversity(),
    });

    // Every generation method behind the one PatternSource interface.
    let cae = PixelSource::fit_cae(
        "CAE [7]",
        config.ae,
        Rc::clone(&grid_pool),
        Rc::clone(&donor_pool),
        window,
        config.ae_iterations,
        rng,
    );
    let cae_legal = cae.with_legalizer("CAE+LegalGAN [8]", MorphLegalizer::default());
    let vcae = PixelSource::fit_vcae(
        "VCAE [8]",
        config.ae,
        &grid_pool,
        Rc::clone(&donor_pool),
        window,
        config.ae_iterations,
        rng,
    );
    let vcae_legal = vcae.with_legalizer("VCAE+LegalGAN [8]", MorphLegalizer::default());
    let seq = SequenceSource::fit("LayouTransformer [9]", &donors, window);

    let mut sources: Vec<(Box<dyn PatternSource + '_>, usize)> = vec![
        (Box::new(cae), config.generate),
        (Box::new(cae_legal), config.generate),
        (Box::new(vcae), config.generate),
        (Box::new(vcae_legal), config.generate),
        (Box::new(seq), config.generate),
        (
            Box::new(DiffusionSource::new(service, spec.clone(), "DiffPattern-S")),
            config.generate,
        ),
        (
            Box::new(DiffusionVariantsSource::new(
                service,
                spec.clone(),
                config.variants_per_topology,
                "DiffPattern-L",
            )),
            config.generate,
        ),
    ];

    for (source, count) in &mut sources {
        let batch = source.generate(*count, rng as &mut dyn RngCore)?;
        rows.push(evaluate_patterns(
            &source.name(),
            batch.topologies,
            &batch.patterns,
            &rules,
        ));
    }

    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};
    use rand::SeedableRng;

    #[test]
    fn tiny_table_runs_all_rows() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
        let _ = pipeline.train(4, &mut rng).unwrap();
        let model = std::sync::Arc::new(pipeline.trained_model().unwrap());
        let service = crate::PatternService::builder(model)
            .threads(1)
            .build()
            .unwrap();
        let spec = pipeline.request_spec(0).seed(1);
        let rows = run(
            &service,
            &spec,
            pipeline.dataset(),
            Table1Config::tiny(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(rows.len(), 8);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"Real Patterns"));
        assert!(names.contains(&"DiffPattern-S"));
        assert!(names.contains(&"DiffPattern-L"));

        // Structural claim of the paper: every DiffPattern output is legal.
        for row in rows.iter().filter(|r| r.name.starts_with("DiffPattern")) {
            assert_eq!(row.legal, row.patterns, "{row}");
        }
    }
}
