//! [`PatternService`]: a long-lived, multi-request generation engine with
//! **cross-request micro-batching**.
//!
//! Where a [`crate::GenerationSession`] borrows a model and spins up a
//! worker pool per `generate()` call, a service *owns* an
//! [`Arc<TrainedModel>`] and keeps a **persistent worker pool** that
//! multiplexes many concurrent requests: every denoising micro-batch is
//! filled with lanes drawn from as many pending requests as needed, so
//! eight concurrent `count = 2` requests sample at batch 8 instead of
//! eight times at batch 2. Handles are `'static` and `Send`, the service
//! itself is cheaply clonable (clones share the engine), and dropping a
//! [`RequestHandle`] cancels its remaining work.
//!
//! # Determinism under load
//!
//! A request's output is **bit-identical regardless of concurrent load,
//! worker count, or admission order** — the same invariant the session
//! pinned for intra-call batching, extended across requests. The argument
//! has three independent layers:
//!
//! 1. every lane (batch slot) derives its RNG from
//!    `splitmix64(request seed, item index)` — nothing it draws depends on
//!    scheduling;
//! 2. the stacked U-Net evaluation is bit-identical per item
//!    (`dp_nn` batch invariance), so a lane's samples do not depend on
//!    which other lanes share its micro-batch;
//! 3. solver and donor draws happen per lane on the lane's own RNG, in the
//!    same order the single-item path used.
//!
//! Scheduling — priorities, the worker count, who else is queued — decides
//! only *when* a lane runs, never *what* it produces.
//!
//! ```no_run
//! use diffpattern::{PatternService, Pipeline, PipelineConfig, RequestSpec};
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::default(), &mut rng)?;
//! pipeline.train(200, &mut rng)?;
//! let spec = pipeline.request_spec(16).seed(7);
//! let model = Arc::new(pipeline.into_trained_model()?);
//!
//! // One engine, shared by every request for the process lifetime.
//! let service = PatternService::builder(model).threads(4).build()?;
//!
//! // Submit many requests; they share the worker pool and fill each
//! // other's micro-batches. Each handle streams its own items.
//! let fast = service.submit(&RequestSpec { seed: 1, priority: 1, ..spec.clone() })?;
//! let slow = service.submit(&RequestSpec { seed: 2, ..spec.clone() })?;
//! for generated in fast {
//!     println!("pattern {} after {} attempts", generated.provenance.index,
//!              generated.provenance.attempts);
//! }
//! let batch = slow.wait()?;
//! println!("{} legal patterns, shortfall {}", batch.items.len(), batch.report.shortfall);
//! # Ok(())
//! # }
//! ```

use crate::engine::{self, Engine, LaneMsg, Mode, Payload, RequestJob};
use crate::{ConfigError, GenerateError, Generated, Generation, PipelineError, PipelineReport};
use dp_diffusion::{Conditioning, Precision, TrainedModel};
use dp_drc::DesignRules;
use dp_geometry::BitGrid;
use dp_legalize::{Solver, SolverConfig};
use dp_squish::SquishPattern;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything one generation request carries: what to generate, under
/// which rules, and how urgently. Plain data — build one with
/// [`RequestSpec::new`] (or [`crate::Pipeline::request_spec`]) and adjust
/// fields directly or by struct update:
///
/// ```
/// use diffpattern::RequestSpec;
/// let base = RequestSpec::new(8).seed(42);
/// let hurried = RequestSpec { priority: 10, ..base.clone() };
/// assert_eq!(hurried.count, 8);
/// ```
///
/// Validation happens at [`PatternService::submit`], which rejects a zero
/// stride or attempt budget and a solver window smaller than the model's
/// topology matrix.
#[derive(Debug, Clone)]
pub struct RequestSpec {
    /// How many legal patterns to generate.
    pub count: usize,
    /// The request seed: together with an item's index it fully determines
    /// that item, independent of everything else the service is doing.
    pub seed: u64,
    /// Offset into the request's item-index space: item `i` of this
    /// request is generated exactly as item `first_index + i` of an
    /// equivalent request with `first_index: 0` (same derived per-item
    /// seed, bit-identical content). This is what makes resumed library
    /// builds and seed-space shards exact sub-ranges of one logical
    /// stream rather than approximations of it. Streamed
    /// [`crate::Provenance::index`] values stay `0..count`-relative; add
    /// `first_index` to recover the absolute index.
    pub first_index: usize,
    /// Scheduling priority — higher runs earlier when the pool is
    /// contended. Affects latency only, never content.
    pub priority: i32,
    /// Design rules for legalization.
    pub rules: DesignRules,
    /// Legalization solver settings.
    pub solver: SolverConfig,
    /// Reverse-sampling stride: 1 runs the full ancestral chain, larger
    /// values use the respaced sampler with `K / stride` denoiser calls.
    pub sample_stride: usize,
    /// Which prepacked model variant runs this request's U-Net calls.
    /// [`Precision::Exact`] (the default) keeps the service's bit-exact
    /// determinism contract. [`Precision::Bf16`] evaluates a
    /// bfloat16-weight copy of the model (built lazily, once per service)
    /// — still deterministic for a given `(seed, index)`, but its outputs
    /// differ from the exact path's. Lanes only share a micro-batch with
    /// lanes of the same precision.
    pub precision: Precision,
    /// Per-item sampling attempt budget before the slot is counted as
    /// shortfall.
    pub max_attempts: usize,
    /// Repair bow-ties instead of rejecting the sample.
    pub repair_bowties: bool,
    /// Donor patterns for Solving-E initialisation; empty falls back to
    /// Solving-R. Shared (`Arc`) so specs clone cheaply.
    pub donors: Arc<[SquishPattern]>,
    /// Per-lane sampling constraints: a frozen region (inpainting — the
    /// masked entries of every sampled topology tensor are clamped to the
    /// given bits) and/or motif-avoidance guidance. The default
    /// [`Conditioning::none`] is the unconditioned path, bit-identical to
    /// pre-conditioning releases. Lanes only share a micro-batch with
    /// lanes under the same conditioning, and a frozen region's shape is
    /// validated against the model's tensor at submit
    /// ([`ConfigError::ConditioningShape`]). Shared (`Arc`) so specs
    /// clone cheaply.
    pub conditioning: Arc<Conditioning>,
    /// Wall-clock budget measured from [`PatternService::submit`]. Lanes
    /// not delivered in time are converted to shortfall — unclaimed lanes
    /// at the next scheduling pass, in-flight lanes between denoising
    /// rounds — so the request still terminates with a complete, partial
    /// report (`items delivered + shortfall == count`). Items that *do*
    /// complete in time keep the bit-exact determinism contract; the
    /// deadline only decides how many of them there are. `None` (the
    /// default) never expires; [`ServiceBuilder::default_deadline`] fills
    /// it service-wide.
    pub deadline: Option<Duration>,
}

impl RequestSpec {
    /// A spec for `count` patterns with the same defaults as
    /// [`crate::SessionBuilder`]: standard rules, the paper's 2048 nm
    /// window, full-chain sampling, 4 attempts, repair on, priority 0,
    /// seed 0, no donors.
    pub fn new(count: usize) -> Self {
        RequestSpec {
            count,
            seed: 0,
            first_index: 0,
            priority: 0,
            rules: DesignRules::standard(),
            solver: SolverConfig::for_window(2048, 2048),
            sample_stride: 1,
            precision: Precision::Exact,
            max_attempts: 4,
            repair_bowties: true,
            donors: Arc::from([]),
            conditioning: Arc::new(Conditioning::none()),
            deadline: None,
        }
    }

    /// Returns the spec with the given seed (chainable convenience for the
    /// most commonly varied field).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the spec with the given wall-clock deadline (see the
    /// [`RequestSpec::deadline`] field for the expiry semantics).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the spec with the given model precision (see the
    /// [`RequestSpec::precision`] field for the accuracy trade-off).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Returns the spec offset to start at absolute item index
    /// `first_index` (see the [`RequestSpec::first_index`] field for the
    /// sub-range determinism contract).
    pub fn first_index(mut self, first_index: usize) -> Self {
        self.first_index = first_index;
        self
    }

    /// Returns the spec sampling under the given conditioning (see the
    /// [`RequestSpec::conditioning`] field for the constraint semantics).
    pub fn conditioning(mut self, conditioning: Conditioning) -> Self {
        self.conditioning = Arc::new(conditioning);
        self
    }
}

impl Default for RequestSpec {
    fn default() -> Self {
        RequestSpec::new(0)
    }
}

/// Builder for [`PatternService`].
#[derive(Debug)]
pub struct ServiceBuilder {
    model: Arc<TrainedModel>,
    threads: usize,
    micro_batch: usize,
    max_queued: usize,
    default_deadline: Option<Duration>,
}

impl ServiceBuilder {
    /// Persistent worker thread count; 0 (the default) uses the machine's
    /// available parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sampling micro-batch: how many denoising lanes each worker advances
    /// in lock-step per U-Net call (default 8). The scheduler fills each
    /// micro-batch across requests, so this is the cross-request batching
    /// knob. Output is bit-identical at every setting.
    pub fn micro_batch(mut self, micro_batch: usize) -> Self {
        self.micro_batch = micro_batch;
        self
    }

    /// Bounds the admission queue: at most this many requests may be
    /// pending (admitted but not yet fully claimed by workers) at once;
    /// further [`PatternService::submit`] calls are rejected with
    /// [`ConfigError::QueueFull`] instead of queueing unboundedly — the
    /// backpressure signal a serving front-end maps to HTTP 429. The
    /// default 0 means unbounded, the pre-0.4 behaviour.
    pub fn max_queued_requests(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }

    /// Wall-clock deadline applied to every submitted spec whose
    /// [`RequestSpec::deadline`] is `None` (a per-request deadline always
    /// wins). Default: no deadline.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Validates the configuration, builds the engine and spawns the
    /// worker pool.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroMicroBatch`] when `micro_batch` is 0.
    pub fn build(self) -> Result<PatternService, ConfigError> {
        if self.micro_batch == 0 {
            return Err(ConfigError::ZeroMicroBatch);
        }
        let threads = engine::resolve_threads(self.threads);
        let engine = Arc::new(Engine::new(
            self.model.sampler(),
            self.model.channels(),
            self.model.side(),
            self.micro_batch,
            false,
            self.max_queued,
        ));
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let model = Arc::clone(&self.model);
            let engine = Arc::clone(&engine);
            let multi = threads > 1;
            workers.push(std::thread::spawn(move || {
                if multi {
                    // The pool is already data-parallel; nesting GEMM
                    // threads inside the workers would oversubscribe.
                    dp_nn::with_inner_gemm_parallelism(false, || {
                        engine::run_worker(&model, &engine)
                    })
                } else {
                    engine::run_worker(&model, &engine)
                }
            }));
        }
        Ok(PatternService {
            core: Arc::new(ServiceCore {
                model: self.model,
                engine,
                threads,
                micro_batch: self.micro_batch,
                max_queued: self.max_queued,
                default_deadline: self.default_deadline,
                workers: Mutex::new(workers),
            }),
        })
    }
}

struct ServiceCore {
    model: Arc<TrainedModel>,
    engine: Arc<Engine>,
    threads: usize,
    micro_batch: usize,
    max_queued: usize,
    default_deadline: Option<Duration>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for ServiceCore {
    fn drop(&mut self) {
        // Last service handle gone: stop the pool and join every worker,
        // so dropping a service never leaks threads. Outstanding request
        // handles see their channels disconnect and terminate early.
        self.engine.shutdown();
        // The registry is only written at construction and here; a
        // poisoned lock means a thread panicked holding it, and tearing
        // down is exactly what Drop is already doing.
        // dp-lint: allow(panic-in-serving-tier): Drop-path join; a poisoned registry propagates the original worker panic
        let mut workers = self.workers.lock().expect("worker registry poisoned");
        for worker in workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// A long-lived, multi-request generation engine over an owned
/// [`Arc<TrainedModel>`]: submit [`RequestSpec`]s from any thread, stream
/// results through [`RequestHandle`]s, share the persistent worker pool's
/// cross-request micro-batches. A request's output is bit-identical
/// regardless of concurrent load, worker count, or admission order (the
/// determinism contract laid out at the top of this module's
/// documentation).
///
/// Cloning is cheap and shares the engine; the pool shuts down (and every
/// worker is joined) when the last clone is dropped.
#[derive(Clone)]
pub struct PatternService {
    core: Arc<ServiceCore>,
}

impl std::fmt::Debug for PatternService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatternService")
            .field("threads", &self.core.threads)
            .field("micro_batch", &self.core.micro_batch)
            .finish_non_exhaustive()
    }
}

impl PatternService {
    /// Starts a builder over `model` with default settings.
    pub fn builder(model: Arc<TrainedModel>) -> ServiceBuilder {
        ServiceBuilder {
            model,
            threads: 0,
            micro_batch: 8,
            max_queued: 0,
            default_deadline: None,
        }
    }

    /// The shared model.
    pub fn model(&self) -> &Arc<TrainedModel> {
        &self.core.model
    }

    /// Persistent worker thread count.
    pub fn threads(&self) -> usize {
        self.core.threads
    }

    /// Lock-step denoising lanes per U-Net call (filled across requests).
    pub fn micro_batch(&self) -> usize {
        self.core.micro_batch
    }

    /// Admission bound on pending requests (0 = unbounded).
    pub fn max_queued_requests(&self) -> usize {
        self.core.max_queued
    }

    /// A point-in-time load snapshot of the shared scheduler — the
    /// figures a `/metrics` endpoint exposes.
    pub fn stats(&self) -> ServiceStats {
        let stats = self.core.engine.stats();
        ServiceStats {
            queued_requests: stats.queued_requests,
            queued_lanes: stats.queued_lanes,
            lanes_in_flight: stats.lanes_in_flight,
        }
    }

    /// Admits a generation request. Returns immediately; the request's
    /// lanes are interleaved into the pool's micro-batches alongside every
    /// other pending request's.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroStride`], [`ConfigError::ZeroAttempts`],
    /// [`ConfigError::WindowTooSmall`] when the spec's solver window
    /// cannot hold the model's topology matrix, or
    /// [`ConfigError::ConditioningShape`] when the spec's frozen region
    /// does not span the model's topology tensor.
    pub fn submit(&self, spec: &RequestSpec) -> Result<RequestHandle, ConfigError> {
        self.submit_mode(spec, Mode::Generate)
    }

    /// Blocking convenience: [`PatternService::submit`] plus
    /// [`RequestHandle::wait`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::Config`] for a rejected spec,
    /// [`PipelineError::Generate`] for structural generation failures.
    pub fn generate(&self, spec: &RequestSpec) -> Result<Generation, PipelineError> {
        Ok(self.submit(spec)?.wait()?)
    }

    /// Samples `spec.count` topology matrices (pre-filtered, no
    /// legalization) through the shared pool, blocking until done.
    /// Topologies come back in index order with the aggregated report;
    /// determinism matches [`PatternService::submit`].
    ///
    /// # Errors
    ///
    /// As [`PatternService::submit`].
    pub fn sample_topologies(
        &self,
        spec: &RequestSpec,
    ) -> Result<(Vec<BitGrid>, PipelineReport), ConfigError> {
        let mut handle = self.submit_mode(spec, Mode::TopologyOnly)?;
        let mut out: Vec<(usize, BitGrid)> = Vec::with_capacity(spec.count);
        while let Some(payload) = handle.recv_payload() {
            if let Payload::Topology(index, grid) = payload {
                out.push((index, grid));
            }
        }
        out.sort_by_key(|(index, _)| *index);
        Ok((
            out.into_iter().map(|(_, grid)| grid).collect(),
            handle.report,
        ))
    }

    fn submit_mode(&self, spec: &RequestSpec, mode: Mode) -> Result<RequestHandle, ConfigError> {
        engine::validate_request(
            spec.sample_stride,
            spec.max_attempts,
            self.core.model.matrix_side(),
            &spec.solver,
        )?;
        if spec.first_index.checked_add(spec.count).is_none() {
            return Err(ConfigError::IndexOverflow {
                first_index: spec.first_index,
                count: spec.count,
            });
        }
        let model = &self.core.model;
        let entries = model.channels() * model.side() * model.side();
        if !spec.conditioning.matches_entries(entries) {
            return Err(ConfigError::ConditioningShape {
                expected: entries,
                mask: spec.conditioning.frozen().map_or(0, |f| f.len()),
            });
        }
        let deadline = spec
            .deadline
            .or(self.core.default_deadline)
            .map(|d| Instant::now() + d); // dp-lint: allow(nondeterministic-time): anchoring a relative deadline; never reaches pattern bytes
        let job = RequestJob {
            mode,
            seed: spec.seed,
            count: spec.count,
            first_index: spec.first_index,
            stride: spec.sample_stride,
            precision: spec.precision,
            retained: self.core.engine.strided_steps(spec.sample_stride).into(),
            max_attempts: spec.max_attempts,
            repair_bowties: spec.repair_bowties,
            solver: Solver::new(spec.rules, spec.solver),
            donors: Arc::clone(&spec.donors),
            conditioning: Arc::clone(&spec.conditioning),
            cond_hash: spec.conditioning.plan_hash(),
            deadline,
        };
        let cancel = Arc::new(AtomicBool::new(false));
        let rx = self
            .core
            .engine
            .submit(job, spec.priority, Arc::clone(&cancel))
            .map_err(|full| ConfigError::QueueFull {
                queued: full.queued,
                max_queued: self.core.max_queued,
            })?;
        Ok(RequestHandle {
            rx,
            cancel_flag: cancel,
            engine: Arc::downgrade(&self.core.engine),
            count: spec.count,
            first_index: spec.first_index,
            lanes_done: 0,
            report: PipelineReport::default(),
            error: None,
            finished: false,
        })
    }
}

/// A point-in-time load snapshot of a [`PatternService`] scheduler,
/// from [`PatternService::stats`] — the queue-depth and in-flight
/// figures a `/metrics` endpoint exposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceStats {
    /// Requests admitted but not yet fully claimed by workers.
    pub queued_requests: usize,
    /// Lanes (requested items) waiting to be claimed.
    pub queued_lanes: usize,
    /// Lanes claimed by workers whose result has not been delivered yet.
    pub lanes_in_flight: usize,
}

/// Outcome of one [`RequestHandle::recv_timeout`] poll.
#[derive(Debug)]
pub enum RecvPoll {
    /// The next generated item.
    Item(Generated),
    /// The stream has ended: every lane accounted, cancelled, or the
    /// service was dropped. Subsequent polls return this immediately.
    Finished,
    /// Nothing arrived within the timeout; the request is still running.
    TimedOut,
}

/// The receiving end of one submitted request: stream items with
/// [`RequestHandle::recv`] or the [`Iterator`] impl, or collect everything
/// with [`RequestHandle::wait`]. `'static` and `Send`, so it can be moved
/// to whatever thread consumes the results.
///
/// **Dropping the handle cancels the request**: lanes not yet started
/// never run, in-flight lanes drain (their results are discarded), and
/// every other request is untouched — by the determinism contract their
/// outputs do not change by a single bit.
#[derive(Debug)]
pub struct RequestHandle {
    rx: mpsc::Receiver<LaneMsg>,
    cancel_flag: Arc<AtomicBool>,
    /// Weak so an outstanding handle never keeps a dropped service's
    /// engine alive; used to wake parked workers on cancellation so they
    /// prune the cancelled request instead of retaining it until the next
    /// submit.
    engine: std::sync::Weak<Engine>,
    count: usize,
    first_index: usize,
    lanes_done: usize,
    report: PipelineReport,
    error: Option<GenerateError>,
    finished: bool,
}

impl RequestHandle {
    /// Receives the next generated pattern, blocking until one is ready.
    /// Returns `None` when the request is complete (every lane delivered
    /// or counted as shortfall), cancelled, or the service was dropped.
    /// Items arrive in completion order; [`crate::Provenance::index`]
    /// gives each item's position in the request.
    pub fn recv(&mut self) -> Option<Generated> {
        loop {
            match self.recv_payload()? {
                Payload::Pattern(generated) => return Some(generated),
                // Topology payloads belong to the internal sampling mode
                // and are consumed by `sample_topologies`.
                Payload::Topology(..) => continue,
            }
        }
    }

    /// Like [`RequestHandle::recv`], but gives up after `timeout` instead
    /// of blocking indefinitely — the polling primitive a network server
    /// needs to interleave item delivery with client-liveness checks.
    pub fn recv_timeout(&mut self, timeout: Duration) -> RecvPoll {
        // dp-lint: allow(nondeterministic-time): polling timeout anchor; never reaches pattern bytes
        let deadline = Instant::now() + timeout;
        loop {
            if self.finished {
                return RecvPoll::Finished;
            }
            // dp-lint: allow(nondeterministic-time): polling timeout remainder; never reaches pattern bytes
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(msg) => match self.absorb(msg) {
                    Some(Payload::Pattern(generated)) => return RecvPoll::Item(generated),
                    // Topology payloads belong to the internal sampling
                    // mode (`sample_topologies` drains them itself).
                    Some(Payload::Topology(..)) | None => continue,
                },
                Err(mpsc::RecvTimeoutError::Timeout) => return RecvPoll::TimedOut,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    self.finished = true;
                    return RecvPoll::Finished;
                }
            }
        }
    }

    /// The lane-level receive shared by patterns and topologies.
    fn recv_payload(&mut self) -> Option<Payload> {
        loop {
            if self.finished {
                return None;
            }
            match self.rx.recv() {
                Ok(msg) => {
                    if let Some(payload) = self.absorb(msg) {
                        return Some(payload);
                    }
                }
                Err(mpsc::RecvError) => {
                    self.finished = true;
                    return None;
                }
            }
        }
    }

    /// Folds one lane message into the running report; returns its
    /// payload when it carried one.
    fn absorb(&mut self, msg: LaneMsg) -> Option<Payload> {
        self.report.merge(&msg.delta);
        self.lanes_done += 1;
        if self.lanes_done >= self.count {
            self.finished = true;
        }
        match msg.payload {
            Ok(Some(payload)) => Some(payload),
            Ok(None) => {
                self.report.shortfall += 1;
                None
            }
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                None
            }
        }
    }

    /// Drains the request to completion and returns the items in index
    /// order with the aggregated report — the same shape
    /// [`crate::GenerationSession::generate`] produces.
    ///
    /// # Errors
    ///
    /// The first structural [`GenerateError`] any lane hit.
    pub fn wait(mut self) -> Result<Generation, GenerateError> {
        let mut items = Vec::new();
        while let Some(generated) = self.recv() {
            items.push(generated);
        }
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        items.sort_by_key(|g| g.provenance.index);
        Ok(Generation {
            items,
            report: self.report,
        })
    }

    /// Cancels the request now (the destructor does the same): remaining
    /// lanes stop, already-received items stay valid, subsequent
    /// [`RequestHandle::recv`] calls return `None`.
    pub fn cancel(&mut self) {
        self.cancel_flag.store(true, Ordering::Relaxed);
        self.finished = true;
        // Wake parked workers so an idle pool prunes the cancelled
        // request's queue entry now rather than at the next submit.
        if let Some(engine) = self.engine.upgrade() {
            engine.nudge();
        }
    }

    /// Statistics accumulated so far (complete once the stream has ended).
    /// Shortfall counts lanes that exhausted their attempt budget.
    pub fn report(&self) -> PipelineReport {
        self.report
    }

    /// Whether the stream has ended (all lanes accounted, cancelled, or
    /// disconnected).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The spec's [`RequestSpec::first_index`]: streamed
    /// [`crate::Provenance::index`] values are `0..count`-relative;
    /// `first_index + index` is the absolute item index.
    pub fn first_index(&self) -> usize {
        self.first_index
    }

    /// The first structural error a lane reported, if any (also surfaced
    /// by [`RequestHandle::wait`]).
    pub fn error(&self) -> Option<&GenerateError> {
        self.error.as_ref()
    }
}

impl Iterator for RequestHandle {
    type Item = Generated;

    fn next(&mut self) -> Option<Generated> {
        self.recv()
    }
}

impl Drop for RequestHandle {
    fn drop(&mut self) {
        self.cancel_flag.store(true, Ordering::Relaxed);
        if let Some(engine) = self.engine.upgrade() {
            engine.nudge();
        }
    }
}
