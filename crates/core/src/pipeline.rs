use crate::{ConfigError, GenerationSession, PipelineError, RequestSpec, SessionBuilder};
use dp_datagen::{
    build_dataset, split_into_tiles, Dataset, DatasetConfig, GeneratorConfig, LayoutMapGenerator,
};
use dp_diffusion::{TrainConfig, TrainReport, TrainedModel, Trainer};
use dp_drc::DesignRules;
use dp_geometry::{Coord, Layout};
use dp_legalize::SolverConfig;
use dp_nn::UNetConfig;
use rand::Rng;

/// U-Net backbone hyper-parameters.
///
/// Deliberately *without* channel counts: the network's input width is
/// derived from [`DatasetConfig::channels`] (`in = C`, `out = 2C`, the
/// denoiser head contract), so the fold/width mismatch that the old
/// `validated()` assertion guarded against can no longer be constructed.
#[derive(Debug, Clone, PartialEq)]
pub struct BackboneConfig {
    /// Base feature width.
    pub base_channels: usize,
    /// Per-level channel multipliers; the number of levels is the length.
    pub channel_mults: Vec<usize>,
    /// Residual blocks per level.
    pub num_res_blocks: usize,
    /// Levels (0 = full resolution) that get self-attention blocks.
    pub attn_resolutions: Vec<usize>,
    /// Sinusoidal time-embedding dimensionality (must be even).
    pub time_dim: usize,
    /// GroupNorm group count.
    pub groups: usize,
    /// Dropout rate inside each residual block.
    pub dropout: f32,
}

/// End-to-end configuration of the DiffPattern pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Synthetic-map generator settings (the dataset substitute).
    pub generator: GeneratorConfig,
    /// Tile side in nm (paper: 2048).
    pub tile: Coord,
    /// Dataset extension/folding settings.
    pub dataset: DatasetConfig,
    /// U-Net backbone shape; channel counts are derived from `dataset`.
    pub unet: BackboneConfig,
    /// Diffusion training settings.
    pub train: TrainConfig,
    /// Design rules for legalization and DRC.
    pub rules: DesignRules,
    /// Legalization solver settings.
    pub solver: SolverConfig,
    /// Reverse-sampling stride. 1 runs the full ancestral chain (paper
    /// Eq. 13); larger values use the respaced DDIM-style sampler with
    /// `K / stride` denoiser calls per topology (see
    /// [`dp_diffusion::Sampler::sample_respaced`]).
    pub sample_stride: usize,
    /// Pre-filter policy. `false` is the paper's behaviour: topologies with
    /// bow-ties are rejected outright (the paper reports < 0.1 % rejection
    /// at its 0.5 M-iteration GPU training scale). `true` repairs bow-ties
    /// instead of rejecting, which keeps CPU-scale models (thousands of
    /// iterations) productive; repaired counts are reported separately so
    /// runs stay honest about model quality.
    pub repair_bowties: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            generator: GeneratorConfig::small(),
            tile: 2048,
            dataset: DatasetConfig {
                matrix_side: 32,
                channels: 4,
            },
            unet: BackboneConfig {
                base_channels: 32,
                channel_mults: vec![1, 2],
                num_res_blocks: 2,
                attn_resolutions: vec![1],
                time_dim: 64,
                groups: 8,
                dropout: 0.0,
            },
            train: TrainConfig {
                batch_size: 8,
                diffusion_steps: 100,
                ..TrainConfig::default()
            },
            rules: DesignRules::standard(),
            solver: SolverConfig::for_window(2048, 2048),
            sample_stride: 1,
            repair_bowties: true,
        }
    }
}

impl PipelineConfig {
    /// A deliberately tiny configuration for unit tests and doc examples:
    /// the same 32x32 topology matrices as the default, folded deeper
    /// (C = 16) so the U-Net works on 8x8 feature maps.
    pub fn tiny() -> Self {
        PipelineConfig {
            dataset: DatasetConfig {
                matrix_side: 32,
                channels: 16,
            },
            unet: BackboneConfig {
                base_channels: 8,
                channel_mults: vec![1, 2],
                num_res_blocks: 1,
                attn_resolutions: vec![1],
                time_dim: 16,
                groups: 4,
                dropout: 0.0,
            },
            train: TrainConfig {
                batch_size: 4,
                diffusion_steps: 30,
                ..TrainConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    /// The full U-Net configuration, with channel counts derived from the
    /// dataset fold (`in = C`, `out = 2C`).
    pub fn unet_config(&self) -> UNetConfig {
        UNetConfig {
            in_channels: self.dataset.channels,
            out_channels: 2 * self.dataset.channels,
            base_channels: self.unet.base_channels,
            channel_mults: self.unet.channel_mults.clone(),
            num_res_blocks: self.unet.num_res_blocks,
            attn_resolutions: self.unet.attn_resolutions.clone(),
            time_dim: self.unet.time_dim,
            groups: self.unet.groups,
            dropout: self.unet.dropout,
        }
    }

    /// Spatial side of the folded topology tensors (`matrix_side / √C`).
    pub fn fold_side(&self) -> usize {
        self.dataset.matrix_side / self.fold_patch()
    }

    fn fold_patch(&self) -> usize {
        (self.dataset.channels as f64).sqrt() as usize
    }

    /// Checks the configuration for inconsistencies the type system cannot
    /// rule out.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for a zero sampling stride, a non-square fold
    /// channel count, a matrix side the fold patch does not divide, or a
    /// solver window smaller than the topology matrix.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sample_stride == 0 {
            return Err(ConfigError::ZeroStride);
        }
        let patch = self.fold_patch();
        if patch * patch != self.dataset.channels {
            return Err(ConfigError::ChannelsNotSquare {
                channels: self.dataset.channels,
            });
        }
        if !self.dataset.matrix_side.is_multiple_of(patch) || self.dataset.matrix_side == 0 {
            return Err(ConfigError::SideNotDivisible {
                matrix_side: self.dataset.matrix_side,
                patch,
            });
        }
        if (self.dataset.matrix_side as i64) > self.solver.target_width
            || (self.dataset.matrix_side as i64) > self.solver.target_height
        {
            return Err(ConfigError::WindowTooSmall {
                matrix_side: self.dataset.matrix_side,
                target_width: self.solver.target_width,
                target_height: self.solver.target_height,
            });
        }
        Ok(())
    }
}

/// Cumulative pipeline statistics (the §IV-C claims: pre-filter rejection
/// below 0.1 %, zero unsolvable topologies in practice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Topology tensors drawn from the diffusion sampler.
    pub topologies_sampled: usize,
    /// Topologies rejected by the bow-tie pre-filter.
    pub prefilter_rejected: usize,
    /// Topologies whose bow-ties were repaired instead of rejected
    /// (only with [`PipelineConfig::repair_bowties`]).
    pub prefilter_repaired: usize,
    /// Topologies the solver could not legalize (including
    /// requested-but-unsolved DiffPattern-L variants).
    pub solver_failures: usize,
    /// Legal patterns produced.
    pub legal_patterns: usize,
    /// Requested batch slots that exhausted their attempt budget and
    /// produced nothing — the previously silent gap between what was
    /// asked for and what came back.
    pub shortfall: usize,
}

impl PipelineReport {
    /// Pre-filter rejection rate in `[0, 1]`.
    pub fn prefilter_rate(&self) -> f64 {
        if self.topologies_sampled == 0 {
            0.0
        } else {
            self.prefilter_rejected as f64 / self.topologies_sampled as f64
        }
    }

    /// Accumulates another report into this one (per-worker aggregation).
    pub fn merge(&mut self, other: &PipelineReport) {
        self.topologies_sampled += other.topologies_sampled;
        self.prefilter_rejected += other.prefilter_rejected;
        self.prefilter_repaired += other.prefilter_repaired;
        self.solver_failures += other.solver_failures;
        self.legal_patterns += other.legal_patterns;
        self.shortfall += other.shortfall;
    }
}

/// The DiffPattern pipeline (paper Fig. 4): dataset → discrete diffusion →
/// pre-filter → white-box legalization.
///
/// `Pipeline` is the *training* facade: it builds the dataset and drives
/// the trainer. For inference, freeze the trained state with
/// [`Pipeline::trained_model`] (or [`Pipeline::into_trained_model`]) and
/// generate through a [`GenerationSession`]
/// (see [`Pipeline::session_builder`]) or a long-lived
/// [`crate::PatternService`] (see [`Pipeline::request_spec`]). The
/// pre-0.2 generation shims were removed in 0.3 — the migration table
/// lives in the [crate docs](crate).
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    dataset: Dataset,
    trainer: Trainer,
    trained: bool,
}

impl Pipeline {
    /// Builds the pipeline on a freshly generated synthetic layout map.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Config`] for an invalid configuration,
    /// [`PipelineError::EmptyDataset`] when no tile survives extension;
    /// diffusion configuration errors are propagated.
    pub fn from_synthetic_map(
        config: PipelineConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, PipelineError> {
        let map = LayoutMapGenerator::new(config.generator).generate(rng);
        let tiles = split_into_tiles(&map, config.tile);
        Self::from_tiles(config, &tiles, rng)
    }

    /// Builds the pipeline on caller-provided layout tiles.
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::from_synthetic_map`].
    pub fn from_tiles(
        config: PipelineConfig,
        tiles: &[Layout],
        rng: &mut impl Rng,
    ) -> Result<Self, PipelineError> {
        config.validate()?;
        let dataset = build_dataset(tiles, config.dataset);
        if dataset.tensors.is_empty() {
            return Err(PipelineError::EmptyDataset);
        }
        let trainer = Trainer::new(&config.unet_config(), config.train.clone(), rng)?;
        Ok(Pipeline {
            config,
            dataset,
            trainer,
            trained: false,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The training dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The diffusion noise schedule in use.
    pub fn schedule(&self) -> &dp_diffusion::NoiseSchedule {
        self.trainer.schedule()
    }

    /// Trains the diffusion model for `iterations` steps.
    ///
    /// # Errors
    ///
    /// Propagates dataset/shape errors from the diffusion trainer.
    pub fn train(
        &mut self,
        iterations: usize,
        rng: &mut impl Rng,
    ) -> Result<TrainReport, PipelineError> {
        let report = self.trainer.train(&self.dataset.tensors, iterations, rng)?;
        self.trained = true;
        Ok(report)
    }

    /// Freezes the trained state into an immutable, shareable
    /// [`TrainedModel`] (the pipeline itself stays usable for further
    /// training).
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotTrained`] before [`Pipeline::train`].
    pub fn trained_model(&self) -> Result<TrainedModel, PipelineError> {
        if !self.trained {
            return Err(PipelineError::NotTrained);
        }
        Ok(TrainedModel::new(
            self.trainer.denoiser().clone(),
            self.trainer.schedule().clone(),
            self.config.fold_side(),
        )?)
    }

    /// Consumes the pipeline into a [`TrainedModel`], avoiding the weight
    /// clone of [`Pipeline::trained_model`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotTrained`] before [`Pipeline::train`].
    pub fn into_trained_model(self) -> Result<TrainedModel, PipelineError> {
        if !self.trained {
            return Err(PipelineError::NotTrained);
        }
        Ok(self.trainer.finish()?)
    }

    /// Starts a [`GenerationSession`] builder over `model`, pre-populated
    /// with this pipeline's rules, solver window, sampling stride,
    /// pre-filter policy and Solving-E donors (the extended dataset
    /// patterns, as the paper prescribes).
    pub fn session_builder<'m>(&self, model: &'m TrainedModel) -> SessionBuilder<'m> {
        GenerationSession::builder(model)
            .rules(self.config.rules)
            .solver_config(self.config.solver)
            .sample_stride(self.config.sample_stride)
            .repair_bowties(self.config.repair_bowties)
            .donors(self.dataset.extended.clone())
    }

    /// Builds a [`RequestSpec`] for `count` patterns, pre-populated with
    /// this pipeline's rules, solver window, sampling stride, pre-filter
    /// policy and Solving-E donors — the [`crate::PatternService`]
    /// counterpart of [`Pipeline::session_builder`].
    pub fn request_spec(&self, count: usize) -> RequestSpec {
        RequestSpec {
            count,
            rules: self.config.rules,
            solver: self.config.solver,
            sample_stride: self.config.sample_stride,
            repair_bowties: self.config.repair_bowties,
            donors: self.dataset.extended.clone().into(),
            ..RequestSpec::new(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_pipeline(seed: u64) -> (Pipeline, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
        (pipeline, rng)
    }

    #[test]
    fn builds_with_nonempty_dataset() {
        let (pipeline, _) = tiny_pipeline(0);
        assert!(!pipeline.dataset().tensors.is_empty());
        assert!(pipeline.dataset().report.accepted > 0);
    }

    #[test]
    fn freezing_before_training_errors() {
        let (pipeline, _) = tiny_pipeline(1);
        assert!(matches!(
            pipeline.trained_model(),
            Err(PipelineError::NotTrained)
        ));
        assert!(matches!(
            pipeline.into_trained_model(),
            Err(PipelineError::NotTrained)
        ));
    }

    #[test]
    fn end_to_end_tiny_run_yields_legal_patterns() {
        let (mut pipeline, mut rng) = tiny_pipeline(2);
        let report = pipeline.train(6, &mut rng).unwrap();
        assert_eq!(report.losses.len(), 6);
        let model = pipeline.trained_model().unwrap();
        let session = pipeline.session_builder(&model).seed(2).build().unwrap();
        let batch = session.generate(3).unwrap();
        // Every returned pattern must be DRC-clean: the 100 % legality
        // claim is structural.
        for g in &batch.items {
            let drc = dp_drc::check_pattern(&g.pattern, &pipeline.config().rules);
            assert!(drc.is_clean(), "{:?}", drc.violations());
        }
        let r = batch.report;
        assert_eq!(r.legal_patterns, batch.items.len());
        assert!(r.topologies_sampled >= 3);
        assert_eq!(batch.items.len() + r.shortfall, 3);
    }

    #[test]
    fn variants_share_topology_and_are_legal() {
        let (mut pipeline, mut rng) = tiny_pipeline(3);
        let _ = pipeline.train(4, &mut rng).unwrap();
        let model = pipeline.trained_model().unwrap();
        let session = pipeline.session_builder(&model).seed(3).build().unwrap();
        let (topos, _) = session.sample_topologies(1);
        if topos.is_empty() {
            return; // extremely unlucky sampling; covered by other seeds
        }
        let (variants, report) = session.legalize_variants(&topos[0], 4, &mut rng).unwrap();
        for v in &variants {
            assert_eq!(v.topology(), &topos[0]);
            assert!(dp_drc::check_pattern(v, &pipeline.config().rules).is_clean());
        }
        assert_eq!(report.legal_patterns, variants.len());
    }

    #[test]
    fn variant_failures_are_counted() {
        // Infeasible rules: every requested variant must surface as a
        // solver failure instead of silently shrinking the result.
        let (mut pipeline, mut rng) = tiny_pipeline(7);
        let _ = pipeline.train(3, &mut rng).unwrap();
        let model = pipeline.trained_model().unwrap();
        let sampling_session = pipeline.session_builder(&model).seed(7).build().unwrap();
        let harsh_session = pipeline
            .session_builder(&model)
            .rules(
                DesignRules::builder()
                    .space_min(900)
                    .width_min(900)
                    .area_range(1, i128::MAX / 4)
                    .build()
                    .unwrap(),
            )
            .solver_config(SolverConfig {
                max_iterations: 30,
                max_restarts: 1,
                ..SolverConfig::for_window(2048, 2048)
            })
            .build()
            .unwrap();
        let (topos, _) = sampling_session.sample_topologies(1);
        if topos.is_empty() || topos[0].count_ones() == 0 {
            return; // nothing to legalize → nothing to fail
        }
        let (variants, report) = harsh_session
            .legalize_variants(&topos[0], 3, &mut rng)
            .unwrap();
        assert_eq!(report.solver_failures + variants.len(), 3);
    }

    #[test]
    fn prefilter_rate_is_tracked() {
        let (mut pipeline, mut rng) = tiny_pipeline(4);
        let _ = pipeline.train(4, &mut rng).unwrap();
        let model = pipeline.trained_model().unwrap();
        let session = pipeline.session_builder(&model).seed(4).build().unwrap();
        let (topos, r) = session.sample_topologies(4);
        assert!(r.prefilter_rate() >= 0.0 && r.prefilter_rate() <= 1.0);
        // Exact accounting: in topology-only mode every sampled attempt is
        // either delivered (repaired ones are delivered) or rejected.
        assert_eq!(r.topologies_sampled, topos.len() + r.prefilter_rejected);
        // The shortfall invariant: whatever was not delivered is recorded.
        assert_eq!(r.shortfall, 4 - topos.len());
    }

    #[test]
    fn respaced_pipeline_sampling_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut config = PipelineConfig::tiny();
        config.sample_stride = 5;
        let mut pipeline = Pipeline::from_synthetic_map(config, &mut rng).unwrap();
        let _ = pipeline.train(4, &mut rng).unwrap();
        let model = pipeline.trained_model().unwrap();
        let session = pipeline.session_builder(&model).seed(5).build().unwrap();
        let (topos, _) = session.sample_topologies(2);
        assert_eq!(topos.len(), 2);
        for t in &topos {
            assert_eq!((t.width(), t.height()), (32, 32));
        }
    }

    #[test]
    fn request_spec_mirrors_the_pipeline_config() {
        let (pipeline, _) = tiny_pipeline(8);
        let spec = pipeline.request_spec(5).seed(9);
        assert_eq!(spec.count, 5);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.rules, pipeline.config().rules);
        assert_eq!(spec.sample_stride, pipeline.config().sample_stride);
        assert_eq!(spec.repair_bowties, pipeline.config().repair_bowties);
        assert_eq!(spec.donors.len(), pipeline.dataset().extended.len());
    }

    #[test]
    fn invalid_configs_are_rejected_not_panicked() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        // Non-square channel count: impossible to express a channel
        // mismatch any more, but the fold itself can still be invalid.
        let mut config = PipelineConfig::tiny();
        config.dataset.channels = 3;
        assert!(matches!(
            Pipeline::from_synthetic_map(config, &mut rng),
            Err(PipelineError::Config(ConfigError::ChannelsNotSquare {
                channels: 3
            }))
        ));
        let mut config = PipelineConfig::tiny();
        config.sample_stride = 0;
        assert!(matches!(
            Pipeline::from_synthetic_map(config, &mut rng),
            Err(PipelineError::Config(ConfigError::ZeroStride))
        ));
        let mut config = PipelineConfig::tiny();
        config.solver = SolverConfig::for_window(8, 2048);
        assert!(matches!(
            Pipeline::from_synthetic_map(config, &mut rng),
            Err(PipelineError::Config(ConfigError::WindowTooSmall { .. }))
        ));
    }

    #[test]
    fn report_merge_adds_fields() {
        let a = PipelineReport {
            topologies_sampled: 3,
            prefilter_rejected: 1,
            prefilter_repaired: 1,
            solver_failures: 2,
            legal_patterns: 1,
            shortfall: 1,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.topologies_sampled, 6);
        assert_eq!(b.solver_failures, 4);
        assert_eq!(b.shortfall, 2);
    }
}
