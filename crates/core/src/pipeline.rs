use crate::PipelineError;
use dp_datagen::{
    build_dataset, split_into_tiles, Dataset, DatasetConfig, GeneratorConfig, LayoutMapGenerator,
};
use dp_diffusion::{Sampler, TrainConfig, TrainReport, Trainer};
use dp_drc::DesignRules;
use dp_geometry::{bowtie, BitGrid, Coord, Layout};
use dp_legalize::{Init, Solution, SolveError, Solver, SolverConfig};
use dp_nn::UNetConfig;
use dp_squish::SquishPattern;
use rand::Rng;

/// End-to-end configuration of the DiffPattern pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Synthetic-map generator settings (the dataset substitute).
    pub generator: GeneratorConfig,
    /// Tile side in nm (paper: 2048).
    pub tile: Coord,
    /// Dataset extension/folding settings.
    pub dataset: DatasetConfig,
    /// U-Net architecture.
    pub unet: UNetConfig,
    /// Diffusion training settings.
    pub train: TrainConfig,
    /// Design rules for legalization and DRC.
    pub rules: DesignRules,
    /// Legalization solver settings.
    pub solver: SolverConfig,
    /// Reverse-sampling stride. 1 runs the full ancestral chain (paper
    /// Eq. 13); larger values use the respaced DDIM-style sampler with
    /// `K / stride` denoiser calls per topology (see
    /// [`dp_diffusion::Sampler::sample_respaced`]).
    pub sample_stride: usize,
    /// Pre-filter policy. `false` is the paper's behaviour: topologies with
    /// bow-ties are rejected outright (the paper reports < 0.1 % rejection
    /// at its 0.5 M-iteration GPU training scale). `true` repairs bow-ties
    /// instead of rejecting, which keeps CPU-scale models (thousands of
    /// iterations) productive; repaired counts are reported separately so
    /// runs stay honest about model quality.
    pub repair_bowties: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        let dataset = DatasetConfig {
            matrix_side: 32,
            channels: 4,
        };
        let side = dataset.matrix_side / (dataset.channels as f64).sqrt() as usize;
        PipelineConfig {
            generator: GeneratorConfig::small(),
            tile: 2048,
            dataset,
            unet: UNetConfig {
                in_channels: dataset.channels,
                out_channels: 2 * dataset.channels,
                base_channels: 32,
                channel_mults: vec![1, 2],
                num_res_blocks: 2,
                attn_resolutions: vec![1],
                time_dim: 64,
                groups: 8,
                dropout: 0.0,
            },
            train: TrainConfig {
                batch_size: 8,
                diffusion_steps: 100,
                ..TrainConfig::default()
            },
            rules: DesignRules::standard(),
            solver: SolverConfig::for_window(2048, 2048),
            sample_stride: 1,
            repair_bowties: true,
        }
        .validated(side)
    }
}

impl PipelineConfig {
    /// A deliberately tiny configuration for unit tests and doc examples:
    /// the same 32x32 topology matrices as the default, folded deeper
    /// (C = 16) so the U-Net works on 8x8 feature maps.
    pub fn tiny() -> Self {
        let dataset = DatasetConfig {
            matrix_side: 32,
            channels: 16,
        };
        PipelineConfig {
            generator: GeneratorConfig::small(),
            tile: 2048,
            dataset,
            unet: UNetConfig {
                in_channels: 16,
                out_channels: 32,
                base_channels: 8,
                channel_mults: vec![1, 2],
                num_res_blocks: 1,
                attn_resolutions: vec![1],
                time_dim: 16,
                groups: 4,
                dropout: 0.0,
            },
            train: TrainConfig {
                batch_size: 4,
                diffusion_steps: 30,
                ..TrainConfig::default()
            },
            rules: DesignRules::standard(),
            solver: SolverConfig::for_window(2048, 2048),
            sample_stride: 1,
            repair_bowties: true,
        }
    }

    fn validated(self, _side: usize) -> Self {
        assert_eq!(
            self.unet.in_channels, self.dataset.channels,
            "U-Net input channels must match the fold channel count"
        );
        self
    }
}

/// Cumulative pipeline statistics (the §IV-C claims: pre-filter rejection
/// below 0.1 %, zero unsolvable topologies in practice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Topology tensors drawn from the diffusion sampler.
    pub topologies_sampled: usize,
    /// Topologies rejected by the bow-tie pre-filter.
    pub prefilter_rejected: usize,
    /// Topologies whose bow-ties were repaired instead of rejected
    /// (only with [`PipelineConfig::repair_bowties`]).
    pub prefilter_repaired: usize,
    /// Topologies the solver could not legalize.
    pub solver_failures: usize,
    /// Legal patterns produced.
    pub legal_patterns: usize,
}

impl PipelineReport {
    /// Pre-filter rejection rate in `[0, 1]`.
    pub fn prefilter_rate(&self) -> f64 {
        if self.topologies_sampled == 0 {
            0.0
        } else {
            self.prefilter_rejected as f64 / self.topologies_sampled as f64
        }
    }
}

/// The DiffPattern pipeline (paper Fig. 4): dataset → discrete diffusion →
/// pre-filter → white-box legalization.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    dataset: Dataset,
    trainer: Trainer,
    trained: bool,
    report: PipelineReport,
}

impl Pipeline {
    /// Builds the pipeline on a freshly generated synthetic layout map.
    ///
    /// # Errors
    ///
    /// [`PipelineError::EmptyDataset`] when no tile survives extension;
    /// diffusion configuration errors are propagated.
    pub fn from_synthetic_map(
        config: PipelineConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, PipelineError> {
        let map = LayoutMapGenerator::new(config.generator).generate(rng);
        let tiles = split_into_tiles(&map, config.tile);
        Self::from_tiles(config, &tiles, rng)
    }

    /// Builds the pipeline on caller-provided layout tiles.
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::from_synthetic_map`].
    pub fn from_tiles(
        config: PipelineConfig,
        tiles: &[Layout],
        rng: &mut impl Rng,
    ) -> Result<Self, PipelineError> {
        let dataset = build_dataset(tiles, config.dataset);
        if dataset.tensors.is_empty() {
            return Err(PipelineError::EmptyDataset);
        }
        let trainer = Trainer::new(&config.unet, config.train.clone(), rng)?;
        Ok(Pipeline {
            config,
            dataset,
            trainer,
            trained: false,
            report: PipelineReport::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The training dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Cumulative statistics.
    pub fn report(&self) -> PipelineReport {
        self.report
    }

    /// Mutable access to the (possibly trained) denoiser, for direct use
    /// with [`dp_diffusion::Sampler`] — e.g. the Fig. 6 trace example.
    pub fn denoiser_mut(&mut self) -> &mut dp_diffusion::NeuralDenoiser {
        self.trainer.denoiser_mut()
    }

    /// The diffusion noise schedule in use.
    pub fn schedule(&self) -> &dp_diffusion::NoiseSchedule {
        self.trainer.schedule()
    }

    /// Marks the pipeline as trained without running the trainer — for use
    /// after restoring weights with [`dp_nn::load_params`] (the `dpgen gen`
    /// path). Generating from genuinely untrained weights produces noise,
    /// not an error; the caller owns that trade-off.
    pub fn mark_trained(&mut self) {
        self.trained = true;
    }

    /// Trains the diffusion model for `iterations` steps.
    ///
    /// # Errors
    ///
    /// Propagates dataset/shape errors from the diffusion trainer.
    pub fn train(
        &mut self,
        iterations: usize,
        rng: &mut impl Rng,
    ) -> Result<TrainReport, PipelineError> {
        let report = self.trainer.train(&self.dataset.tensors, iterations, rng)?;
        self.trained = true;
        Ok(report)
    }

    /// Samples `count` topology matrices from the trained model, applying
    /// the bow-tie pre-filter (paper §III-C). Rejected samples are replaced
    /// so exactly `count` topologies are returned (the paper reports a
    /// rejection rate below 0.1 %).
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotTrained`] before [`Pipeline::train`].
    pub fn generate_topologies(
        &mut self,
        count: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<BitGrid>, PipelineError> {
        if !self.trained {
            return Err(PipelineError::NotTrained);
        }
        let sampler = Sampler::new(self.trainer.schedule().clone());
        let channels = self.config.dataset.channels;
        let side = self.config.dataset.matrix_side / (channels as f64).sqrt() as usize;
        let retained = sampler.strided_steps(self.config.sample_stride);
        let mut out = Vec::with_capacity(count);
        // Bound replacement attempts so a degenerate model cannot loop
        // forever.
        let max_attempts = count.saturating_mul(4).max(16);
        let mut attempts = 0;
        while out.len() < count && attempts < max_attempts {
            attempts += 1;
            self.report.topologies_sampled += 1;
            let tensor = if self.config.sample_stride <= 1 {
                sampler.sample_one(self.trainer.denoiser_mut(), channels, side, rng)
            } else {
                sampler.sample_respaced(self.trainer.denoiser_mut(), channels, side, &retained, rng)
            };
            let mut grid = tensor.unfold();
            if bowtie::is_bowtie_free(&grid) {
                out.push(grid);
            } else if self.config.repair_bowties {
                bowtie::repair_bowties(&mut grid);
                self.report.prefilter_repaired += 1;
                out.push(grid);
            } else {
                self.report.prefilter_rejected += 1;
            }
        }
        Ok(out)
    }

    /// Legalizes a batch of topologies (DiffPattern-S: one pattern per
    /// topology), using Solving-E initialisation from the training set.
    /// Unsolvable topologies are dropped, as the paper prescribes.
    pub fn legalize_topologies(
        &mut self,
        topologies: &[BitGrid],
        rng: &mut impl Rng,
    ) -> Vec<SquishPattern> {
        let solver = Solver::new(self.config.rules, self.config.solver);
        let mut out = Vec::with_capacity(topologies.len());
        for topo in topologies {
            match self.solve_with_existing_init(&solver, topo, rng) {
                Ok(solution) => {
                    let pattern = SquishPattern::new(topo.clone(), solution.dx, solution.dy)
                        .expect("solver output matches topology");
                    self.report.legal_patterns += 1;
                    out.push(pattern);
                }
                Err(_) => self.report.solver_failures += 1,
            }
        }
        out
    }

    /// Legalizes one topology into up to `variants` distinct patterns
    /// (DiffPattern-L, paper Fig. 7).
    pub fn legalize_variants(
        &mut self,
        topology: &BitGrid,
        variants: usize,
        rng: &mut impl Rng,
    ) -> Vec<SquishPattern> {
        let solver = Solver::new(self.config.rules, self.config.solver);
        let solutions = solver.solve_many(topology, variants, rng);
        self.report.legal_patterns += solutions.len();
        solutions
            .into_iter()
            .map(|s| {
                SquishPattern::new(topology.clone(), s.dx, s.dy)
                    .expect("solver output matches topology")
            })
            .collect()
    }

    /// Convenience: sample topologies and legalize them (DiffPattern-S).
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotTrained`] before [`Pipeline::train`].
    pub fn generate_legal_patterns(
        &mut self,
        count: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<SquishPattern>, PipelineError> {
        let topologies = self.generate_topologies(count, rng)?;
        Ok(self.legalize_topologies(&topologies, rng))
    }

    /// Solves with Solving-E initialisation (a random training pattern's Δ
    /// vectors), the accelerated mode of paper Table II.
    fn solve_with_existing_init(
        &self,
        solver: &Solver,
        topology: &BitGrid,
        rng: &mut impl Rng,
    ) -> Result<Solution, SolveError> {
        let donor = &self.dataset.extended[rng.gen_range(0..self.dataset.extended.len())];
        solver.solve(topology, Init::Existing(donor.dx(), donor.dy()), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_pipeline(seed: u64) -> (Pipeline, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
        (pipeline, rng)
    }

    #[test]
    fn builds_with_nonempty_dataset() {
        let (pipeline, _) = tiny_pipeline(0);
        assert!(!pipeline.dataset().tensors.is_empty());
        assert!(pipeline.dataset().report.accepted > 0);
    }

    #[test]
    fn generation_before_training_errors() {
        let (mut pipeline, mut rng) = tiny_pipeline(1);
        assert!(matches!(
            pipeline.generate_topologies(1, &mut rng),
            Err(PipelineError::NotTrained)
        ));
    }

    #[test]
    fn end_to_end_tiny_run_yields_legal_patterns() {
        let (mut pipeline, mut rng) = tiny_pipeline(2);
        let report = pipeline.train(6, &mut rng).unwrap();
        assert_eq!(report.losses.len(), 6);
        let patterns = pipeline.generate_legal_patterns(3, &mut rng).unwrap();
        // Every returned pattern must be DRC-clean: the 100 % legality
        // claim is structural.
        for p in &patterns {
            let drc = dp_drc::check_pattern(p, &pipeline.config().rules);
            assert!(drc.is_clean(), "{:?}", drc.violations());
        }
        let r = pipeline.report();
        assert_eq!(r.legal_patterns, patterns.len());
        assert!(r.topologies_sampled >= 3);
    }

    #[test]
    fn variants_share_topology_and_are_legal() {
        let (mut pipeline, mut rng) = tiny_pipeline(3);
        let _ = pipeline.train(4, &mut rng).unwrap();
        let topos = pipeline.generate_topologies(1, &mut rng).unwrap();
        if topos.is_empty() {
            return; // extremely unlucky sampling; covered by other seeds
        }
        let variants = pipeline.legalize_variants(&topos[0], 4, &mut rng);
        for v in &variants {
            assert_eq!(v.topology(), &topos[0]);
            assert!(dp_drc::check_pattern(v, &pipeline.config().rules).is_clean());
        }
    }

    #[test]
    fn prefilter_rate_is_tracked() {
        let (mut pipeline, mut rng) = tiny_pipeline(4);
        let _ = pipeline.train(4, &mut rng).unwrap();
        let topos = pipeline.generate_topologies(4, &mut rng).unwrap();
        let r = pipeline.report();
        assert!(r.prefilter_rate() >= 0.0 && r.prefilter_rate() <= 1.0);
        assert_eq!(r.topologies_sampled, r.prefilter_rejected + topos.len());
    }

    #[test]
    fn respaced_pipeline_sampling_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut config = PipelineConfig::tiny();
        config.sample_stride = 5;
        let mut pipeline = Pipeline::from_synthetic_map(config, &mut rng).unwrap();
        let _ = pipeline.train(4, &mut rng).unwrap();
        let topos = pipeline.generate_topologies(2, &mut rng).unwrap();
        assert_eq!(topos.len(), 2);
        for t in &topos {
            assert_eq!((t.width(), t.height()), (32, 32));
        }
    }

    #[test]
    #[should_panic(expected = "input channels must match")]
    fn config_validation_catches_channel_mismatch() {
        let mut config = PipelineConfig::default();
        config.unet.in_channels = 16;
        let _ = config.validated(16);
    }
}
