use crate::{ConfigError, GenerationSession, PipelineError, SessionBuilder};
use dp_datagen::{
    build_dataset, split_into_tiles, Dataset, DatasetConfig, GeneratorConfig, LayoutMapGenerator,
};
use dp_diffusion::{TrainConfig, TrainReport, TrainedModel, Trainer};
use dp_drc::DesignRules;
use dp_geometry::{bowtie, BitGrid, Coord, Layout};
use dp_legalize::{Init, Solution, SolveError, Solver, SolverConfig};
use dp_nn::UNetConfig;
use dp_squish::SquishPattern;
use rand::Rng;

/// U-Net backbone hyper-parameters.
///
/// Deliberately *without* channel counts: the network's input width is
/// derived from [`DatasetConfig::channels`] (`in = C`, `out = 2C`, the
/// denoiser head contract), so the fold/width mismatch that the old
/// `validated()` assertion guarded against can no longer be constructed.
#[derive(Debug, Clone, PartialEq)]
pub struct BackboneConfig {
    /// Base feature width.
    pub base_channels: usize,
    /// Per-level channel multipliers; the number of levels is the length.
    pub channel_mults: Vec<usize>,
    /// Residual blocks per level.
    pub num_res_blocks: usize,
    /// Levels (0 = full resolution) that get self-attention blocks.
    pub attn_resolutions: Vec<usize>,
    /// Sinusoidal time-embedding dimensionality (must be even).
    pub time_dim: usize,
    /// GroupNorm group count.
    pub groups: usize,
    /// Dropout rate inside each residual block.
    pub dropout: f32,
}

/// End-to-end configuration of the DiffPattern pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Synthetic-map generator settings (the dataset substitute).
    pub generator: GeneratorConfig,
    /// Tile side in nm (paper: 2048).
    pub tile: Coord,
    /// Dataset extension/folding settings.
    pub dataset: DatasetConfig,
    /// U-Net backbone shape; channel counts are derived from `dataset`.
    pub unet: BackboneConfig,
    /// Diffusion training settings.
    pub train: TrainConfig,
    /// Design rules for legalization and DRC.
    pub rules: DesignRules,
    /// Legalization solver settings.
    pub solver: SolverConfig,
    /// Reverse-sampling stride. 1 runs the full ancestral chain (paper
    /// Eq. 13); larger values use the respaced DDIM-style sampler with
    /// `K / stride` denoiser calls per topology (see
    /// [`dp_diffusion::Sampler::sample_respaced`]).
    pub sample_stride: usize,
    /// Pre-filter policy. `false` is the paper's behaviour: topologies with
    /// bow-ties are rejected outright (the paper reports < 0.1 % rejection
    /// at its 0.5 M-iteration GPU training scale). `true` repairs bow-ties
    /// instead of rejecting, which keeps CPU-scale models (thousands of
    /// iterations) productive; repaired counts are reported separately so
    /// runs stay honest about model quality.
    pub repair_bowties: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            generator: GeneratorConfig::small(),
            tile: 2048,
            dataset: DatasetConfig {
                matrix_side: 32,
                channels: 4,
            },
            unet: BackboneConfig {
                base_channels: 32,
                channel_mults: vec![1, 2],
                num_res_blocks: 2,
                attn_resolutions: vec![1],
                time_dim: 64,
                groups: 8,
                dropout: 0.0,
            },
            train: TrainConfig {
                batch_size: 8,
                diffusion_steps: 100,
                ..TrainConfig::default()
            },
            rules: DesignRules::standard(),
            solver: SolverConfig::for_window(2048, 2048),
            sample_stride: 1,
            repair_bowties: true,
        }
    }
}

impl PipelineConfig {
    /// A deliberately tiny configuration for unit tests and doc examples:
    /// the same 32x32 topology matrices as the default, folded deeper
    /// (C = 16) so the U-Net works on 8x8 feature maps.
    pub fn tiny() -> Self {
        PipelineConfig {
            dataset: DatasetConfig {
                matrix_side: 32,
                channels: 16,
            },
            unet: BackboneConfig {
                base_channels: 8,
                channel_mults: vec![1, 2],
                num_res_blocks: 1,
                attn_resolutions: vec![1],
                time_dim: 16,
                groups: 4,
                dropout: 0.0,
            },
            train: TrainConfig {
                batch_size: 4,
                diffusion_steps: 30,
                ..TrainConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    /// The full U-Net configuration, with channel counts derived from the
    /// dataset fold (`in = C`, `out = 2C`).
    pub fn unet_config(&self) -> UNetConfig {
        UNetConfig {
            in_channels: self.dataset.channels,
            out_channels: 2 * self.dataset.channels,
            base_channels: self.unet.base_channels,
            channel_mults: self.unet.channel_mults.clone(),
            num_res_blocks: self.unet.num_res_blocks,
            attn_resolutions: self.unet.attn_resolutions.clone(),
            time_dim: self.unet.time_dim,
            groups: self.unet.groups,
            dropout: self.unet.dropout,
        }
    }

    /// Spatial side of the folded topology tensors (`matrix_side / √C`).
    pub fn fold_side(&self) -> usize {
        self.dataset.matrix_side / self.fold_patch()
    }

    fn fold_patch(&self) -> usize {
        (self.dataset.channels as f64).sqrt() as usize
    }

    /// Checks the configuration for inconsistencies the type system cannot
    /// rule out.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] for a zero sampling stride, a non-square fold
    /// channel count, a matrix side the fold patch does not divide, or a
    /// solver window smaller than the topology matrix.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sample_stride == 0 {
            return Err(ConfigError::ZeroStride);
        }
        let patch = self.fold_patch();
        if patch * patch != self.dataset.channels {
            return Err(ConfigError::ChannelsNotSquare {
                channels: self.dataset.channels,
            });
        }
        if !self.dataset.matrix_side.is_multiple_of(patch) || self.dataset.matrix_side == 0 {
            return Err(ConfigError::SideNotDivisible {
                matrix_side: self.dataset.matrix_side,
                patch,
            });
        }
        if (self.dataset.matrix_side as i64) > self.solver.target_width
            || (self.dataset.matrix_side as i64) > self.solver.target_height
        {
            return Err(ConfigError::WindowTooSmall {
                matrix_side: self.dataset.matrix_side,
                target_width: self.solver.target_width,
                target_height: self.solver.target_height,
            });
        }
        Ok(())
    }
}

/// Cumulative pipeline statistics (the §IV-C claims: pre-filter rejection
/// below 0.1 %, zero unsolvable topologies in practice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Topology tensors drawn from the diffusion sampler.
    pub topologies_sampled: usize,
    /// Topologies rejected by the bow-tie pre-filter.
    pub prefilter_rejected: usize,
    /// Topologies whose bow-ties were repaired instead of rejected
    /// (only with [`PipelineConfig::repair_bowties`]).
    pub prefilter_repaired: usize,
    /// Topologies the solver could not legalize (including
    /// requested-but-unsolved DiffPattern-L variants).
    pub solver_failures: usize,
    /// Legal patterns produced.
    pub legal_patterns: usize,
    /// Requested batch slots that exhausted their attempt budget and
    /// produced nothing — the previously silent gap between what was
    /// asked for and what came back.
    pub shortfall: usize,
}

impl PipelineReport {
    /// Pre-filter rejection rate in `[0, 1]`.
    pub fn prefilter_rate(&self) -> f64 {
        if self.topologies_sampled == 0 {
            0.0
        } else {
            self.prefilter_rejected as f64 / self.topologies_sampled as f64
        }
    }

    /// Accumulates another report into this one (per-worker aggregation).
    pub fn merge(&mut self, other: &PipelineReport) {
        self.topologies_sampled += other.topologies_sampled;
        self.prefilter_rejected += other.prefilter_rejected;
        self.prefilter_repaired += other.prefilter_repaired;
        self.solver_failures += other.solver_failures;
        self.legal_patterns += other.legal_patterns;
        self.shortfall += other.shortfall;
    }
}

/// The DiffPattern pipeline (paper Fig. 4): dataset → discrete diffusion →
/// pre-filter → white-box legalization.
///
/// `Pipeline` remains the *training* facade: it builds the dataset and
/// drives the trainer. For inference, freeze the trained state with
/// [`Pipeline::trained_model`] and generate through a
/// [`GenerationSession`] (see [`Pipeline::session_builder`]); the
/// pipeline's own generation methods are deprecated shims kept for
/// source compatibility.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    dataset: Dataset,
    trainer: Trainer,
    solver: Solver,
    trained: bool,
    report: PipelineReport,
}

impl Pipeline {
    /// Builds the pipeline on a freshly generated synthetic layout map.
    ///
    /// # Errors
    ///
    /// [`PipelineError::Config`] for an invalid configuration,
    /// [`PipelineError::EmptyDataset`] when no tile survives extension;
    /// diffusion configuration errors are propagated.
    pub fn from_synthetic_map(
        config: PipelineConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, PipelineError> {
        let map = LayoutMapGenerator::new(config.generator).generate(rng);
        let tiles = split_into_tiles(&map, config.tile);
        Self::from_tiles(config, &tiles, rng)
    }

    /// Builds the pipeline on caller-provided layout tiles.
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::from_synthetic_map`].
    pub fn from_tiles(
        config: PipelineConfig,
        tiles: &[Layout],
        rng: &mut impl Rng,
    ) -> Result<Self, PipelineError> {
        config.validate()?;
        let dataset = build_dataset(tiles, config.dataset);
        if dataset.tensors.is_empty() {
            return Err(PipelineError::EmptyDataset);
        }
        let trainer = Trainer::new(&config.unet_config(), config.train.clone(), rng)?;
        let solver = Solver::new(config.rules, config.solver);
        Ok(Pipeline {
            config,
            dataset,
            trainer,
            solver,
            trained: false,
            report: PipelineReport::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The training dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Cumulative statistics.
    pub fn report(&self) -> PipelineReport {
        self.report
    }

    /// The diffusion noise schedule in use.
    pub fn schedule(&self) -> &dp_diffusion::NoiseSchedule {
        self.trainer.schedule()
    }

    /// Mutable access to the (possibly trained) denoiser.
    #[deprecated(
        since = "0.2.0",
        note = "freeze the trained state with `Pipeline::trained_model` and use its `&self` inference path instead"
    )]
    pub fn denoiser_mut(&mut self) -> &mut dp_diffusion::NeuralDenoiser {
        self.trainer.denoiser_mut()
    }

    /// Marks the pipeline as trained without running the trainer.
    #[deprecated(
        since = "0.2.0",
        note = "restore a frozen model with `TrainedModel::load` instead of patching weights into a pipeline"
    )]
    pub fn mark_trained(&mut self) {
        self.trained = true;
    }

    /// Trains the diffusion model for `iterations` steps.
    ///
    /// # Errors
    ///
    /// Propagates dataset/shape errors from the diffusion trainer.
    pub fn train(
        &mut self,
        iterations: usize,
        rng: &mut impl Rng,
    ) -> Result<TrainReport, PipelineError> {
        let report = self.trainer.train(&self.dataset.tensors, iterations, rng)?;
        self.trained = true;
        Ok(report)
    }

    /// Freezes the trained state into an immutable, shareable
    /// [`TrainedModel`] (the pipeline itself stays usable for further
    /// training).
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotTrained`] before [`Pipeline::train`].
    pub fn trained_model(&self) -> Result<TrainedModel, PipelineError> {
        if !self.trained {
            return Err(PipelineError::NotTrained);
        }
        Ok(TrainedModel::new(
            self.trainer.denoiser().clone(),
            self.trainer.schedule().clone(),
            self.config.fold_side(),
        )?)
    }

    /// Consumes the pipeline into a [`TrainedModel`], avoiding the weight
    /// clone of [`Pipeline::trained_model`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotTrained`] before [`Pipeline::train`].
    pub fn into_trained_model(self) -> Result<TrainedModel, PipelineError> {
        if !self.trained {
            return Err(PipelineError::NotTrained);
        }
        Ok(self.trainer.finish()?)
    }

    /// Starts a [`GenerationSession`] builder over `model`, pre-populated
    /// with this pipeline's rules, solver window, sampling stride,
    /// pre-filter policy and Solving-E donors (the extended dataset
    /// patterns, as the paper prescribes).
    pub fn session_builder<'m>(&self, model: &'m TrainedModel) -> SessionBuilder<'m> {
        GenerationSession::builder(model)
            .rules(self.config.rules)
            .solver_config(self.config.solver)
            .sample_stride(self.config.sample_stride)
            .repair_bowties(self.config.repair_bowties)
            .donors(self.dataset.extended.clone())
    }

    /// Samples `count` topology matrices from the trained model, applying
    /// the bow-tie pre-filter (paper §III-C). Rejected samples are
    /// replaced within a bounded attempt budget; if the budget runs out,
    /// the gap is recorded in [`PipelineReport::shortfall`] instead of
    /// being silently dropped.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotTrained`] before [`Pipeline::train`].
    #[deprecated(
        since = "0.2.0",
        note = "use `GenerationSession::sample_topologies` (thread-parallel, deterministic per seed)"
    )]
    pub fn generate_topologies(
        &mut self,
        count: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<BitGrid>, PipelineError> {
        if !self.trained {
            return Err(PipelineError::NotTrained);
        }
        let sampler = dp_diffusion::Sampler::new(self.trainer.schedule().clone());
        let channels = self.config.dataset.channels;
        let side = self.config.fold_side();
        let retained = sampler.strided_steps(self.config.sample_stride);
        let denoiser = self.trainer.denoiser();
        let mut out = Vec::with_capacity(count);
        // Bound replacement attempts so a degenerate model cannot loop
        // forever.
        let max_attempts = count.saturating_mul(4).max(16);
        let mut attempts = 0;
        while out.len() < count && attempts < max_attempts {
            attempts += 1;
            self.report.topologies_sampled += 1;
            let tensor = if self.config.sample_stride <= 1 {
                sampler.sample_one_infer(denoiser, channels, side, rng)
            } else {
                sampler.sample_respaced_infer(denoiser, channels, side, &retained, rng)
            };
            let mut grid = tensor.unfold();
            if bowtie::is_bowtie_free(&grid) {
                out.push(grid);
            } else if self.config.repair_bowties {
                bowtie::repair_bowties(&mut grid);
                self.report.prefilter_repaired += 1;
                out.push(grid);
            } else {
                self.report.prefilter_rejected += 1;
            }
        }
        self.report.shortfall += count - out.len();
        Ok(out)
    }

    /// Legalizes a batch of topologies (DiffPattern-S: one pattern per
    /// topology), using Solving-E initialisation from the training set.
    /// Unsolvable topologies are dropped, as the paper prescribes.
    #[deprecated(
        since = "0.2.0",
        note = "use `GenerationSession::generate`, which samples and legalizes in one thread-parallel pass"
    )]
    pub fn legalize_topologies(
        &mut self,
        topologies: &[BitGrid],
        rng: &mut impl Rng,
    ) -> Vec<SquishPattern> {
        let mut out = Vec::with_capacity(topologies.len());
        for topo in topologies {
            match self.solve_with_existing_init(topo, rng) {
                Ok(solution) => match SquishPattern::new(topo.clone(), solution.dx, solution.dy) {
                    Ok(pattern) => {
                        self.report.legal_patterns += 1;
                        out.push(pattern);
                    }
                    Err(_) => self.report.solver_failures += 1,
                },
                Err(_) => self.report.solver_failures += 1,
            }
        }
        out
    }

    /// Legalizes one topology into up to `variants` distinct patterns
    /// (DiffPattern-L, paper Fig. 7). Requested-but-unsolved variants are
    /// counted in [`PipelineReport::solver_failures`].
    #[deprecated(since = "0.2.0", note = "use `GenerationSession::legalize_variants`")]
    pub fn legalize_variants(
        &mut self,
        topology: &BitGrid,
        variants: usize,
        rng: &mut impl Rng,
    ) -> Vec<SquishPattern> {
        let solve = self.solver.solve_many_report(topology, variants, rng);
        self.report.solver_failures += solve.failures;
        let mut out = Vec::with_capacity(solve.solutions.len());
        for s in solve.solutions {
            match SquishPattern::new(topology.clone(), s.dx, s.dy) {
                Ok(pattern) => {
                    self.report.legal_patterns += 1;
                    out.push(pattern);
                }
                Err(_) => self.report.solver_failures += 1,
            }
        }
        out
    }

    /// Convenience: sample topologies and legalize them (DiffPattern-S).
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotTrained`] before [`Pipeline::train`].
    #[deprecated(since = "0.2.0", note = "use `GenerationSession::generate`")]
    #[allow(deprecated)]
    pub fn generate_legal_patterns(
        &mut self,
        count: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<SquishPattern>, PipelineError> {
        let topologies = self.generate_topologies(count, rng)?;
        Ok(self.legalize_topologies(&topologies, rng))
    }

    /// Solves with Solving-E initialisation (a random training pattern's Δ
    /// vectors), the accelerated mode of paper Table II.
    fn solve_with_existing_init(
        &self,
        topology: &BitGrid,
        rng: &mut impl Rng,
    ) -> Result<Solution, SolveError> {
        let donor = &self.dataset.extended[rng.gen_range(0..self.dataset.extended.len())];
        self.solver
            .solve(topology, Init::Existing(donor.dx(), donor.dy()), rng)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_pipeline(seed: u64) -> (Pipeline, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
        (pipeline, rng)
    }

    #[test]
    fn builds_with_nonempty_dataset() {
        let (pipeline, _) = tiny_pipeline(0);
        assert!(!pipeline.dataset().tensors.is_empty());
        assert!(pipeline.dataset().report.accepted > 0);
    }

    #[test]
    fn generation_before_training_errors() {
        let (mut pipeline, mut rng) = tiny_pipeline(1);
        assert!(matches!(
            pipeline.generate_topologies(1, &mut rng),
            Err(PipelineError::NotTrained)
        ));
        assert!(matches!(
            pipeline.trained_model(),
            Err(PipelineError::NotTrained)
        ));
    }

    #[test]
    fn end_to_end_tiny_run_yields_legal_patterns() {
        let (mut pipeline, mut rng) = tiny_pipeline(2);
        let report = pipeline.train(6, &mut rng).unwrap();
        assert_eq!(report.losses.len(), 6);
        let patterns = pipeline.generate_legal_patterns(3, &mut rng).unwrap();
        // Every returned pattern must be DRC-clean: the 100 % legality
        // claim is structural.
        for p in &patterns {
            let drc = dp_drc::check_pattern(p, &pipeline.config().rules);
            assert!(drc.is_clean(), "{:?}", drc.violations());
        }
        let r = pipeline.report();
        assert_eq!(r.legal_patterns, patterns.len());
        assert!(r.topologies_sampled >= 3);
    }

    #[test]
    fn variants_share_topology_and_are_legal() {
        let (mut pipeline, mut rng) = tiny_pipeline(3);
        let _ = pipeline.train(4, &mut rng).unwrap();
        let topos = pipeline.generate_topologies(1, &mut rng).unwrap();
        if topos.is_empty() {
            return; // extremely unlucky sampling; covered by other seeds
        }
        let variants = pipeline.legalize_variants(&topos[0], 4, &mut rng);
        for v in &variants {
            assert_eq!(v.topology(), &topos[0]);
            assert!(dp_drc::check_pattern(v, &pipeline.config().rules).is_clean());
        }
        // Requested-but-unproduced variants are now accounted: solved +
        // failures + duplicates = requested, and only failures hit the
        // report.
        let r = pipeline.report();
        assert!(variants.len() + r.solver_failures <= topos.len().max(1) * 4 + r.solver_failures);
    }

    #[test]
    fn variant_failures_are_counted() {
        // Infeasible rules: every requested variant must surface as a
        // solver failure instead of silently shrinking the result.
        let (mut pipeline, mut rng) = tiny_pipeline(7);
        let _ = pipeline.train(3, &mut rng).unwrap();
        pipeline.solver = Solver::new(
            DesignRules::builder()
                .space_min(900)
                .width_min(900)
                .area_range(1, i128::MAX / 4)
                .build()
                .unwrap(),
            SolverConfig {
                max_iterations: 30,
                max_restarts: 1,
                ..SolverConfig::for_window(2048, 2048)
            },
        );
        let topo = pipeline.generate_topologies(1, &mut rng).unwrap();
        if topo.is_empty() || topo[0].count_ones() == 0 {
            return; // nothing to legalize → nothing to fail
        }
        let before = pipeline.report().solver_failures;
        let variants = pipeline.legalize_variants(&topo[0], 3, &mut rng);
        let after = pipeline.report().solver_failures;
        assert_eq!(after - before + variants.len(), 3);
    }

    #[test]
    fn prefilter_rate_is_tracked() {
        let (mut pipeline, mut rng) = tiny_pipeline(4);
        let _ = pipeline.train(4, &mut rng).unwrap();
        let topos = pipeline.generate_topologies(4, &mut rng).unwrap();
        let r = pipeline.report();
        assert!(r.prefilter_rate() >= 0.0 && r.prefilter_rate() <= 1.0);
        assert_eq!(r.topologies_sampled, r.prefilter_rejected + topos.len());
        // The shortfall invariant: whatever was not delivered is recorded.
        assert_eq!(r.shortfall, 4 - topos.len());
    }

    #[test]
    fn respaced_pipeline_sampling_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut config = PipelineConfig::tiny();
        config.sample_stride = 5;
        let mut pipeline = Pipeline::from_synthetic_map(config, &mut rng).unwrap();
        let _ = pipeline.train(4, &mut rng).unwrap();
        let topos = pipeline.generate_topologies(2, &mut rng).unwrap();
        assert_eq!(topos.len(), 2);
        for t in &topos {
            assert_eq!((t.width(), t.height()), (32, 32));
        }
    }

    #[test]
    fn invalid_configs_are_rejected_not_panicked() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        // Non-square channel count: impossible to express a channel
        // mismatch any more, but the fold itself can still be invalid.
        let mut config = PipelineConfig::tiny();
        config.dataset.channels = 3;
        assert!(matches!(
            Pipeline::from_synthetic_map(config, &mut rng),
            Err(PipelineError::Config(ConfigError::ChannelsNotSquare {
                channels: 3
            }))
        ));
        let mut config = PipelineConfig::tiny();
        config.sample_stride = 0;
        assert!(matches!(
            Pipeline::from_synthetic_map(config, &mut rng),
            Err(PipelineError::Config(ConfigError::ZeroStride))
        ));
        let mut config = PipelineConfig::tiny();
        config.solver = SolverConfig::for_window(8, 2048);
        assert!(matches!(
            Pipeline::from_synthetic_map(config, &mut rng),
            Err(PipelineError::Config(ConfigError::WindowTooSmall { .. }))
        ));
    }

    #[test]
    fn report_merge_adds_fields() {
        let a = PipelineReport {
            topologies_sampled: 3,
            prefilter_rejected: 1,
            prefilter_repaired: 1,
            solver_failures: 2,
            legal_patterns: 1,
            shortfall: 1,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.topologies_sampled, 6);
        assert_eq!(b.solver_failures, 4);
        assert_eq!(b.shortfall, 2);
    }
}
