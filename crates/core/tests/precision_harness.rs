//! The bf16 accuracy-contract harness: reduced-precision sampling must
//! stay 100 % legal (every delivered pattern DRC-clean — legality is
//! structural, the solver only emits clean patterns), deterministic for a
//! fixed `(seed, index)` set, and isolated from the exact path — an exact
//! request's output is bit-identical whether or not bf16 requests run
//! beside it. Diversity/complexity drift between the two precisions is
//! measured on the same fixed seed set and reported in the assertion
//! messages rather than bounded: the drift is a property of the model,
//! the invariants above are properties of the engine.

use diffpattern::drc::check_pattern;
use diffpattern::{
    evaluate_patterns, PatternService, Pipeline, PipelineConfig, Precision, RequestSpec,
};
use rand::SeedableRng;
use std::sync::Arc;

const COUNT: usize = 6;
const SEED: u64 = 17;

fn trained_service() -> (PatternService, RequestSpec) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(40);
    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
    let _ = pipeline.train(6, &mut rng).unwrap();
    let spec = pipeline.request_spec(COUNT).seed(SEED);
    let model = Arc::new(pipeline.into_trained_model().unwrap());
    let service = PatternService::builder(model)
        .threads(2)
        .micro_batch(4)
        .build()
        .unwrap();
    (service, spec)
}

#[test]
fn bf16_requests_are_legal_deterministic_and_isolated_from_exact() {
    let (service, spec) = trained_service();
    let bf16_spec = spec.clone().precision(Precision::Bf16);

    // Exact baseline, alone on the engine.
    let exact = service.generate(&spec).unwrap();

    // bf16 twice on the same fixed seed set: must be bit-identical runs.
    let bf16_a = service.generate(&bf16_spec).unwrap();
    let bf16_b = service.generate(&bf16_spec).unwrap();
    assert_eq!(
        bf16_a.items, bf16_b.items,
        "bf16 sampling must be deterministic per (seed, index)"
    );
    assert_eq!(bf16_a.report, bf16_b.report);

    // Legality 100 %: every delivered pattern is DRC-clean under the
    // request's rules, at both precisions.
    for (label, batch) in [("exact", &exact), ("bf16", &bf16_a)] {
        for g in &batch.items {
            let drc = check_pattern(&g.pattern, &spec.rules);
            assert!(drc.is_clean(), "[{label}] {:?}", drc.violations());
        }
        assert_eq!(batch.report.legal_patterns, batch.items.len());
        assert_eq!(batch.items.len() + batch.report.shortfall, COUNT);
    }

    // Diversity/complexity drift on the shared seed set. The figures are
    // model properties, so the harness only requires them to be
    // well-formed; the values surface in the panic message on regression.
    let exact_patterns: Vec<_> = exact.items.iter().map(|g| g.pattern.clone()).collect();
    let bf16_patterns: Vec<_> = bf16_a.items.iter().map(|g| g.pattern.clone()).collect();
    let row_exact = evaluate_patterns("exact", None, &exact_patterns, &spec.rules);
    let row_bf16 = evaluate_patterns("bf16", None, &bf16_patterns, &spec.rules);
    let drift = (row_bf16.diversity - row_exact.diversity).abs();
    assert!(
        drift.is_finite(),
        "diversity drift must be measurable: exact {} vs bf16 {}",
        row_exact.diversity,
        row_bf16.diversity
    );
    if !exact_patterns.is_empty() {
        assert!((row_exact.legality_pct() - 100.0).abs() < 1e-9);
    }
    if !bf16_patterns.is_empty() {
        assert!((row_bf16.legality_pct() - 100.0).abs() < 1e-9);
    }

    // Isolation: the exact request re-run while bf16 work floods the same
    // engine must reproduce the solo baseline bit-for-bit (precision is
    // part of the micro-batch plan key, so lanes never mix models).
    let busy_bf16 = service.submit(&bf16_spec).unwrap();
    let exact_again = service.generate(&spec).unwrap();
    let _ = busy_bf16.wait().unwrap();
    assert_eq!(
        exact.items, exact_again.items,
        "exact output must not depend on concurrent bf16 load"
    );
    assert_eq!(exact.report, exact_again.report);
}
