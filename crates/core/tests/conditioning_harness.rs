//! The conditioning-contract harness: conditioned requests (frozen
//! region + motif guidance) must be deterministic per `(seed, index)`,
//! deliver only DRC-clean patterns that carry every frozen bit exactly,
//! and stay isolated from the exact unconditioned path — an
//! unconditioned request's output is bit-identical whether or not
//! conditioned requests flood the same engine (the conditioning hash is
//! part of the micro-batch plan key, so differently-constrained lanes
//! never share a lock-step batch).

use diffpattern::drc::check_pattern;
use diffpattern::squish::DeepSquishTensor;
use diffpattern::{
    hotspot_guidance, Conditioning, ConfigError, FrozenRegion, PatternService, Pipeline,
    PipelineConfig, RequestSpec,
};
use rand::SeedableRng;
use std::sync::Arc;

const COUNT: usize = 6;
const SEED: u64 = 17;

fn trained_service() -> (PatternService, RequestSpec) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(40);
    let mut pipeline = Pipeline::from_synthetic_map(PipelineConfig::tiny(), &mut rng).unwrap();
    let _ = pipeline.train(6, &mut rng).unwrap();
    let spec = pipeline.request_spec(COUNT).seed(SEED);
    let model = Arc::new(pipeline.into_trained_model().unwrap());
    let service = PatternService::builder(model)
        .threads(2)
        .micro_batch(4)
        .build()
        .unwrap();
    (service, spec)
}

/// A realistic inpainting constraint: freeze the first quarter of the
/// model's tensor to the bits of a topology the model itself sampled
/// (the "extend this pattern" workload), plus rule-derived guidance.
fn quarter_freeze(service: &PatternService, spec: &RequestSpec) -> (Conditioning, Vec<bool>) {
    let model = service.model();
    let entries = model.channels() * model.side() * model.side();
    let donor_spec = RequestSpec {
        count: 1,
        ..spec.clone()
    }
    .seed(SEED ^ 0xABCD);
    let (topologies, _) = service.sample_topologies(&donor_spec).unwrap();
    let base = DeepSquishTensor::fold(&topologies[0], model.channels()).unwrap();
    let mask: Vec<bool> = (0..entries).map(|i| i < entries / 4).collect();
    let bits = base.bits().to_vec();
    let cond = Conditioning::none()
        .with_frozen(FrozenRegion::new(mask.clone(), bits.clone()).unwrap())
        .with_avoid(hotspot_guidance(&spec.rules));
    (cond, mask)
}

#[test]
fn conditioned_requests_are_deterministic_legal_and_frozen_bit_exact() {
    let (service, spec) = trained_service();
    let (cond, mask) = quarter_freeze(&service, &spec);
    let frozen_bits = cond.frozen().unwrap().bits().to_vec();
    let cond_spec = spec.clone().conditioning(cond);

    let a = service.generate(&cond_spec).unwrap();
    let b = service.generate(&cond_spec).unwrap();
    assert_eq!(
        a.items, b.items,
        "conditioned sampling must be deterministic per (seed, index)"
    );
    assert_eq!(a.report, b.report);
    assert_eq!(a.items.len() + a.report.shortfall, COUNT);

    let channels = service.model().channels();
    for g in &a.items {
        // Legality is structural: the solver only emits clean patterns,
        // conditioned or not.
        let drc = check_pattern(&g.pattern, &cond_spec.rules);
        assert!(drc.is_clean(), "{:?}", drc.violations());
        // Every frozen entry of every delivered topology carries its
        // target bit — inpainting is exact, not approximate, and the
        // bow-tie repair stage is not allowed to undo it.
        let tensor = DeepSquishTensor::fold(g.pattern.topology(), channels).unwrap();
        for (i, (&frozen, &want)) in mask.iter().zip(&frozen_bits).enumerate() {
            if frozen {
                assert_eq!(tensor.bits()[i], want, "frozen entry {i} diverged");
            }
        }
    }
}

#[test]
fn exact_output_is_isolated_from_concurrent_conditioned_load() {
    let (service, spec) = trained_service();
    let (cond, _) = quarter_freeze(&service, &spec);
    let cond_spec = RequestSpec {
        count: 12,
        ..spec.clone()
    }
    .seed(SEED ^ 0x5A5A)
    .conditioning(cond);

    // Unconditioned baseline, alone on the engine.
    let solo = service.generate(&spec).unwrap();

    // The same unconditioned request while a bigger conditioned request
    // floods the pool: the conditioning hash keys the micro-batch plan,
    // so the exact lanes never share a lock-step batch with conditioned
    // ones and the output cannot move by a single bit.
    let busy = service.submit(&cond_spec).unwrap();
    let under_load = service.generate(&spec).unwrap();
    let _ = busy.wait().unwrap();
    assert_eq!(
        solo.items, under_load.items,
        "unconditioned output must not depend on concurrent conditioned load"
    );
    assert_eq!(solo.report, under_load.report);
}

#[test]
fn submit_rejects_a_frozen_region_of_the_wrong_shape() {
    let (service, spec) = trained_service();
    let model = service.model();
    let entries = model.channels() * model.side() * model.side();
    let wrong = entries / 2 + 1;
    let bad = spec.clone().conditioning(
        Conditioning::none()
            .with_frozen(FrozenRegion::new(vec![true; wrong], vec![false; wrong]).unwrap()),
    );
    match service.submit(&bad) {
        Err(ConfigError::ConditioningShape { expected, mask }) => {
            assert_eq!(expected, entries);
            assert_eq!(mask, wrong);
        }
        other => panic!("expected ConditioningShape, got {other:?}"),
    }
}
