//! Finding and report types, with human-readable and JSON rendering.
//!
//! Both renderings are fully deterministic: findings are sorted by
//! (file, line, column, rule) and the JSON writer emits keys in a
//! fixed order with no timestamps, so golden files and CI artifacts
//! are byte-stable across runs and machines.

use std::fmt::Write as _;

/// One rule violation (or directive-hygiene problem) at a source site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule's id (kebab-case, from the registry).
    pub rule: &'static str,
    /// Normalized root-relative path of the file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in chars).
    pub column: usize,
    /// The trimmed source line, capped at 120 chars.
    pub snippet: String,
    /// Why this site violates the contract and what to do instead.
    pub message: String,
}

/// The result of analyzing a tree: every finding, plus scan stats.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of `.rs` files lexed and analyzed.
    pub files_scanned: usize,
    /// All findings across the tree.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Sorts findings into the canonical (file, line, column, rule) order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.column, a.rule).cmp(&(&b.file, b.line, b.column, b.rule))
        });
    }

    /// Whether the tree passed with zero findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the compiler-style human report, ending with a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.column, f.rule, f.message
            );
            if !f.snippet.is_empty() {
                let _ = writeln!(out, "    {} | {}", f.line, f.snippet);
            }
        }
        let _ = if self.is_clean() {
            writeln!(out, "dp_lint: clean ({} files scanned)", self.files_scanned)
        } else {
            writeln!(
                out,
                "dp_lint: {} finding(s) in {} files scanned",
                self.findings.len(),
                self.files_scanned
            )
        };
        out
    }

    /// Renders the machine-readable report: stable key order, 2-space
    /// indent, trailing newline. Suitable for golden files.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"tool\": \"dp_lint\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"findings_total\": {},", self.findings.len());
        if self.findings.is_empty() {
            out.push_str("  \"findings\": []\n");
        } else {
            out.push_str("  \"findings\": [\n");
            for (i, f) in self.findings.iter().enumerate() {
                out.push_str("    {\n");
                let _ = writeln!(out, "      \"rule\": \"{}\",", json_escape(f.rule));
                let _ = writeln!(out, "      \"file\": \"{}\",", json_escape(&f.file));
                let _ = writeln!(out, "      \"line\": {},", f.line);
                let _ = writeln!(out, "      \"column\": {},", f.column);
                let _ = writeln!(out, "      \"snippet\": \"{}\",", json_escape(&f.snippet));
                let _ = writeln!(out, "      \"message\": \"{}\"", json_escape(&f.message));
                let comma = if i + 1 < self.findings.len() { "," } else { "" };
                let _ = writeln!(out, "    }}{comma}");
            }
            out.push_str("  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize, column: usize, rule: &'static str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            column,
            snippet: "let x = 1;".to_string(),
            message: "msg".to_string(),
        }
    }

    #[test]
    fn sort_is_by_file_line_column_rule() {
        let mut r = Report {
            files_scanned: 2,
            findings: vec![
                finding("b.rs", 1, 1, "rng-discipline"),
                finding("a.rs", 9, 1, "rng-discipline"),
                finding("a.rs", 2, 5, "unordered-iteration"),
                finding("a.rs", 2, 5, "nondeterministic-time"),
            ],
        };
        r.sort();
        let order: Vec<(&str, usize, &str)> = r
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.line, f.rule))
            .collect();
        assert_eq!(
            order,
            [
                ("a.rs", 2, "nondeterministic-time"),
                ("a.rs", 2, "unordered-iteration"),
                ("a.rs", 9, "rng-discipline"),
                ("b.rs", 1, "rng-discipline"),
            ]
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut f = finding("a.rs", 1, 1, "invalid-directive");
        f.snippet = "say \"hi\"\\".to_string();
        let r = Report {
            files_scanned: 1,
            findings: vec![f],
        };
        let json = r.to_json();
        assert!(
            json.contains("\"snippet\": \"say \\\"hi\\\"\\\\\""),
            "{json}"
        );
        assert!(json.ends_with("}\n"));
        let clean = Report {
            files_scanned: 3,
            findings: vec![],
        };
        assert!(clean.to_json().contains("\"findings\": []"));
    }

    #[test]
    fn human_report_has_summary_line() {
        let clean = Report {
            files_scanned: 4,
            findings: vec![],
        };
        assert!(clean.render_human().contains("clean (4 files scanned)"));
        let dirty = Report {
            files_scanned: 4,
            findings: vec![finding("a.rs", 1, 1, "rng-discipline")],
        };
        let text = dirty.render_human();
        assert!(text.contains("a.rs:1:1: [rng-discipline] msg"), "{text}");
        assert!(text.contains("1 finding(s) in 4 files"), "{text}");
    }
}
