//! A string- and comment-aware lexer for Rust source.
//!
//! This is not a full Rust lexer — it recognises exactly the token
//! shapes the rule engine needs to match code *without* being fooled by
//! comments, string literals, char literals or lifetimes:
//!
//! * line and (nested) block comments, with doc-comment flagging;
//! * plain, raw, byte and byte-raw string literals (`"…"`, `r#"…"#`,
//!   `b"…"`, `br#"…"#`);
//! * char and byte literals vs lifetimes (`'a'` vs `'a`);
//! * identifiers (including `r#raw` identifiers), numbers, and
//!   single-character punctuation.
//!
//! Every token carries its byte span into the source. The invariant the
//! property tests pin: spans are strictly increasing, non-overlapping,
//! land on `char` boundaries, and the bytes between consecutive tokens
//! are whitespace only — so the token stream plus the gaps reconstructs
//! the file byte-for-byte. Unterminated literals and comments extend to
//! end of input instead of panicking: the lexer must survive arbitrary
//! bytes, because it runs on files a rule author has never seen.

/// What kind of token a span is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`foo`, `as`, `r#match`).
    Ident,
    /// A numeric literal (integer or float, any base).
    Number,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// A char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime: `'a`, `'static`.
    Lifetime,
    /// A `//` comment. `doc` is true for `///` and `//!` forms.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// A `/* … */` comment (nesting-aware). `doc` is true for `/**` and
    /// `/*!` forms.
    BlockComment {
        /// Whether this is a doc comment (`/**` or `/*!`).
        doc: bool,
    },
    /// A single punctuation character (everything else).
    Punct(char),
}

/// One lexed token: a [`TokenKind`] plus its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within its source file.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// Whether the token is any comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }
}

/// Lexes `src` into a token stream. Never panics; any byte sequence
/// produces a valid (possibly degenerate) stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
                continue;
            }
            let start = self.pos;
            let kind = self.next_kind(b);
            debug_assert!(self.pos > start, "lexer must always make progress");
            out.push(Token {
                kind,
                start,
                end: self.pos,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn next_kind(&mut self, b: u8) -> TokenKind {
        match b {
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' => self.prefixed_or_ident(),
            _ if is_ident_start(b) => self.ident(),
            _ if b.is_ascii_digit() => self.number(),
            _ => self.punct(),
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        // `///` (but not `////`) and `//!` are doc comments.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some(b'!'), _) => true,
            (Some(b'/'), Some(b'/')) => false,
            (Some(b'/'), _) => true,
            _ => false,
        };
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokenKind::LineComment { doc }
    }

    fn block_comment(&mut self) -> TokenKind {
        // `/**` (but not `/***` or the degenerate `/**/`) and `/*!`.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some(b'!'), _) => true,
            (Some(b'*'), Some(b'*')) => false,
            (Some(b'*'), Some(b'/')) => false,
            (Some(b'*'), _) => true,
            _ => false,
        };
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_char();
            }
        }
        TokenKind::BlockComment { doc }
    }

    /// A `"`-delimited string with `\` escapes; unterminated runs to EOF.
    fn string(&mut self) -> TokenKind {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\\' => {
                    self.pos += 1;
                    self.bump_char();
                }
                _ => self.bump_char(),
            }
        }
        TokenKind::Str
    }

    /// A raw string starting at the current `r`/`b` prefix:
    /// `r"…"`, `r#"…"#`, `br##"…"##`. The caller has verified the shape.
    fn raw_string(&mut self) {
        // Skip the prefix letters.
        while matches!(self.peek(0), Some(b'r') | Some(b'b')) {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        // Opening quote (guaranteed by the caller's lookahead).
        self.pos += 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut close = 0usize;
                while close < hashes && self.peek(1 + close) == Some(b'#') {
                    close += 1;
                }
                if close == hashes {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.bump_char();
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime).
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.pos += 1;
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume the escape, then scan to
                // the closing quote (covers `'\u{1F600}'`).
                self.pos += 1;
                self.bump_char();
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.bump_char();
                }
                self.pos = (self.pos + 1).min(self.bytes.len());
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char, `'a` / `'static` are lifetimes.
                let mut ahead = 1;
                while self.peek(ahead).is_some_and(is_ident_continue) {
                    ahead += 1;
                }
                if self.peek(ahead) == Some(b'\'') {
                    self.pos += ahead + 1;
                    TokenKind::Char
                } else {
                    self.pos += ahead;
                    TokenKind::Lifetime
                }
            }
            Some(_) => {
                // `'%'` and friends: one char then the closing quote.
                self.bump_char();
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
                TokenKind::Char
            }
            None => TokenKind::Char,
        }
    }

    /// `r`/`b` can open a raw string, byte string, byte char, raw
    /// identifier — or just be the first letter of an identifier.
    fn prefixed_or_ident(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        // b"…"  b'…'  br"…"  br#"…"
        if b == b'b' {
            match self.peek(1) {
                Some(b'"') => {
                    self.pos += 1;
                    return self.string();
                }
                Some(b'\'') => {
                    self.pos += 1;
                    self.pos += 1;
                    // Byte literal: escape or single byte, then `'`.
                    if self.peek(0) == Some(b'\\') {
                        self.pos += 1;
                        self.bump_char();
                        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                            self.bump_char();
                        }
                        self.pos = (self.pos + 1).min(self.bytes.len());
                    } else {
                        self.bump_char();
                        if self.peek(0) == Some(b'\'') {
                            self.pos += 1;
                        }
                    }
                    return TokenKind::Char;
                }
                Some(b'r') if self.raw_follows(2) => {
                    self.raw_string();
                    return TokenKind::Str;
                }
                _ => {}
            }
        }
        // r"…"  r#"…"#  r#ident
        if b == b'r' {
            if self.raw_follows(1) {
                self.raw_string();
                return TokenKind::Str;
            }
            if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) {
                // Raw identifier: `r#match`.
                self.pos += 2;
                return self.ident();
            }
        }
        self.ident()
    }

    /// Whether `#*"` follows at `self.pos + at` (a raw-string opener).
    fn raw_follows(&self, at: usize) -> bool {
        let mut ahead = at;
        while self.peek(ahead) == Some(b'#') {
            ahead += 1;
        }
        self.peek(ahead) == Some(b'"')
    }

    fn ident(&mut self) -> TokenKind {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        let mut seen_dot = false;
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_alphanumeric() || c == b'_' => self.pos += 1,
                // `1.5` continues the number; `1..3` does not.
                Some(b'.') if !seen_dot && self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                    seen_dot = true;
                    self.pos += 1;
                }
                // `1e+3` / `1e-3` exponent signs.
                Some(b'+') | Some(b'-')
                    if matches!(self.bytes.get(self.pos - 1), Some(b'e') | Some(b'E')) =>
                {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        TokenKind::Number
    }

    fn punct(&mut self) -> TokenKind {
        let c = self.src[self.pos..].chars().next().unwrap_or('\u{FFFD}');
        self.pos += c.len_utf8();
        TokenKind::Punct(c)
    }

    /// Advances by one full `char` (UTF-8 aware), at least one byte.
    fn bump_char(&mut self) {
        if self.pos >= self.bytes.len() {
            return;
        }
        self.pos += 1;
        while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
            self.pos += 1;
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = r#"let x = "a // not a comment"; // real /* still line */
/* block /* nested */ end */ y"#;
        let toks = kinds(src);
        assert_eq!(toks[3], (TokenKind::Str, "\"a // not a comment\""));
        assert!(matches!(toks[5].0, TokenKind::LineComment { doc: false }));
        assert_eq!(toks[6].1, "/* block /* nested */ end */");
        assert_eq!(toks[7], (TokenKind::Ident, "y"));
    }

    #[test]
    fn doc_comments_are_flagged() {
        let src = "/// doc\n//! inner\n// plain\n//// not doc\n/** block doc */\n/*! inner block */\n/* plain block */";
        let flags: Vec<bool> = lex(src)
            .iter()
            .map(|t| match t.kind {
                TokenKind::LineComment { doc } | TokenKind::BlockComment { doc } => doc,
                _ => unreachable!("only comments in input"),
            })
            .collect();
        assert_eq!(flags, [true, true, false, false, true, true, false]);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let src = r###"r#"has "quotes" and // slashes"# tail"###;
        let toks = kinds(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1], (TokenKind::Ident, "tail"));
        let src2 = "br\"bytes\" b\"more\" b'x' r#ident";
        let toks2 = kinds(src2);
        assert_eq!(toks2[0].0, TokenKind::Str);
        assert_eq!(toks2[1].0, TokenKind::Str);
        assert_eq!(toks2[2].0, TokenKind::Char);
        assert_eq!(toks2[3], (TokenKind::Ident, "r#ident"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "&'a str; 'x'; '\\n'; '\\u{1F600}'; 'static";
        let got: Vec<TokenKind> = lex(src)
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Lifetime | TokenKind::Char))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            got,
            [
                TokenKind::Lifetime,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Lifetime
            ]
        );
    }

    #[test]
    fn numbers_do_not_eat_range_operators() {
        let src = "0..10 1.5 1e-3 0xFF_u32";
        let toks = kinds(src);
        assert_eq!(toks[0], (TokenKind::Number, "0"));
        assert_eq!(toks[1].1, ".");
        assert_eq!(toks[2].1, ".");
        assert_eq!(toks[3], (TokenKind::Number, "10"));
        assert_eq!(toks[4], (TokenKind::Number, "1.5"));
        assert_eq!(toks[5], (TokenKind::Number, "1e-3"));
        assert_eq!(toks[6], (TokenKind::Number, "0xFF_u32"));
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panicking() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b'", "b\"open"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }

    #[test]
    fn spans_cover_all_non_whitespace() {
        let src = "fn f(x: &str) -> usize { x.len() } // done";
        let toks = lex(src);
        let mut reconstructed = vec![b' '; src.len()];
        for t in &toks {
            reconstructed[t.start..t.end].copy_from_slice(&src.as_bytes()[t.start..t.end]);
        }
        assert_eq!(String::from_utf8(reconstructed).as_deref(), Ok(src));
    }
}
