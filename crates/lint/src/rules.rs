//! Rule registry: ids, scopes, and the token-level matchers.
//!
//! Each rule is a lexical pattern plus a *path scope* — the set of
//! workspace files where the pattern is a contract violation rather
//! than ordinary code. Scopes are prefix matches on the normalized
//! (forward-slash, root-relative) path; an empty include list means
//! "every walked file". The matchers run on the comment-free token
//! stream, so strings, comments and doc examples can never trigger
//! them; suppression is per-line via `// dp-lint: allow(<rule>): <why>`
//! directives (see [`crate::directives`]).

use crate::lexer::{Token, TokenKind};

/// The synthetic rule id for directive-hygiene findings (unknown rule
/// name, missing reason, unused allow). Never suppressible.
pub const INVALID_DIRECTIVE: &str = "invalid-directive";

/// One rule's identity and scope.
#[derive(Debug, Clone, Copy)]
pub struct RuleDef {
    /// Stable kebab-case id, used in reports and allow directives.
    pub id: &'static str,
    /// One-line description for `--list-rules` and the README table.
    pub summary: &'static str,
    /// Path prefixes the rule applies to (empty = all walked files).
    pub include: &'static [&'static str],
    /// Path prefixes exempt from the rule.
    pub exclude: &'static [&'static str],
}

/// Every rule the engine knows, in report order.
pub const RULES: &[RuleDef] = &[
    RuleDef {
        id: "nondeterministic-time",
        summary: "Instant::now / SystemTime::now outside the serving/bench allowlist breaks \
                  same-seed-same-bytes reproducibility",
        include: &[],
        exclude: &[
            // Deadlines and latency histograms are the serving tier's job.
            "crates/serve/",
            // Benches and the table2 efficiency harness measure time by design.
            "crates/bench/",
            "crates/core/src/table2.rs",
            // The criterion shim is a timing harness.
            "shims/",
        ],
    },
    RuleDef {
        id: "unordered-iteration",
        summary: "HashMap/HashSet in output-producing crates: iteration order can reach bytes \
                  on disk or the wire — use BTreeMap/BTreeSet or an explicit sort",
        include: &[
            "crates/library/src/",
            "crates/serve/src/",
            "crates/core/src/",
        ],
        exclude: &[],
    },
    RuleDef {
        id: "panic-in-serving-tier",
        summary: "unwrap/expect/panic!/unreachable!/todo!/unimplemented! in the serving tier: \
                  one hostile request must not take down a worker",
        include: &[
            "crates/serve/src/",
            "crates/core/src/engine.rs",
            "crates/core/src/service.rs",
        ],
        exclude: &[],
    },
    RuleDef {
        id: "rng-discipline",
        summary: "RNG construction/seeding in generation paths outside the sanctioned \
                  splitmix64 lane-derivation helper breaks the bit-exact contract",
        include: &[
            "crates/core/src/engine.rs",
            "crates/core/src/service.rs",
            "crates/core/src/session.rs",
            "crates/core/src/source.rs",
            "crates/diffusion/src/",
        ],
        exclude: &[],
    },
    RuleDef {
        id: "truncating-cast-in-codec",
        summary: "bare `as` integer cast in wire/storage codecs: silent truncation corrupts \
                  frames — use From/TryFrom with typed errors",
        include: &[
            "crates/serve/src/json.rs",
            "crates/serve/src/proto.rs",
            "crates/serve/src/http.rs",
            "crates/library/src/codec.rs",
        ],
        exclude: &[],
    },
    RuleDef {
        id: "zero-alloc-region",
        summary: "heap allocation inside a `// dp-lint: zero-alloc` region — the static \
                  complement of the counting-allocator steady-state tests",
        include: &[],
        exclude: &[],
    },
    RuleDef {
        id: INVALID_DIRECTIVE,
        summary: "malformed dp-lint directive: unknown rule name, allow without a reason, or \
                  an allow that suppresses nothing",
        include: &[],
        exclude: &[],
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleDef> {
    RULES.iter().find(|r| r.id == id)
}

/// Whether `path` (normalized, root-relative) is in a rule's scope.
pub fn in_scope(def: &RuleDef, path: &str) -> bool {
    let included = def.include.is_empty() || def.include.iter().any(|p| path.starts_with(p));
    included && !def.exclude.iter().any(|p| path.starts_with(p))
}

/// A rule hit before allow-filtering: the rule id, the byte offset it
/// anchors to, and the message.
#[derive(Debug, Clone)]
pub struct Match {
    /// The violated rule's id.
    pub rule: &'static str,
    /// Byte offset of the offending token.
    pub offset: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Integer types an `as` cast can narrow to (or between).
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// RNG constructors/seeders the discipline rule watches for.
const RNG_CONSTRUCTORS: &[&str] = &[
    "seed_from_u64",
    "from_seed",
    "from_entropy",
    "from_rng",
    "thread_rng",
];

/// Method calls that allocate, banned inside zero-alloc regions.
const ALLOC_METHODS: &[&str] = &[
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "with_capacity",
];

/// Runs every scoped rule's matcher over a file's comment-free token
/// stream. `code` must contain no comment tokens; `zero_alloc_regions`
/// are the byte ranges marked by `// dp-lint: zero-alloc` directives.
pub fn run_matchers(
    path: &str,
    src: &str,
    code: &[Token],
    zero_alloc_regions: &[(usize, usize)],
) -> Vec<Match> {
    let mut out = Vec::new();
    let ident = |i: usize| -> Option<&str> {
        code.get(i)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
    };
    let punct =
        |i: usize, c: char| -> bool { code.get(i).is_some_and(|t| t.kind == TokenKind::Punct(c)) };
    let scoped = |id: &str| rule(id).is_some_and(|def| in_scope(def, path));

    let time = scoped("nondeterministic-time");
    let unordered = scoped("unordered-iteration");
    let panic_free = scoped("panic-in-serving-tier");
    let rng = scoped("rng-discipline");
    let cast = scoped("truncating-cast-in-codec");

    for i in 0..code.len() {
        let Some(name) = ident(i) else { continue };
        let at = code[i].start;

        if time
            && name == "now"
            && punct(i.wrapping_sub(1), ':')
            && punct(i.wrapping_sub(2), ':')
            && i >= 3
            && matches!(ident(i - 3), Some("Instant") | Some("SystemTime"))
        {
            out.push(Match {
                rule: "nondeterministic-time",
                offset: code[i - 3].start,
                message: format!(
                    "`{}::now` outside the timing allowlist: wall-clock reads make output \
                     depend on when it ran, not just the seed",
                    ident(i - 3).unwrap_or("?")
                ),
            });
        }

        if unordered && (name == "HashMap" || name == "HashSet") {
            out.push(Match {
                rule: "unordered-iteration",
                offset: at,
                message: format!(
                    "`{name}` in an output-producing crate: iteration order is randomized per \
                     process and can reach bytes on disk or the wire — use the BTree \
                     equivalent, or sort before iterating and allow with a reason"
                ),
            });
        }

        if panic_free {
            let method_call = i >= 1 && punct(i - 1, '.') && punct(i + 1, '(');
            if method_call && (name == "unwrap" || name == "expect") {
                out.push(Match {
                    rule: "panic-in-serving-tier",
                    offset: at,
                    message: format!(
                        "`.{name}(...)` in the serving tier: convert to a typed error \
                         (bad_request / internal) so a hostile request cannot kill a worker"
                    ),
                });
            }
            if punct(i + 1, '!')
                && matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                && !punct(i.wrapping_sub(1), '.')
            {
                out.push(Match {
                    rule: "panic-in-serving-tier",
                    offset: at,
                    message: format!("`{name}!` in the serving tier: return a typed error instead"),
                });
            }
        }

        if rng && RNG_CONSTRUCTORS.contains(&name) {
            out.push(Match {
                rule: "rng-discipline",
                offset: at,
                message: format!(
                    "`{name}` in a generation path: lane RNGs must come from the sanctioned \
                     splitmix64 derivation (`engine::lane_rng`), or output depends on \
                     scheduling instead of (seed, index)"
                ),
            });
        }

        if cast && name == "as" {
            if let Some(target) = ident(i + 1) {
                if INT_TYPES.contains(&target) {
                    out.push(Match {
                        rule: "truncating-cast-in-codec",
                        offset: at,
                        message: format!(
                            "bare `as {target}` in a codec: silent truncation corrupts frames — \
                             use `{target}::from`/`{target}::try_from` with a typed error (or a \
                             masked helper carrying an allow directive)"
                        ),
                    });
                }
            }
        }
    }

    for &(start, end) in zero_alloc_regions {
        let in_region = |t: &Token| t.start >= start && t.end <= end;
        for (i, tok) in code.iter().enumerate() {
            if !in_region(tok) {
                continue;
            }
            let Some(name) = ident(i) else { continue };
            let hit = (punct(i + 1, '!') && (name == "vec" || name == "format"))
                || (i >= 1
                    && punct(i - 1, '.')
                    && punct(i + 1, '(')
                    && ALLOC_METHODS.contains(&name))
                || (punct(i + 1, ':')
                    && punct(i + 2, ':')
                    && matches!(name, "Vec" | "String" | "Box")
                    && matches!(
                        ident(i + 3),
                        Some("new") | Some("with_capacity") | Some("from")
                    ));
            if hit {
                out.push(Match {
                    rule: "zero-alloc-region",
                    offset: code[i].start,
                    message: format!(
                        "`{name}` allocates inside a `dp-lint: zero-alloc` region — this loop \
                         is pinned allocation-free by the counting-allocator tests"
                    ),
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn matches_in(path: &str, src: &str) -> Vec<&'static str> {
        let toks: Vec<_> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        run_matchers(path, src, &toks, &[])
            .into_iter()
            .map(|m| m.rule)
            .collect()
    }

    #[test]
    fn time_rule_respects_scope_and_strings() {
        let src = "let t = Instant::now(); let s = \"Instant::now()\";";
        assert_eq!(
            matches_in("crates/core/src/engine.rs", src),
            ["nondeterministic-time"]
        );
        // Serve and bench are allowlisted.
        assert!(matches_in("crates/serve/src/server.rs", src).is_empty());
        assert!(matches_in("crates/bench/src/lib.rs", src).is_empty());
        assert!(matches_in("crates/core/src/table2.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_does_not_match_unwrap_or_variants() {
        let path = "crates/serve/src/proto.rs";
        assert!(matches_in(
            path,
            "x.unwrap_or(0); x.unwrap_or_else(f); x.unwrap_or_default();"
        )
        .is_empty());
        assert_eq!(matches_in(path, "x.unwrap();"), ["panic-in-serving-tier"]);
        assert_eq!(
            matches_in(path, "x.expect(\"boom\");"),
            ["panic-in-serving-tier"]
        );
        // A *method named* expect being defined is not a call on a value.
        assert!(matches_in(path, "fn expect(&mut self) {}").is_empty());
        assert_eq!(
            matches_in(path, "unreachable!()"),
            ["panic-in-serving-tier"]
        );
        // Out of scope: the library crate may panic on internal invariants.
        assert!(matches_in("crates/library/src/store.rs", "x.unwrap();").is_empty());
    }

    #[test]
    fn cast_rule_only_fires_on_integer_targets_in_codecs() {
        let path = "crates/serve/src/proto.rs";
        assert_eq!(
            matches_in(path, "let x = y as u8;"),
            ["truncating-cast-in-codec"]
        );
        assert!(matches_in(path, "let x = y as f64; let c = b as char;").is_empty());
        assert!(matches_in(path, "use std::io::Read as ReadExt;").is_empty());
        assert!(matches_in("crates/serve/src/server.rs", "let x = y as u8;").is_empty());
    }

    #[test]
    fn rng_rule_names_the_sanctioned_helper() {
        let got = run_matchers(
            "crates/core/src/engine.rs",
            "StdRng::seed_from_u64(seed)",
            &lex("StdRng::seed_from_u64(seed)"),
            &[],
        );
        assert_eq!(got.len(), 1);
        assert!(got[0].message.contains("lane_rng"));
    }

    #[test]
    fn zero_alloc_region_bounds_are_respected() {
        let src = "fn f() { let a = x.clone(); } fn g() { let b = y.clone(); }";
        let toks: Vec<_> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        let region_end = src.find('}').unwrap() + 1;
        let got = run_matchers("crates/nn/src/x.rs", src, &toks, &[(0, region_end)]);
        assert_eq!(got.len(), 1, "only the first clone is inside the region");
        assert!(got[0].offset < region_end);
    }
}
