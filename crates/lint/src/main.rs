//! The `dp_lint` command-line front end.
//!
//! ```text
//! cargo run -p dp_lint -- --workspace [--root DIR] [--json PATH]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use dp_lint::engine::analyze_tree;
use dp_lint::rules::RULES;

const USAGE: &str = "\
dp_lint: static analysis for the workspace's determinism, panic-freedom \
and codec-safety contracts

USAGE:
    dp_lint --workspace [--root DIR] [--json PATH]
    dp_lint --list-rules

OPTIONS:
    --workspace      analyze every .rs file under the root (default: cwd)
    --root DIR       analyze DIR instead of the current directory
    --json PATH      additionally write the machine-readable report to PATH
    --list-rules     print the rule registry and exit
    --help           print this help

EXIT CODES:
    0  clean    1  findings    2  usage or I/O error
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root requires a directory"),
            },
            "--json" => match args.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => return usage_error("--json requires a path"),
            },
            "--list-rules" => {
                for rule in RULES {
                    println!("{:<26} {}", rule.id, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if !workspace {
        return usage_error("pass --workspace to analyze (or --list-rules / --help)");
    }

    let report = match analyze_tree(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("dp_lint: error analyzing {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("dp_lint: error writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    print!("{}", report.render_human());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("dp_lint: {message}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
