//! Parsing of inline `dp-lint` control comments.
//!
//! Two directives exist, both only recognized in *non-doc* comments
//! (doc comments may quote the syntax freely without side effects):
//!
//! * `dp-lint: allow(<rule>): <reason>` — suppress `<rule>` on the line
//!   the comment trails, or (for a comment alone on its line) on the
//!   line of the next code token. The reason is mandatory: an allow
//!   without one is itself an `invalid-directive` finding and does not
//!   suppress anything.
//! * `dp-lint: zero-alloc` — marks the next block (`{ ... }`) as an
//!   allocation-free region checked by the `zero-alloc-region` rule.
//!
//! This module is the pure text-level parser; placement (which line an
//! allow targets, which braces bound a region) lives in [`crate::engine`].

use crate::rules;

/// The meaning of one `dp-lint` comment, before placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// A well-formed `allow(<rule>): <reason>`.
    Allow {
        /// The rule being suppressed (validated against the registry).
        rule: &'static str,
    },
    /// A `zero-alloc` region marker.
    ZeroAlloc,
    /// A malformed directive; the message becomes an unsuppressible
    /// `invalid-directive` finding.
    Invalid {
        /// What is wrong with it.
        message: String,
    },
}

/// Parses one comment's full text. Returns `None` when the comment is
/// not a directive at all (no `dp-lint` marker).
pub fn parse_comment(text: &str) -> Option<DirectiveKind> {
    let at = text.find("dp-lint")?;
    let mut rest = &text[at + "dp-lint".len()..];
    // Block comments carry their closing delimiter in the token text.
    if let Some(stripped) = rest.strip_suffix("*/") {
        rest = stripped;
    }
    let rest = rest.trim_start();
    let Some(body) = rest.strip_prefix(':') else {
        return Some(DirectiveKind::Invalid {
            message: "missing `:` after `dp-lint` — write `dp-lint: allow(<rule>): <reason>` \
                      or `dp-lint: zero-alloc`"
                .to_string(),
        });
    };
    let body = body.trim();

    if let Some(after) = body.strip_prefix("allow") {
        return Some(parse_allow(after.trim_start()));
    }
    if body == "zero-alloc" {
        return Some(DirectiveKind::ZeroAlloc);
    }
    let word = body
        .split(|c: char| c.is_whitespace() || c == '(' || c == ':')
        .next()
        .unwrap_or("");
    Some(DirectiveKind::Invalid {
        message: format!(
            "unknown dp-lint directive `{word}` — supported: `allow(<rule>): <reason>`, \
             `zero-alloc`"
        ),
    })
}

fn parse_allow(s: &str) -> DirectiveKind {
    let Some(open) = s.strip_prefix('(') else {
        return DirectiveKind::Invalid {
            message: "malformed allow — write `dp-lint: allow(<rule>): <reason>`".to_string(),
        };
    };
    let Some(close) = open.find(')') else {
        return DirectiveKind::Invalid {
            message: "malformed allow: missing `)`".to_string(),
        };
    };
    let name = open[..close].trim();
    let Some(def) = rules::rule(name) else {
        let known: Vec<&str> = rules::RULES
            .iter()
            .map(|r| r.id)
            .filter(|id| *id != rules::INVALID_DIRECTIVE)
            .collect();
        return DirectiveKind::Invalid {
            message: format!(
                "unknown rule `{name}` in allow directive — known rules: {}",
                known.join(", ")
            ),
        };
    };
    if def.id == rules::INVALID_DIRECTIVE {
        return DirectiveKind::Invalid {
            message: "`invalid-directive` findings cannot be suppressed".to_string(),
        };
    }
    let tail = open[close + 1..].trim_start();
    let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        return DirectiveKind::Invalid {
            message: format!(
                "allow({}) without a reason — write `dp-lint: allow({}): <why this site is \
                 exempt>`",
                def.id, def.id
            ),
        };
    }
    DirectiveKind::Allow { rule: def.id }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_with_reason_parses() {
        let text = "// dp-lint: allow(nondeterministic-time): deadline math, not output";
        assert_eq!(
            parse_comment(text),
            Some(DirectiveKind::Allow {
                rule: "nondeterministic-time"
            })
        );
    }

    #[test]
    fn allow_without_reason_is_invalid() {
        for text in [
            "// dp-lint: allow(nondeterministic-time)",
            "// dp-lint: allow(nondeterministic-time):",
            "// dp-lint: allow(nondeterministic-time):   ",
        ] {
            match parse_comment(text) {
                Some(DirectiveKind::Invalid { message }) => {
                    assert!(message.contains("without a reason"), "{message}");
                }
                other => panic!("expected Invalid for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_rule_is_rejected_and_lists_known_rules() {
        match parse_comment("// dp-lint: allow(no-such-rule): whatever") {
            Some(DirectiveKind::Invalid { message }) => {
                assert!(message.contains("unknown rule `no-such-rule`"), "{message}");
                assert!(message.contains("zero-alloc-region"), "{message}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn invalid_directive_rule_cannot_be_allowed() {
        match parse_comment("// dp-lint: allow(invalid-directive): nice try") {
            Some(DirectiveKind::Invalid { message }) => {
                assert!(message.contains("cannot be suppressed"), "{message}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn zero_alloc_and_block_comment_forms() {
        assert_eq!(
            parse_comment("// dp-lint: zero-alloc"),
            Some(DirectiveKind::ZeroAlloc)
        );
        assert_eq!(
            parse_comment("/* dp-lint: zero-alloc */"),
            Some(DirectiveKind::ZeroAlloc)
        );
        assert_eq!(
            parse_comment("/* dp-lint: allow(unordered-iteration): sorted before emit */"),
            Some(DirectiveKind::Allow {
                rule: "unordered-iteration"
            })
        );
    }

    #[test]
    fn non_directives_and_typos_are_handled() {
        assert_eq!(parse_comment("// ordinary comment"), None);
        assert!(matches!(
            parse_comment("// dp-lint allow(rng-discipline): forgot the colon"),
            Some(DirectiveKind::Invalid { .. })
        ));
        assert!(matches!(
            parse_comment("// dp-lint: forbid(everything)"),
            Some(DirectiveKind::Invalid { .. })
        ));
    }
}
