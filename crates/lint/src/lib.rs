//! `dp_lint` — registry-free static analysis for this workspace's
//! determinism, panic-freedom, and codec-safety contracts.
//!
//! The repo's value is its bit-exact contract: same seed, same bytes,
//! across batch widths, thread counts, precision lanes, and the wire.
//! The test suites check that contract *dynamically*; this crate checks
//! it *statically*, so a violation fails CI at the source line that
//! introduced it instead of whenever a test happens to notice. With no
//! registry access, the analyzer is hand-rolled the same way as the
//! `rand`/`proptest`/`criterion` shims: a string/comment-aware lexer
//! ([`lexer`]), a directive parser ([`directives`]), a rule registry
//! with path scoping ([`rules`]), and a per-file engine plus workspace
//! walker ([`engine`]) that emits deterministic human and JSON reports
//! ([`report`]).
//!
//! # Rules
//!
//! | rule | contract it guards |
//! |------|--------------------|
//! | `nondeterministic-time` | no wall-clock reads outside serving/bench timing sites |
//! | `unordered-iteration` | no `HashMap`/`HashSet` where order can reach disk or wire |
//! | `panic-in-serving-tier` | no `unwrap`/`expect`/`panic!` family in request paths |
//! | `rng-discipline` | lane RNGs only via the sanctioned splitmix64 derivation |
//! | `truncating-cast-in-codec` | no bare `as` integer casts in wire/storage codecs |
//! | `zero-alloc-region` | no heap allocation in `dp-lint: zero-alloc` blocks |
//! | `invalid-directive` | directive hygiene (unsuppressible) |
//!
//! # Directives
//!
//! Suppression is inline, per-line, and must carry a reason:
//!
//! ```text
//! let m = HashMap::new(); // dp-lint: allow(unordered-iteration): keyed lookup, never iterated
//! ```
//!
//! A standalone directive comment applies to the next code line. An
//! allow without a reason, with an unknown rule name, or that
//! suppresses nothing is itself a finding — so exemptions stay
//! documented and stale ones cannot accumulate. `#[cfg(test)]` items
//! and `tests/`/`benches/`/`examples/` trees are skipped entirely.
//!
//! # Adding a rule
//!
//! Add a [`rules::RuleDef`] to [`rules::RULES`] (id, summary, path
//! scope), extend [`rules::run_matchers`] with the token pattern, add a
//! `bad`/`good` fixture pair under `tests/fixtures/`, and regenerate
//! the golden JSON. The rule id is immediately valid in allow
//! directives; nothing else needs registering.

pub mod directives;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{analyze_source, analyze_tree};
pub use report::{Finding, Report};
