//! The per-file analysis pipeline and the workspace walker.
//!
//! For each `.rs` file the engine: lexes it, erases `#[cfg(test)]`
//! items (token-level, so test modules can use `HashMap` and `unwrap`
//! freely), parses `dp-lint` directives out of the remaining non-doc
//! comments, runs every in-scope rule matcher over the comment-free
//! token stream, and then applies allow directives line-by-line. An
//! allow that suppresses nothing is itself a finding, so stale
//! exemptions cannot accumulate.
//!
//! The walker skips `tests/`, `benches/`, `examples/`, `fixtures/`,
//! `target/` and `.git/` subtrees entirely: the contracts bind shipped
//! library and binary code, not test harnesses.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::directives::{parse_comment, DirectiveKind};
use crate::lexer::{lex, Token, TokenKind};
use crate::report::{Finding, Report};
use crate::rules::{self, INVALID_DIRECTIVE};

/// Directory names whose subtrees are never analyzed.
const SKIP_DIRS: &[&str] = &["target", ".git", "tests", "benches", "examples", "fixtures"];

/// Byte-offset → line/column mapping for one file.
struct LineIndex {
    /// Byte offset of each line's first byte; `starts[0] == 0`.
    starts: Vec<usize>,
}

impl LineIndex {
    fn new(src: &str) -> Self {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        Self { starts }
    }

    /// 1-based line containing `offset`.
    fn line_of(&self, offset: usize) -> usize {
        self.starts.partition_point(|&s| s <= offset)
    }

    /// 1-based (line, column); column counts chars, not bytes.
    fn line_col(&self, src: &str, offset: usize) -> (usize, usize) {
        let line = self.line_of(offset);
        let start = self.starts[line - 1];
        let col = src
            .get(start..offset)
            .map_or(1, |prefix| prefix.chars().count() + 1);
        (line, col)
    }

    /// The trimmed text of a 1-based line, capped for report snippets.
    fn snippet(&self, src: &str, line: usize) -> String {
        let start = self.starts[line - 1];
        let end = self
            .starts
            .get(line)
            .map_or(src.len(), |&next| next.saturating_sub(1));
        let text = src.get(start..end).unwrap_or("").trim();
        if text.chars().count() > 120 {
            let cut: String = text.chars().take(117).collect();
            format!("{cut}...")
        } else {
            text.to_string()
        }
    }
}

/// One placed allow directive, awaiting a finding to suppress.
struct Allow {
    rule: &'static str,
    /// 1-based line the allow applies to (`usize::MAX` = nothing).
    target_line: usize,
    /// Byte offset of the directive comment, for unused-allow reports.
    offset: usize,
    used: bool,
}

/// Analyzes one file's source. `path` is the normalized, root-relative
/// path used for rule scoping and reporting.
pub fn analyze_source(path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let lines = LineIndex::new(src);

    let code_all: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).copied().collect();
    let test_regions = cfg_test_regions(&code_all, src);
    let hidden = |t: &Token| {
        test_regions
            .iter()
            .any(|&(s, e)| t.start >= s && t.end <= e)
    };
    let code: Vec<Token> = code_all.iter().filter(|t| !hidden(t)).copied().collect();

    let mut findings: Vec<Finding> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    let mut zero_alloc: Vec<(usize, usize)> = Vec::new();

    let emit = |findings: &mut Vec<Finding>, rule: &'static str, offset: usize, message: String| {
        let (line, column) = lines.line_col(src, offset);
        findings.push(Finding {
            rule,
            file: path.to_string(),
            line,
            column,
            snippet: lines.snippet(src, line),
            message,
        });
    };

    for t in &tokens {
        let doc = match t.kind {
            TokenKind::LineComment { doc } | TokenKind::BlockComment { doc } => doc,
            _ => continue,
        };
        if doc || hidden(t) {
            continue;
        }
        let Some(kind) = parse_comment(t.text(src)) else {
            continue;
        };
        match kind {
            DirectiveKind::Invalid { message } => {
                emit(&mut findings, INVALID_DIRECTIVE, t.start, message);
            }
            DirectiveKind::ZeroAlloc => match region_after(&code, t.end) {
                Some(region) => zero_alloc.push(region),
                None => emit(
                    &mut findings,
                    INVALID_DIRECTIVE,
                    t.start,
                    "zero-alloc directive is not followed by a block".to_string(),
                ),
            },
            DirectiveKind::Allow { rule } => {
                let line_start = lines.starts[lines.line_of(t.start) - 1];
                let standalone = src
                    .get(line_start..t.start)
                    .is_some_and(|s| s.trim().is_empty());
                let target_line = if standalone {
                    code.iter()
                        .find(|c| c.start >= t.end)
                        .map_or(usize::MAX, |c| lines.line_of(c.start))
                } else {
                    lines.line_of(t.start)
                };
                allows.push(Allow {
                    rule,
                    target_line,
                    offset: t.start,
                    used: false,
                });
            }
        }
    }

    for m in rules::run_matchers(path, src, &code, &zero_alloc) {
        let line = lines.line_of(m.offset);
        if let Some(allow) = allows
            .iter_mut()
            .find(|a| a.rule == m.rule && a.target_line == line)
        {
            allow.used = true;
            continue;
        }
        emit(&mut findings, m.rule, m.offset, m.message);
    }

    for allow in allows.iter().filter(|a| !a.used) {
        emit(
            &mut findings,
            INVALID_DIRECTIVE,
            allow.offset,
            format!(
                "allow({}) suppresses nothing — remove the stale directive",
                allow.rule
            ),
        );
    }

    findings
}

/// Byte ranges of items behind a `#[cfg(test)]`-style attribute.
///
/// Token-level heuristic: an attribute whose first identifier is `cfg`
/// and which mentions `test` (and not `not`) marks the following item —
/// through any further attributes — as a test region, ending at the
/// first `;` at bracket depth zero or the matching `}` of the item's
/// first block.
fn cfg_test_regions(code: &[Token], src: &str) -> Vec<(usize, usize)> {
    let is_punct = |i: usize, c: char| code.get(i).is_some_and(|t| t.kind == TokenKind::Punct(c));

    // Returns the index of the `]` matching the `[` at `open`.
    let close_bracket = |open: usize| -> Option<usize> {
        let mut depth = 0usize;
        for (j, t) in code.iter().enumerate().skip(open) {
            match t.kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        None
    };

    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(is_punct(i, '#') && is_punct(i + 1, '[')) {
            i += 1;
            continue;
        }
        let Some(close) = close_bracket(i + 1) else {
            break;
        };
        let inner = &code[i + 2..close];
        let inner_ident = |t: &Token| t.kind == TokenKind::Ident;
        let is_test_attr = inner
            .first()
            .is_some_and(|t| inner_ident(t) && t.text(src) == "cfg")
            && inner
                .iter()
                .any(|t| inner_ident(t) && t.text(src) == "test")
            && !inner.iter().any(|t| inner_ident(t) && t.text(src) == "not");
        if !is_test_attr {
            i = close + 1;
            continue;
        }

        // Step over any further attributes on the same item.
        let mut k = close + 1;
        while is_punct(k, '#') && is_punct(k + 1, '[') {
            match close_bracket(k + 1) {
                Some(c) => k = c + 1,
                None => break,
            }
        }
        if k >= code.len() {
            break;
        }

        // The item runs to the first `;` at depth zero, or the `}`
        // closing the first block opened at depth zero.
        let mut depth = 0usize;
        let mut end = code[code.len() - 1].end;
        let mut end_index = code.len();
        for (j, t) in code.iter().enumerate().skip(k) {
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                    depth += 1;
                }
                TokenKind::Punct(')') | TokenKind::Punct(']') => {
                    depth = depth.saturating_sub(1);
                }
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = t.end;
                        end_index = j + 1;
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => {
                    end = t.end;
                    end_index = j + 1;
                    break;
                }
                _ => {}
            }
        }
        // Include the attribute itself in the erased region.
        regions.push((code[i].start, end));
        i = end_index;
    }
    regions
}

/// The byte range of the first `{ ... }` block whose opening brace
/// follows byte offset `after`.
fn region_after(code: &[Token], after: usize) -> Option<(usize, usize)> {
    let open = code
        .iter()
        .position(|t| t.start >= after && t.kind == TokenKind::Punct('{'))?;
    let mut depth = 0usize;
    for t in &code[open..] {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some((code[open].start, t.end));
                }
            }
            _ => {}
        }
    }
    // Unbalanced file: run the region to the last token.
    Some((code[open].start, code.last().map_or(after, |t| t.end)))
}

/// Walks `root` and analyzes every `.rs` file outside the skip list.
/// Findings come back sorted by (file, line, column, rule).
pub fn analyze_tree(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let bytes = fs::read(file)?;
        let src = String::from_utf8_lossy(&bytes);
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(analyze_source(&rel, &src));
    }
    let mut report = Report {
        files_scanned: files.len(),
        findings,
    };
    report.sort();
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_found(path: &str, src: &str) -> Vec<&'static str> {
        analyze_source(path, src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn cfg_test_modules_are_erased() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); z.unwrap(); }\n}\n";
        let got = rules_found("crates/serve/src/proto.rs", src);
        assert_eq!(got, ["panic-in-serving-tier"], "only the live unwrap");
    }

    #[test]
    fn cfg_not_test_is_not_erased() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let got = rules_found("crates/serve/src/proto.rs", src);
        assert_eq!(got, ["panic-in-serving-tier"]);
    }

    #[test]
    fn cfg_test_single_item_and_attr_stacking() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct T { m: HashMap<u8, u8> }\n\
                   struct Live { m: HashSet<u8> }\n";
        let got = rules_found("crates/core/src/scheduler.rs", src);
        assert_eq!(got, ["unordered-iteration"], "only the live HashSet");
    }

    #[test]
    fn trailing_allow_suppresses_same_line_only() {
        let src = "fn f() {\n\
                   let a = HashMap::new(); // dp-lint: allow(unordered-iteration): keyed lookup only, never iterated\n\
                   let b = HashMap::new();\n}\n";
        let got = rules_found("crates/core/src/x.rs", src);
        assert_eq!(got, ["unordered-iteration"], "second line still fires");
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "fn f() {\n\
                   // dp-lint: allow(unordered-iteration): keyed lookup only, never iterated\n\
                   let a = HashMap::new();\n}\n";
        assert!(rules_found("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let src = "// dp-lint: allow(unordered-iteration): stale\nfn f() {}\n";
        let got = analyze_source("crates/core/src/x.rs", src);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "invalid-directive");
        assert!(
            got[0].message.contains("suppresses nothing"),
            "{}",
            got[0].message
        );
    }

    #[test]
    fn doc_comments_do_not_carry_directives() {
        let src = "/// Usage: `// dp-lint: allow(bogus-rule)`\nfn f() {}\n";
        assert!(analyze_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn zero_alloc_region_flags_allocation_in_block() {
        let src = "fn hot(buf: &mut [u8]) {\n\
                   // dp-lint: zero-alloc\n\
                   for b in buf.iter_mut() {\n  let c = owned.clone();\n}\n\
                   let after = tail.to_vec();\n}\n";
        let got = rules_found("crates/nn/src/workspace.rs", src);
        assert_eq!(got, ["zero-alloc-region"], "alloc after the region is fine");
    }

    #[test]
    fn line_and_column_are_one_based_chars() {
        let src = "fn f() {\n    let m = HashMap::new();\n}\n";
        let got = analyze_source("crates/core/src/x.rs", src);
        assert_eq!((got[0].line, got[0].column), (2, 13));
        assert_eq!(got[0].snippet, "let m = HashMap::new();");
    }
}
