//! Property tests for the lexer's span discipline.
//!
//! The contract documented in `dp_lint::lexer`: token spans are
//! strictly increasing, non-overlapping, land on `char` boundaries,
//! and the bytes between consecutive tokens are whitespace only — so
//! the token stream plus the gaps reconstructs the file byte-for-byte.
//! The generator leans on the characters that open lexer modes
//! (quotes, slashes, stars, `r`/`b` prefixes, hashes, backslashes) and
//! multi-byte UTF-8 so unterminated and nested constructs get hit.

use dp_lint::lexer::lex;
use proptest::prelude::*;

/// Weighted toward mode-opening characters; includes multi-byte UTF-8.
const POOL: &[char] = &[
    '"', '\'', '/', '*', '\\', 'r', 'b', '#', '!', '.', ':', ';', '{', '}', '(', ')', '<', '>',
    '=', '-', '+', '_', 'a', 'z', 'A', '0', '9', 'x', 'e', ' ', ' ', '\n', '\n', '\t', 'é', 'λ',
    '🦀',
];

fn assemble(picks: &[u8]) -> String {
    picks
        .iter()
        .map(|&b| POOL[usize::from(b) % POOL.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Spans partition the file: in-bounds, ordered, char-aligned,
    /// whitespace-only gaps, and concatenation reconstructs the input.
    fn token_spans_round_trip_file_offsets(
        picks in proptest::collection::vec(proptest::strategy::any::<u8>(), 0..160),
    ) {
        let src = assemble(&picks);
        let tokens = lex(&src);

        let mut rebuilt = String::new();
        let mut cursor = 0usize;
        for tok in &tokens {
            prop_assert!(tok.start < tok.end, "empty span at {}", tok.start);
            prop_assert!(tok.end <= src.len(), "span past EOF");
            prop_assert!(cursor <= tok.start, "overlapping/unordered spans");
            prop_assert!(src.is_char_boundary(tok.start), "start off char boundary");
            prop_assert!(src.is_char_boundary(tok.end), "end off char boundary");
            let gap = &src[cursor..tok.start];
            prop_assert!(
                gap.chars().all(char::is_whitespace),
                "non-whitespace gap {:?} before offset {}",
                gap,
                tok.start
            );
            rebuilt.push_str(gap);
            rebuilt.push_str(tok.text(&src));
            cursor = tok.end;
        }
        let tail = &src[cursor..];
        prop_assert!(
            tail.chars().all(char::is_whitespace),
            "non-whitespace tail {:?}",
            tail
        );
        rebuilt.push_str(tail);
        prop_assert_eq!(rebuilt, src);
    }
}
