//! Fixture: determinism violations in the engine scope.
//!
//! `Instant::now` outside an allow directive trips `nondeterministic-time`,
//! and a raw `StdRng` construction trips `rng-discipline`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

pub fn wall_clock_jitter() -> Instant {
    Instant::now()
}

pub fn rogue_lane_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
