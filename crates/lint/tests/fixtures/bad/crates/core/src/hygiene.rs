//! Fixture: every directive-hygiene failure mode.
//!
//! A reasonless allow, an unknown rule name, an attempt to suppress the
//! hygiene rule itself, and a stale allow that suppresses nothing — all
//! four surface as `invalid-directive` findings, and the reasonless
//! allow does *not* suppress the `Instant::now` it sits above.

// dp-lint: allow(nondeterministic-time)
pub fn reasonless() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn unknown_rule() -> u32 {
    7 // dp-lint: allow(no-such-rule): the rule name is misspelled
}

pub fn self_suppression() -> u32 {
    11 // dp-lint: allow(invalid-directive): hygiene findings cannot be silenced
}

// dp-lint: allow(unordered-iteration): nothing on the next line iterates anything
pub fn stale() -> u32 {
    13
}
