//! Fixture: serving-tier and codec violations.
//!
//! `HashMap` trips `unordered-iteration`, `.unwrap()` and `panic!` trip
//! `panic-in-serving-tier`, and the `as u8` cast trips
//! `truncating-cast-in-codec`.

use std::collections::HashMap;

pub fn tag_of(len: usize) -> u8 {
    len as u8
}

pub fn handle(fields: &HashMap<String, String>, key: &str) -> String {
    if key.is_empty() {
        panic!("empty key");
    }
    fields.get(key).unwrap().clone()
}
