//! Fixture: allocation inside a declared zero-alloc region.
//!
//! The `vec!`, `.to_vec()` and `.collect()` sites all land between the
//! region's opening `{` and its matching `}`.

pub fn denoise_step(xs: &[u64]) -> Vec<u64> {
    // dp-lint: zero-alloc
    {
        let staging = vec![0u64; xs.len()];
        let copy = xs.to_vec();
        let doubled: Vec<u64> = copy.iter().map(|v| v * 2).collect();
        let _ = (staging, doubled);
    }
    Vec::new()
}
