//! Fixture: the same operations as the bad tree, written inside the
//! contracts — reasoned allow directives on the genuinely-needed sites.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

pub fn deadline_clock() -> Instant {
    // dp-lint: allow(nondeterministic-time): fixture models a sanctioned wall-clock read (deadline bookkeeping)
    Instant::now()
}

pub fn lane_rng(lane_seed: u64) -> StdRng {
    // dp-lint: allow(rng-discipline): fixture models the one sanctioned per-lane derivation site
    StdRng::seed_from_u64(lane_seed)
}

pub fn hot_loop(acc: &mut [u64], xs: &[u64]) {
    // dp-lint: zero-alloc
    for (a, x) in acc.iter_mut().zip(xs) {
        *a = a.wrapping_add(*x);
    }
}
