//! Fixture: lives under a `tests/` directory, which the walker skips
//! entirely — nothing here is scanned, so these would-be violations
//! never surface.

use std::collections::HashMap;

pub fn free_for_all(m: &HashMap<String, String>) -> String {
    let _t = std::time::Instant::now();
    m.get("k").unwrap().clone()
}
