//! Fixture: serving-tier code that satisfies the contracts, plus a
//! `#[cfg(test)]` module proving the engine erases test-only code —
//! the module below unwraps and uses `HashMap` freely without findings.

use std::collections::BTreeMap;

pub fn tag_of(len: usize) -> u8 {
    u8::try_from(len & 0xFF).unwrap_or(0)
}

pub fn handle(fields: &BTreeMap<String, String>, key: &str) -> Option<String> {
    fields.get(key).cloned()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_unwrap_and_hash() {
        let mut m = HashMap::new();
        m.insert("k", 1u8);
        assert_eq!(*m.get("k").unwrap(), 1);
        let _t = std::time::Instant::now();
    }
}
