//! Golden-report tests over the fixture corpora.
//!
//! `fixtures/bad` is a miniature workspace tree where every rule in the
//! registry fires at least once; `fixtures/good` is the same shape
//! written inside the contracts. Both trees carry an `expected.json`
//! golden that the JSON renderer must reproduce byte-for-byte — any
//! drift in rule scoping, messages, sorting, or JSON shape fails here.
//!
//! Regenerate a golden after an intentional change with:
//! `cargo run -p dp_lint -- --workspace --root <tree> --json <tree>/expected.json`

use dp_lint::{analyze_tree, rules, Report};
use std::path::PathBuf;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze_fixture(name: &str) -> Report {
    analyze_tree(&fixture_root(name)).expect("fixture tree must be readable")
}

fn golden(name: &str) -> String {
    let path = fixture_root(name).join("expected.json");
    std::fs::read_to_string(&path).expect("golden expected.json must exist")
}

#[test]
fn bad_corpus_matches_golden_byte_for_byte() {
    let report = analyze_fixture("bad");
    assert!(!report.is_clean(), "the bad corpus must produce findings");
    assert_eq!(
        report.to_json(),
        golden("bad"),
        "bad-corpus JSON drifted from tests/fixtures/bad/expected.json"
    );
}

#[test]
fn bad_corpus_fires_every_rule_in_the_registry() {
    let report = analyze_fixture("bad");
    for def in rules::RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == def.id),
            "rule `{}` has no fixture coverage in the bad corpus",
            def.id
        );
    }
}

#[test]
fn good_corpus_is_clean_and_matches_golden() {
    let report = analyze_fixture("good");
    assert!(
        report.is_clean(),
        "good corpus should be clean, got: {}",
        report.render_human()
    );
    assert_eq!(
        report.to_json(),
        golden("good"),
        "good-corpus JSON drifted from tests/fixtures/good/expected.json"
    );
}

#[test]
fn good_corpus_skips_tests_directories() {
    // The good tree holds three .rs files on disk, but
    // crates/serve/tests/wire.rs sits under a `tests/` directory the
    // walker must skip — so only two are scanned, and the would-be
    // violations in wire.rs never surface.
    let report = analyze_fixture("good");
    assert_eq!(report.files_scanned, 2);
    assert!(report.findings.iter().all(|f| !f.file.contains("wire.rs")));
}

#[test]
fn findings_sorted_by_file_line_column_rule() {
    let report = analyze_fixture("bad");
    let keys: Vec<_> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.column, f.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "report findings must arrive pre-sorted");
}
