//! Borrowed-delta assignment for pixel-based baselines.
//!
//! The CAE/VCAE systems restore physical geometry for a generated topology
//! with a *learned* (implicit) assignment of geometric vectors. The paper's
//! central criticism is that nothing in such an assignment guarantees the
//! design rules. This module reproduces that mechanism in its simplest
//! honest form: borrow the Δ vectors of a random training pattern
//! (resampled to the generated topology's shape and rescaled to the
//! window) — statistically plausible geometry with no legality guarantee,
//! so the baselines' legality percentages in Table I are *measured*
//! failures of implicit assignment, exactly as in the original systems.

use dp_geometry::{BitGrid, Coord};
use dp_squish::SquishPattern;
use rand::Rng;

/// Assigns borrowed geometric vectors to `topology`, producing a full
/// squish pattern over a `window x window` tile.
///
/// A random training pattern donates its Δ profile; the profile is
/// resampled to the topology's column/row counts and integer-rescaled to
/// sum exactly to `window`.
///
/// # Panics
///
/// Panics when `donors` is empty or `window` is smaller than the number of
/// scan intervals.
pub fn assign_borrowed_deltas(
    topology: &BitGrid,
    donors: &[SquishPattern],
    window: Coord,
    rng: &mut impl Rng,
) -> SquishPattern {
    assert!(!donors.is_empty(), "no donor patterns");
    assert!(
        window >= topology.width() as Coord && window >= topology.height() as Coord,
        "window too small for topology"
    );
    let donor = &donors[rng.gen_range(0..donors.len())];
    let dx = resample_to(donor.dx(), topology.width(), window);
    let dy = resample_to(donor.dy(), topology.height(), window);
    SquishPattern::new(topology.clone(), dx, dy).expect("resampled deltas match topology shape")
}

/// Resamples a Δ profile to `n` entries summing exactly to `target`, each
/// at least 1.
fn resample_to(profile: &[Coord], n: usize, target: Coord) -> Vec<Coord> {
    let raw: Vec<f64> = (0..n)
        .map(|i| {
            let src = i * profile.len() / n;
            (profile[src] as f64).max(1.0)
        })
        .collect();
    let sum: f64 = raw.iter().sum();
    let mut out: Vec<Coord> = raw
        .iter()
        .map(|v| ((v / sum) * target as f64).floor().max(1.0) as Coord)
        .collect();
    // Fix the sum exactly.
    let mut diff = target - out.iter().sum::<Coord>();
    let mut i = 0usize;
    while diff != 0 {
        let idx = i % n;
        if diff > 0 {
            out[idx] += 1;
            diff -= 1;
        } else if out[idx] > 1 {
            out[idx] -= 1;
            diff += 1;
        }
        i += 1;
        if i > 4 * n + target as usize {
            break; // unreachable safeguard
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geometry::{Layout, Rect};
    use rand::SeedableRng;

    fn donor() -> SquishPattern {
        let mut l = Layout::new(Rect::new(0, 0, 2048, 2048).unwrap());
        l.push(Rect::new(100, 200, 700, 1800).unwrap());
        l.push(Rect::new(900, 200, 1500, 1800).unwrap());
        SquishPattern::encode(&l)
    }

    #[test]
    fn output_matches_topology_and_window() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let topo = BitGrid::from_ascii(
            ".#.#..
             .#.#..
             ......
             ..###.",
        )
        .unwrap();
        let p = assign_borrowed_deltas(&topo, &[donor()], 2048, &mut rng);
        assert_eq!(p.topology(), &topo);
        assert_eq!(p.width(), 2048);
        assert_eq!(p.height(), 2048);
        assert!(p.dx().iter().all(|&d| d >= 1));
    }

    #[test]
    fn no_legality_guarantee() {
        // The whole point: borrowed deltas frequently violate rules for
        // topologies unlike the donor. A dense comb must produce narrow
        // features somewhere.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let side = 16;
        let mut comb = BitGrid::new(side, side).unwrap();
        for c in (1..side - 1).step_by(2) {
            for r in 1..side - 1 {
                comb.set(c, r, true);
            }
        }
        let p = assign_borrowed_deltas(&comb, &[donor()], 2048, &mut rng);
        let rules = dp_drc::DesignRules::standard();
        let report = dp_drc::check_pattern(&p, &rules);
        assert!(!report.is_clean());
    }

    #[test]
    #[should_panic(expected = "no donor")]
    fn empty_donors_panic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let topo = BitGrid::new(4, 4).unwrap();
        let _ = assign_borrowed_deltas(&topo, &[], 2048, &mut rng);
    }
}
