//! The LegalGAN baseline (paper ref. \[8\]): a learned post-processor that
//! *modifies* a generated topology to make it more legal.
//!
//! The original is a GAN trained to map illegal topologies to nearby legal
//! ones. Training an adversarial pair is far outside CPU budget and —
//! more importantly — the *system-level role* of LegalGAN in Table I is a
//! topology-to-topology cleanup stage between generation and delta
//! assignment. This module reproduces that role with a rule-guided
//! morphological legalizer (the transformations a trained LegalGAN
//! empirically learns: closing sub-resolution gaps, erasing slivers and
//! droplets, removing point contacts). Like the original it trades
//! diversity for legality, and like the original it offers no guarantee.

use dp_geometry::{bowtie, runs, BitGrid, ComponentLabels};

/// Rule-guided morphological legalizer standing in for LegalGAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorphLegalizer {
    /// Minimal feature extent, in cells (width and space at the generator's
    /// nominal pitch).
    pub min_run: usize,
    /// Minimal polygon size, in cells.
    pub min_cells: usize,
    /// Iteration bound for the cleanup fixpoint.
    pub max_passes: usize,
}

impl Default for MorphLegalizer {
    fn default() -> Self {
        MorphLegalizer {
            min_run: 2,
            min_cells: 4,
            max_passes: 8,
        }
    }
}

impl MorphLegalizer {
    /// Creates a legalizer with the given minimal run/polygon sizes.
    pub fn new(min_run: usize, min_cells: usize) -> Self {
        MorphLegalizer {
            min_run,
            min_cells,
            ..Self::default()
        }
    }

    /// Returns a cleaned copy of `topology`.
    pub fn legalize(&self, topology: &BitGrid) -> BitGrid {
        let mut grid = topology.clone();
        for _ in 0..self.max_passes {
            let before = grid.clone();
            bowtie::repair_bowties(&mut grid);
            self.fix_rows(&mut grid);
            let mut t = grid.transposed();
            self.fix_rows(&mut t);
            grid = t.transposed();
            self.drop_droplets(&mut grid);
            if grid == before {
                break;
            }
        }
        grid
    }

    /// Fills interior gaps and erases filled runs shorter than `min_run`
    /// along every row.
    fn fix_rows(&self, grid: &mut BitGrid) {
        let w = grid.width();
        for r in 0..grid.height() {
            let cells: Vec<bool> = grid.row(r).collect();
            for run in runs::interior_space_runs(cells.iter().copied(), w) {
                if run.len() < self.min_run {
                    for c in run.start..run.end {
                        grid.set(c, r, true);
                    }
                }
            }
            let cells: Vec<bool> = grid.row(r).collect();
            for run in runs::filled_runs(cells.iter().copied()) {
                if run.len() < self.min_run && !run.touches_border(w) {
                    for c in run.start..run.end {
                        grid.set(c, r, false);
                    }
                }
            }
        }
    }

    /// Removes connected components smaller than `min_cells`.
    fn drop_droplets(&self, grid: &mut BitGrid) {
        let labels = ComponentLabels::label(grid);
        let sizes = labels.sizes();
        for r in 0..grid.height() {
            for c in 0..grid.width() {
                if let Some(l) = labels.get(c, r) {
                    if sizes[l as usize] < self.min_cells {
                        grid.set(c, r, false);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_topology_is_untouched() {
        let g = BitGrid::from_ascii(
            "......
             .##...
             .##.##
             ....##",
        )
        .unwrap();
        let legal = MorphLegalizer::default().legalize(&g);
        assert_eq!(legal, g);
    }

    #[test]
    fn droplets_are_removed() {
        let g = BitGrid::from_ascii(
            "......
             .#....
             ...###
             ...###",
        )
        .unwrap();
        let legal = MorphLegalizer::new(2, 4).legalize(&g);
        assert!(!legal.get(1, 2), "single-cell droplet must vanish");
        assert!(legal.get(3, 0) || legal.get(3, 1), "large shape survives");
    }

    #[test]
    fn narrow_gaps_are_closed() {
        let g = BitGrid::from_ascii(
            "##.##
             ##.##",
        )
        .unwrap();
        let legal = MorphLegalizer::new(2, 2).legalize(&g);
        // The single-cell interior gap gets filled.
        assert!(legal.get(2, 0) && legal.get(2, 1));
    }

    #[test]
    fn bowties_are_repaired() {
        let g = BitGrid::from_ascii(
            "##..
             ##..
             ..##
             ..##",
        )
        .unwrap();
        assert!(!bowtie::is_bowtie_free(&g));
        let legal = MorphLegalizer::default().legalize(&g);
        assert!(bowtie::is_bowtie_free(&legal));
    }

    #[test]
    fn output_is_stable_fixpoint() {
        let g = BitGrid::from_ascii(
            "#.#.#.#.
             .#.#.#.#
             #.#.#.#.
             ........",
        )
        .unwrap();
        let m = MorphLegalizer::default();
        let once = m.legalize(&g);
        let twice = m.legalize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn improves_measured_legality() {
        // The Table I mechanism: after cleanup, a messy topology becomes
        // DRC-cleaner under uniform deltas.
        use dp_drc::{check_pattern, DesignRules};
        use dp_squish::SquishPattern;
        let side = 16;
        let mut messy = BitGrid::new(side, side).unwrap();
        // Checkerboard patch: maximally illegal.
        for r in 4..12 {
            for c in 4..12 {
                if (r + c) % 2 == 0 {
                    messy.set(c, r, true);
                }
            }
        }
        // Single cells are 128 nm at this pitch, so a 150 nm rule makes the
        // checkerboard maximally illegal.
        let rules = DesignRules::builder()
            .space_min(150)
            .width_min(150)
            .area_range(4_000, 1_500_000)
            .build()
            .unwrap();
        let deltas = vec![128i64; side];
        let before = check_pattern(
            &SquishPattern::new(messy.clone(), deltas.clone(), deltas.clone()).unwrap(),
            &rules,
        );
        let cleaned = MorphLegalizer::new(2, 4).legalize(&messy);
        let after = check_pattern(
            &SquishPattern::new(cleaned, deltas.clone(), deltas).unwrap(),
            &rules,
        );
        assert!(
            after.violations().len() < before.violations().len(),
            "cleanup must reduce violations: {} -> {}",
            before.violations().len(),
            after.violations().len()
        );
    }
}
