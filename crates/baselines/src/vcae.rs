//! The VCAE baseline (paper ref. \[8\]): a variational convolutional
//! auto-encoder. Generation samples latents from the standard-normal prior
//! and thresholds the decoder output; diversity is higher than the CAE's
//! perturbed-reconstruction scheme, at the cost of messier topologies —
//! exactly the trade Table I shows.

use crate::ae::{bce_with_logits, grids_to_tensor, logits_to_grid, AeConfig, Decoder, Encoder};
use dp_geometry::BitGrid;
use dp_nn::{Adam, AdamConfig, Tensor};
use rand::Rng;

/// The variational convolutional auto-encoder baseline.
#[derive(Debug, Clone)]
pub struct Vcae {
    encoder: Encoder,
    decoder: Decoder,
    adam: Adam,
    config: AeConfig,
    /// KL weight β.
    pub beta: f64,
}

impl Vcae {
    /// Creates an untrained model with KL weight `beta`.
    pub fn new(config: AeConfig, beta: f64, rng: &mut impl Rng) -> Self {
        Vcae {
            // Encoder head outputs [mu | logvar].
            encoder: Encoder::new(config, 2 * config.latent, rng),
            decoder: Decoder::new(config, rng),
            adam: Adam::new(AdamConfig {
                lr: 2e-3,
                ..AdamConfig::default()
            }),
            config,
            beta,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &AeConfig {
        &self.config
    }

    /// Trains the ELBO (BCE reconstruction + β·KL) for `iterations`
    /// mini-batches; returns per-iteration total losses.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or mismatched grid sides.
    pub fn train(
        &mut self,
        dataset: &[BitGrid],
        iterations: usize,
        batch: usize,
        rng: &mut impl Rng,
    ) -> Vec<f64> {
        assert!(!dataset.is_empty(), "empty dataset");
        let d = self.config.latent;
        let mut losses = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let items: Vec<&BitGrid> = (0..batch.max(1))
                .map(|_| &dataset[rng.gen_range(0..dataset.len())])
                .collect();
            let n = items.len();
            let x = grids_to_tensor(&items, self.config.side);
            let enc_out = self.encoder.forward(&x); // (n, 2d): [mu | logvar]

            // Reparameterise z = mu + exp(logvar/2) * eps.
            let eps = Tensor::randn(&[n, d], 1.0, rng);
            let mut z = Tensor::zeros(&[n, d]);
            for i in 0..n {
                for j in 0..d {
                    let mu = enc_out.data()[i * 2 * d + j];
                    let logvar = enc_out.data()[i * 2 * d + d + j];
                    z.data_mut()[i * d + j] = mu + (0.5 * logvar).exp() * eps.data()[i * d + j];
                }
            }

            let logits = self.decoder.forward(&z);
            let (bce, grad_logits) = bce_with_logits(&logits, &x);

            // KL(q(z|x) || N(0, I)) per batch item, averaged.
            let mut kl = 0.0f64;
            for i in 0..n {
                for j in 0..d {
                    let mu = enc_out.data()[i * 2 * d + j] as f64;
                    let logvar = enc_out.data()[i * 2 * d + d + j] as f64;
                    kl += -0.5 * (1.0 + logvar - mu * mu - logvar.exp());
                }
            }
            kl /= (n * d) as f64;
            losses.push(bce + self.beta * kl);

            // Backward: reconstruction path through the decoder...
            let grad_z = self.decoder.backward(&grad_logits);
            // ...then into [mu | logvar] plus the KL gradient.
            let mut grad_enc = Tensor::zeros(&[n, 2 * d]);
            let kl_scale = self.beta / (n * d) as f64;
            for i in 0..n {
                for j in 0..d {
                    let mu = enc_out.data()[i * 2 * d + j] as f64;
                    let logvar = enc_out.data()[i * 2 * d + d + j] as f64;
                    let gz = grad_z.data()[i * d + j] as f64;
                    let e = eps.data()[i * d + j] as f64;
                    // dz/dmu = 1; dz/dlogvar = 0.5 exp(logvar/2) eps.
                    let gmu = gz + kl_scale * mu;
                    let glogvar =
                        gz * 0.5 * (0.5 * logvar).exp() * e + kl_scale * 0.5 * (logvar.exp() - 1.0);
                    grad_enc.data_mut()[i * 2 * d + j] = gmu as f32;
                    grad_enc.data_mut()[i * 2 * d + d + j] = glogvar as f32;
                }
            }
            let _ = self.encoder.backward(&grad_enc);
            let mut params = self.encoder.params_mut();
            params.extend(self.decoder.params_mut());
            self.adam.step(&mut params);
        }
        losses
    }

    /// Generates a topology by decoding a latent drawn from the prior.
    pub fn generate(&mut self, rng: &mut impl Rng) -> BitGrid {
        let z = Tensor::randn(&[1, self.config.latent], 1.0, rng);
        let logits = self.decoder.forward(&z);
        logits_to_grid(&logits, 0, self.config.side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn dataset(side: usize) -> Vec<BitGrid> {
        let mut out = Vec::new();
        for start in (2..side - 4).step_by(3) {
            let mut g = BitGrid::new(side, side).unwrap();
            g.fill_cells(start, 2, start + 2, side - 2);
            out.push(g);
            let mut g = BitGrid::new(side, side).unwrap();
            g.fill_cells(2, start, side - 2, start + 2);
            out.push(g);
        }
        out
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = AeConfig {
            side: 16,
            features: 4,
            latent: 8,
        };
        let mut vcae = Vcae::new(config, 0.05, &mut rng);
        let losses = vcae.train(&dataset(16), 60, 4, &mut rng);
        let head: f64 = losses[..10].iter().sum::<f64>() / 10.0;
        let tail: f64 = losses[losses.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(tail < head * 0.9, "head {head} tail {tail}");
    }

    #[test]
    fn prior_samples_vary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let config = AeConfig {
            side: 16,
            features: 4,
            latent: 8,
        };
        let mut vcae = Vcae::new(config, 0.05, &mut rng);
        let _ = vcae.train(&dataset(16), 40, 4, &mut rng);
        let a = vcae.generate(&mut rng);
        let b = vcae.generate(&mut rng);
        // Two prior samples should not be identical for a non-degenerate
        // decoder.
        assert_ne!(a, b);
    }

    #[test]
    fn generated_shape_is_configured() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let config = AeConfig {
            side: 16,
            features: 4,
            latent: 8,
        };
        let mut vcae = Vcae::new(config, 0.05, &mut rng);
        let g = vcae.generate(&mut rng);
        assert_eq!((g.width(), g.height()), (16, 16));
    }
}
