//! The CAE baseline (paper ref. \[7\], "DeePattern"): a convolutional
//! auto-encoder over squish topology matrices. New topologies are produced
//! by perturbing the latent code of a training sample and thresholding the
//! decoder's continuous output — the "clip a grayscale image" pipeline the
//! paper argues against.

use crate::ae::{bce_with_logits, grids_to_tensor, logits_to_grid, AeConfig, Decoder, Encoder};
use dp_geometry::BitGrid;
use dp_nn::{Adam, AdamConfig, Tensor};
use rand::Rng;

/// The convolutional auto-encoder baseline.
#[derive(Debug, Clone)]
pub struct Cae {
    encoder: Encoder,
    decoder: Decoder,
    adam: Adam,
    config: AeConfig,
}

impl Cae {
    /// Creates an untrained model.
    pub fn new(config: AeConfig, rng: &mut impl Rng) -> Self {
        Cae {
            encoder: Encoder::new(config, config.latent, rng),
            decoder: Decoder::new(config, rng),
            adam: Adam::new(AdamConfig {
                lr: 2e-3,
                ..AdamConfig::default()
            }),
            config,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &AeConfig {
        &self.config
    }

    /// Trains the reconstruction objective for `iterations` mini-batches;
    /// returns the per-iteration BCE losses.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or grids that do not match the
    /// configured side.
    pub fn train(
        &mut self,
        dataset: &[BitGrid],
        iterations: usize,
        batch: usize,
        rng: &mut impl Rng,
    ) -> Vec<f64> {
        assert!(!dataset.is_empty(), "empty dataset");
        let mut losses = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let items: Vec<&BitGrid> = (0..batch.max(1))
                .map(|_| &dataset[rng.gen_range(0..dataset.len())])
                .collect();
            let x = grids_to_tensor(&items, self.config.side);
            let z = self.encoder.forward(&x);
            let logits = self.decoder.forward(&z);
            let (loss, grad) = bce_with_logits(&logits, &x);
            losses.push(loss);
            let gz = self.decoder.backward(&grad);
            let _ = self.encoder.backward(&gz);
            let mut params = self.encoder.params_mut();
            params.extend(self.decoder.params_mut());
            self.adam.step(&mut params);
        }
        losses
    }

    /// Generates a topology by encoding a random training sample, adding
    /// Gaussian noise of scale `noise_std` to the latent, decoding and
    /// thresholding.
    ///
    /// # Panics
    ///
    /// Panics on an empty seed set.
    pub fn generate(&mut self, seeds: &[BitGrid], noise_std: f32, rng: &mut impl Rng) -> BitGrid {
        assert!(!seeds.is_empty(), "empty seed set");
        let seed = &seeds[rng.gen_range(0..seeds.len())];
        let x = grids_to_tensor(&[seed], self.config.side);
        let z = self.encoder.forward(&x);
        let noise = Tensor::randn(z.shape(), noise_std, rng);
        let z = z.add(&noise);
        let logits = self.decoder.forward(&z);
        logits_to_grid(&logits, 0, self.config.side)
    }

    /// Reconstructs a grid without noise (diagnostic).
    pub fn reconstruct(&mut self, grid: &BitGrid) -> BitGrid {
        let x = grids_to_tensor(&[grid], self.config.side);
        let z = self.encoder.forward(&x);
        let logits = self.decoder.forward(&z);
        logits_to_grid(&logits, 0, self.config.side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn dataset(side: usize) -> Vec<BitGrid> {
        // Bar patterns at several positions/widths.
        let mut out = Vec::new();
        for start in (2..side - 4).step_by(3) {
            let mut g = BitGrid::new(side, side).unwrap();
            g.fill_cells(start, 2, start + 2, side - 2);
            out.push(g);
        }
        out
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = AeConfig {
            side: 16,
            features: 4,
            latent: 8,
        };
        let mut cae = Cae::new(config, &mut rng);
        let data = dataset(16);
        let losses = cae.train(&data, 60, 4, &mut rng);
        let head: f64 = losses[..10].iter().sum::<f64>() / 10.0;
        let tail: f64 = losses[losses.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(tail < head * 0.8, "head {head} tail {tail}");
    }

    #[test]
    fn generation_has_plausible_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let config = AeConfig {
            side: 16,
            features: 4,
            latent: 8,
        };
        let mut cae = Cae::new(config, &mut rng);
        let data = dataset(16);
        let _ = cae.train(&data, 80, 4, &mut rng);
        let g = cae.generate(&data, 0.3, &mut rng);
        assert_eq!((g.width(), g.height()), (16, 16));
    }

    #[test]
    fn trained_reconstruction_beats_untrained() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let config = AeConfig {
            side: 16,
            features: 4,
            latent: 16,
        };
        let data = dataset(16);
        let mut untrained = Cae::new(config, &mut rng);
        let mut trained = untrained.clone();
        let _ = trained.train(&data, 120, 4, &mut rng);
        let err = |cae: &mut Cae| -> usize {
            data.iter()
                .map(|g| {
                    let r = cae.reconstruct(g);
                    g.cells()
                        .iter()
                        .zip(r.cells())
                        .filter(|(a, b)| a != b)
                        .count()
                })
                .sum()
        };
        let e_trained = err(&mut trained);
        let e_untrained = err(&mut untrained);
        assert!(
            e_trained < e_untrained,
            "trained {e_trained} vs untrained {e_untrained}"
        );
    }
}
