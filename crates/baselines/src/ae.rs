//! Shared convolutional encoder/decoder used by the CAE and VCAE baselines.
//!
//! The original DeePattern/VCAE models are modest CNN auto-encoders over
//! squish topology matrices; this module reimplements that family on the
//! `dp-nn` substrate with exact manual backprop:
//!
//! * encoder: two stride-2 convolutions + SiLU, flattened into a linear
//!   head (producing the latent, or `2x` latent for the VCAE's mean/logvar),
//! * decoder: linear expansion, two nearest-neighbour upsample +
//!   convolution stages, producing per-pixel *logits* (the continuous
//!   output the pixel-based methods threshold — exactly the step the paper
//!   criticises).

use dp_geometry::BitGrid;
use dp_nn::{
    silu, silu_backward, upsample_nearest2, upsample_nearest2_backward, Conv2d, Linear, Param,
    Tensor,
};
use rand::Rng;

/// Architecture configuration shared by [`crate::Cae`] and [`crate::Vcae`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeConfig {
    /// Topology matrix side (must be divisible by 4).
    pub side: usize,
    /// Base feature width.
    pub features: usize,
    /// Latent dimensionality.
    pub latent: usize,
}

impl Default for AeConfig {
    fn default() -> Self {
        AeConfig {
            side: 32,
            features: 8,
            latent: 32,
        }
    }
}

impl AeConfig {
    /// Spatial side at the bottleneck.
    pub fn bottleneck_side(&self) -> usize {
        self.side / 4
    }

    /// Flattened bottleneck feature count.
    pub fn bottleneck_len(&self) -> usize {
        2 * self.features * self.bottleneck_side() * self.bottleneck_side()
    }
}

/// Convolutional encoder producing `out_dim` features per item.
#[derive(Debug, Clone)]
pub(crate) struct Encoder {
    conv1: Conv2d,
    conv2: Conv2d,
    head: Linear,
    config: AeConfig,
    cache: Option<(Tensor, Tensor)>, // pre-SiLU activations
}

impl Encoder {
    pub(crate) fn new(config: AeConfig, out_dim: usize, rng: &mut impl Rng) -> Self {
        assert!(config.side.is_multiple_of(4), "side must be divisible by 4");
        Encoder {
            conv1: Conv2d::new(1, config.features, 3, 2, 1, rng),
            conv2: Conv2d::new(config.features, 2 * config.features, 3, 2, 1, rng),
            head: Linear::new(config.bottleneck_len(), out_dim, rng),
            config,
            cache: None,
        }
    }

    pub(crate) fn forward(&mut self, x: &Tensor) -> Tensor {
        let n = x.shape()[0];
        let a1 = self.conv1.forward(x);
        let h1 = silu(&a1);
        let a2 = self.conv2.forward(&h1);
        let h2 = silu(&a2);
        self.cache = Some((a1, a2));
        let flat = h2.reshape(&[n, self.config.bottleneck_len()]);
        self.head.forward(&flat)
    }

    pub(crate) fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (a1, a2) = self.cache.take().expect("backward before forward");
        let n = grad_out.shape()[0];
        let g = self.head.backward(grad_out);
        let s = self.config.bottleneck_side();
        let g = g.reshape(&[n, 2 * self.config.features, s, s]);
        let g = silu_backward(&a2, &g);
        let g = self.conv2.backward(&g);
        let g = silu_backward(&a1, &g);
        self.conv1.backward(&g)
    }

    pub(crate) fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.conv1.params_mut();
        p.extend(self.conv2.params_mut());
        p.extend(self.head.params_mut());
        p
    }
}

/// Decoder mapping a latent vector to per-pixel logits.
#[derive(Debug, Clone)]
pub(crate) struct Decoder {
    expand: Linear,
    conv1: Conv2d,
    conv2: Conv2d,
    config: AeConfig,
    cache: Option<(Tensor, Tensor)>, // pre-SiLU expand output, pre-SiLU conv1 output
}

impl Decoder {
    pub(crate) fn new(config: AeConfig, rng: &mut impl Rng) -> Self {
        Decoder {
            expand: Linear::new(config.latent, config.bottleneck_len(), rng),
            conv1: Conv2d::new(2 * config.features, config.features, 3, 1, 1, rng),
            conv2: Conv2d::new(config.features, 1, 3, 1, 1, rng),
            config,
            cache: None,
        }
    }

    pub(crate) fn forward(&mut self, z: &Tensor) -> Tensor {
        let n = z.shape()[0];
        let s = self.config.bottleneck_side();
        let a0 = self.expand.forward(z);
        let h0 = silu(&a0);
        let h0 = h0.reshape(&[n, 2 * self.config.features, s, s]);
        let u1 = upsample_nearest2(&h0);
        let a1 = self.conv1.forward(&u1);
        let h1 = silu(&a1);
        let u2 = upsample_nearest2(&h1);
        self.cache = Some((a0, a1));
        self.conv2.forward(&u2)
    }

    pub(crate) fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let (a0, a1) = self.cache.take().expect("backward before forward");
        let n = grad_logits.shape()[0];
        let g = self.conv2.backward(grad_logits);
        let g = upsample_nearest2_backward(&g);
        let g = silu_backward(&a1, &g);
        let g = self.conv1.backward(&g);
        let g = upsample_nearest2_backward(&g);
        let g = g.reshape(&[n, self.config.bottleneck_len()]);
        let g = silu_backward(&a0, &g);
        self.expand.backward(&g)
    }

    pub(crate) fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.expand.params_mut();
        p.extend(self.conv1.params_mut());
        p.extend(self.conv2.params_mut());
        p
    }
}

/// Converts a batch of topology grids to a `(n, 1, S, S)` tensor.
///
/// # Panics
///
/// Panics when grids differ in shape or are not `side x side`.
pub(crate) fn grids_to_tensor(grids: &[&BitGrid], side: usize) -> Tensor {
    let n = grids.len();
    assert!(n > 0, "empty batch");
    let mut data = Vec::with_capacity(n * side * side);
    for g in grids {
        assert_eq!((g.width(), g.height()), (side, side), "grid shape");
        data.extend(g.cells().iter().map(|&b| if b { 1.0f32 } else { 0.0 }));
    }
    Tensor::from_vec(&[n, 1, side, side], data)
}

/// Thresholds decoder logits at 0 (probability 0.5) into a topology grid —
/// the clipping step of the pixel-based methods.
pub(crate) fn logits_to_grid(logits: &Tensor, item: usize, side: usize) -> BitGrid {
    let mut g = BitGrid::new(side, side).expect("side > 0");
    for r in 0..side {
        for c in 0..side {
            if logits.at4(item, 0, r, c) > 0.0 {
                g.set(c, r, true);
            }
        }
    }
    g
}

/// Binary cross-entropy (with logits) loss and gradient against bit
/// targets; the mean is over all pixels.
pub(crate) fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> (f64, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "shape mismatch");
    let n = logits.len() as f64;
    let mut grad = Tensor::zeros(logits.shape());
    let mut loss = 0.0f64;
    for i in 0..logits.len() {
        let l = logits.data()[i] as f64;
        let t = targets.data()[i] as f64;
        // log(1 + e^l) - t*l, stable form.
        loss += l.max(0.0) - t * l + (1.0 + (-l.abs()).exp()).ln();
        let p = 1.0 / (1.0 + (-l).exp());
        grad.data_mut()[i] = ((p - t) / n) as f32;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn config() -> AeConfig {
        AeConfig {
            side: 16,
            features: 4,
            latent: 8,
        }
    }

    #[test]
    fn encoder_decoder_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut enc = Encoder::new(config(), 8, &mut rng);
        let mut dec = Decoder::new(config(), &mut rng);
        let x = Tensor::randn(&[3, 1, 16, 16], 1.0, &mut rng);
        let z = enc.forward(&x);
        assert_eq!(z.shape(), &[3, 8]);
        let y = dec.forward(&z);
        assert_eq!(y.shape(), &[3, 1, 16, 16]);
    }

    #[test]
    fn backward_shapes_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut enc = Encoder::new(config(), 8, &mut rng);
        let mut dec = Decoder::new(config(), &mut rng);
        let x = Tensor::randn(&[2, 1, 16, 16], 1.0, &mut rng);
        let z = enc.forward(&x);
        let y = dec.forward(&z);
        let gz = dec.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(gz.shape(), z.shape());
        let gx = enc.backward(&gz);
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn bce_is_minimal_at_confident_correct_logits() {
        let targets = Tensor::from_vec(&[4], vec![1.0, 0.0, 1.0, 0.0]);
        let good = Tensor::from_vec(&[4], vec![10.0, -10.0, 10.0, -10.0]);
        let bad = Tensor::from_vec(&[4], vec![-10.0, 10.0, -10.0, 10.0]);
        let (lg, _) = bce_with_logits(&good, &targets);
        let (lb, _) = bce_with_logits(&bad, &targets);
        assert!(lg < 1e-3);
        assert!(lb > 5.0);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let logits = Tensor::randn(&[6], 1.0, &mut rng);
        let targets = Tensor::from_vec(&[6], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let (lp, _) = bce_with_logits(&plus, &targets);
            let (lm, _) = bce_with_logits(&minus, &targets);
            let numeric = (lp - lm) / (2.0 * eps as f64);
            assert!((numeric - grad.data()[i] as f64).abs() < 1e-4, "entry {i}");
        }
    }

    #[test]
    fn grid_tensor_round_trip() {
        let g = BitGrid::from_ascii(
            ".#
             #.",
        )
        .unwrap();
        let t = grids_to_tensor(&[&g], 2);
        // Strongly positive logits where bits are set.
        let logits = t.scale(10.0).add(&Tensor::full(t.shape(), -5.0));
        let back = logits_to_grid(&logits, 0, 2);
        assert_eq!(back, g);
    }
}
