//! The LayouTransformer baseline (paper ref. \[9\]): sequential layout
//! generation over polygon token sequences.
//!
//! The original uses a transformer decoder over sequences of polygon
//! vertices/directed edges. The reproduction keeps the exact problem
//! decomposition — patterns are sets of rectilinear polygons, polygons are
//! closed walks of direction/length tokens in physical coordinates — and
//! replaces the transformer with an order-2 Markov model over the token
//! alphabet (learned start/transition statistics, empirical polygon-count
//! and walk-length distributions). Generation samples token walks, closes
//! them, and places the resulting polygons in the tile without bounding-box
//! overlap, falling back to a memorised training polygon when a walk fails
//! to close — the same behaviour a heavily-overfit sequence model exhibits.

use std::collections::HashMap;

use dp_geometry::{polygons_of_grid, Coord, EdgeToken, Layout, Point, Rect, RectilinearPolygon};
use dp_squish::SquishPattern;
use rand::Rng;

/// Configuration of the sequence-model baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceModelConfig {
    /// Tile side in nm.
    pub window: Coord,
    /// Length quantisation step in nm.
    pub quantum: Coord,
    /// Maximum polygons per generated pattern.
    pub max_polygons: usize,
    /// Maximum tokens per polygon walk before forced closing.
    pub max_tokens: usize,
    /// Bounding-box clearance enforced between placed polygons.
    pub clearance: Coord,
}

impl Default for SequenceModelConfig {
    fn default() -> Self {
        SequenceModelConfig {
            window: 2048,
            quantum: 32,
            max_polygons: 12,
            max_tokens: 16,
            clearance: 64,
        }
    }
}

/// Direction-plus-quantised-length token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TokenClass {
    /// 0 = right, 1 = up, 2 = left, 3 = down.
    dir: u8,
    /// Length bucket (multiples of `quantum`, at least 1).
    bucket: u32,
}

impl TokenClass {
    fn horizontal(&self) -> bool {
        self.dir == 0 || self.dir == 2
    }

    fn of(token: &EdgeToken, quantum: Coord) -> TokenClass {
        let (dir, len) = match *token {
            EdgeToken::Right(d) => (0u8, d),
            EdgeToken::Up(d) => (1, d),
            EdgeToken::Left(d) => (2, d),
            EdgeToken::Down(d) => (3, d),
        };
        TokenClass {
            dir,
            bucket: (len / quantum).max(1) as u32,
        }
    }

    fn to_token(self, quantum: Coord) -> EdgeToken {
        let len = self.bucket as Coord * quantum;
        match self.dir {
            0 => EdgeToken::Right(len),
            1 => EdgeToken::Up(len),
            2 => EdgeToken::Left(len),
            _ => EdgeToken::Down(len),
        }
    }
}

/// The trained sequence model.
#[derive(Debug, Clone)]
pub struct SequenceModel {
    config: SequenceModelConfig,
    starts: Vec<(TokenClass, u32)>,
    transitions: HashMap<TokenClass, Vec<(TokenClass, u32)>>,
    walk_lengths: Vec<(usize, u32)>,
    polygon_counts: Vec<(usize, u32)>,
    memorised: Vec<Vec<EdgeToken>>,
}

impl SequenceModel {
    /// Fits the model on training patterns.
    ///
    /// # Panics
    ///
    /// Panics when no polygon can be extracted from the training set.
    pub fn fit(patterns: &[SquishPattern], config: SequenceModelConfig) -> Self {
        let mut starts: HashMap<TokenClass, u32> = HashMap::new();
        let mut transitions: HashMap<TokenClass, HashMap<TokenClass, u32>> = HashMap::new();
        let mut walk_lengths: HashMap<usize, u32> = HashMap::new();
        let mut polygon_counts: HashMap<usize, u32> = HashMap::new();
        let mut memorised = Vec::new();

        for pattern in patterns {
            let xs = pattern.x_scan_lines();
            let ys = pattern.y_scan_lines();
            let polys = polygons_of_grid(pattern.topology());
            let outer: Vec<_> = polys.into_iter().filter(|p| p.is_ccw()).collect();
            *polygon_counts.entry(outer.len()).or_insert(0) += 1;
            for poly in outer {
                // Map cell-coordinate vertices to physical coordinates.
                let physical: Vec<Point> = poly
                    .vertices()
                    .iter()
                    .map(|v| Point::new(xs[v.x as usize], ys[v.y as usize]))
                    .collect();
                let poly = RectilinearPolygon::new(physical);
                let tokens = poly.edge_tokens();
                *walk_lengths.entry(tokens.len()).or_insert(0) += 1;
                if memorised.len() < 256 {
                    memorised.push(tokens.clone());
                }
                let classes: Vec<TokenClass> = tokens
                    .iter()
                    .map(|t| TokenClass::of(t, config.quantum))
                    .collect();
                if let Some(&first) = classes.first() {
                    *starts.entry(first).or_insert(0) += 1;
                }
                for pair in classes.windows(2) {
                    *transitions
                        .entry(pair[0])
                        .or_default()
                        .entry(pair[1])
                        .or_insert(0) += 1;
                }
            }
        }
        assert!(!memorised.is_empty(), "no polygons in the training set");

        SequenceModel {
            config,
            starts: starts.into_iter().collect(),
            transitions: transitions
                .into_iter()
                .map(|(k, v)| (k, v.into_iter().collect()))
                .collect(),
            walk_lengths: walk_lengths.into_iter().collect(),
            polygon_counts: polygon_counts.into_iter().collect(),
            memorised,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SequenceModelConfig {
        &self.config
    }

    /// Generates one layout pattern.
    pub fn generate(&self, rng: &mut impl Rng) -> Layout {
        let window = Rect::new(0, 0, self.config.window, self.config.window).expect("window > 0");
        let mut layout = Layout::new(window);
        let n_polys = weighted_sample(&self.polygon_counts, rng)
            .unwrap_or(1)
            .clamp(1, self.config.max_polygons);
        let mut placed: Vec<Rect> = Vec::new();
        for _ in 0..n_polys {
            let tokens = self
                .sample_walk(rng)
                .unwrap_or_else(|| self.memorised[rng.gen_range(0..self.memorised.len())].clone());
            if let Some(poly) = RectilinearPolygon::from_edge_tokens(Point::ORIGIN, &tokens) {
                self.place_polygon(&mut layout, &mut placed, &poly, rng);
            }
        }
        layout.normalized()
    }

    /// Samples a closed token walk from the Markov statistics.
    fn sample_walk(&self, rng: &mut impl Rng) -> Option<Vec<EdgeToken>> {
        let target_len = weighted_sample(&self.walk_lengths, rng)?.clamp(4, self.config.max_tokens);
        for _attempt in 0..8 {
            let mut classes: Vec<TokenClass> = Vec::with_capacity(target_len);
            classes.push(weighted_sample(&self.starts, rng)?);
            // Sample until two moves before the target, alternating axes.
            while classes.len() + 2 < target_len {
                let prev = *classes.last().expect("non-empty");
                let candidates = self.transitions.get(&prev);
                let next = candidates
                    .and_then(|c| {
                        let perpendicular: Vec<(TokenClass, u32)> = c
                            .iter()
                            .filter(|(t, _)| t.horizontal() != prev.horizontal())
                            .copied()
                            .collect();
                        weighted_sample(&perpendicular, rng)
                    })
                    .unwrap_or(TokenClass {
                        dir: if prev.horizontal() { 1 } else { 0 },
                        bucket: 1 + rng.gen_range(0u32..4),
                    });
                classes.push(next);
            }
            // Close the walk: one horizontal and one vertical move back to
            // the origin.
            let mut tokens: Vec<EdgeToken> = classes
                .iter()
                .map(|c| c.to_token(self.config.quantum))
                .collect();
            let (mut dx, mut dy) = (0i64, 0i64);
            for t in &tokens {
                match *t {
                    EdgeToken::Right(d) => dx += d,
                    EdgeToken::Left(d) => dx -= d,
                    EdgeToken::Up(d) => dy += d,
                    EdgeToken::Down(d) => dy -= d,
                }
            }
            let last_horizontal = classes.last().map(|c| c.horizontal()).unwrap_or(false);
            let closing = |dx: i64, dy: i64, horizontal_first: bool| -> Vec<EdgeToken> {
                let h = if dx > 0 {
                    Some(EdgeToken::Left(dx))
                } else if dx < 0 {
                    Some(EdgeToken::Right(-dx))
                } else {
                    None
                };
                let v = if dy > 0 {
                    Some(EdgeToken::Down(dy))
                } else if dy < 0 {
                    Some(EdgeToken::Up(-dy))
                } else {
                    None
                };
                match (h, v, horizontal_first) {
                    (Some(h), Some(v), true) => vec![h, v],
                    (Some(h), Some(v), false) => vec![v, h],
                    (Some(h), None, _) => vec![h],
                    (None, Some(v), _) => vec![v],
                    (None, None, _) => vec![],
                }
            };
            // The move after a horizontal token must be vertical and vice
            // versa; pick the closing order accordingly.
            tokens.extend(closing(dx, dy, !last_horizontal));
            if let Some(poly) = RectilinearPolygon::from_edge_tokens(Point::ORIGIN, &tokens) {
                if poly.area() > 0 {
                    return Some(tokens);
                }
            }
            // Retry with fresh samples.
            let _ = (dx, dy);
            dx = 0;
            dy = 0;
            let _ = (dx, dy);
        }
        None
    }

    /// Rasterises and places a polygon at a random non-overlapping position.
    fn place_polygon(
        &self,
        layout: &mut Layout,
        placed: &mut Vec<Rect>,
        poly: &RectilinearPolygon,
        rng: &mut impl Rng,
    ) {
        let (min, max) = poly.bounding_box();
        let w = max.x - min.x;
        let h = max.y - min.y;
        if w <= 0 || h <= 0 || w >= self.config.window || h >= self.config.window {
            return;
        }
        for _attempt in 0..20 {
            let ox = rng.gen_range(0..=(self.config.window - w)) - min.x;
            let oy = rng.gen_range(0..=(self.config.window - h)) - min.y;
            let bbox =
                Rect::new(min.x + ox, min.y + oy, max.x + ox, max.y + oy).expect("positive extent");
            let clear = bbox.inflate(self.config.clearance).unwrap_or(bbox);
            if placed.iter().any(|p| p.intersects(&clear)) {
                continue;
            }
            placed.push(bbox);
            for rect in rasterize_polygon(poly) {
                layout.push(rect.translate(ox, oy));
            }
            return;
        }
    }
}

/// Decomposes a simple rectilinear polygon into horizontal slab rectangles
/// (even-odd rule over its vertical edges).
fn rasterize_polygon(poly: &RectilinearPolygon) -> Vec<Rect> {
    let vertices = poly.vertices();
    let n = vertices.len();
    // Vertical edges as (x, y_low, y_high).
    let mut edges: Vec<(Coord, Coord, Coord)> = Vec::new();
    let mut ys: Vec<Coord> = Vec::new();
    for i in 0..n {
        let a = vertices[i];
        let b = vertices[(i + 1) % n];
        if a.x == b.x {
            edges.push((a.x, a.y.min(b.y), a.y.max(b.y)));
        }
        ys.push(a.y);
    }
    ys.sort_unstable();
    ys.dedup();

    let mut rects = Vec::new();
    for slab in ys.windows(2) {
        let (y0, y1) = (slab[0], slab[1]);
        let mut xs: Vec<Coord> = edges
            .iter()
            .filter(|&&(_, lo, hi)| lo <= y0 && hi >= y1)
            .map(|&(x, _, _)| x)
            .collect();
        xs.sort_unstable();
        for pair in xs.chunks(2) {
            if let [x0, x1] = *pair {
                if x1 > x0 {
                    rects.push(Rect::new(x0, y0, x1, y1).expect("positive extent"));
                }
            }
        }
    }
    rects
}

/// Samples from a weighted list; `None` when empty or all-zero.
fn weighted_sample<T: Copy>(weights: &[(T, u32)], rng: &mut impl Rng) -> Option<T> {
    let total: u64 = weights.iter().map(|&(_, w)| w as u64).sum();
    if total == 0 {
        return None;
    }
    let mut pick = rng.gen_range(0..total);
    for &(item, w) in weights {
        if pick < w as u64 {
            return Some(item);
        }
        pick -= w as u64;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geometry::Layout as GLayout;
    use rand::SeedableRng;

    fn training_patterns() -> Vec<SquishPattern> {
        let mut out = Vec::new();
        for i in 0..6 {
            let mut l = GLayout::new(Rect::new(0, 0, 2048, 2048).unwrap());
            let off = 100 + i * 50;
            l.push(Rect::new(off, 200, off + 400, 1600).unwrap());
            l.push(Rect::new(off + 600, 200, off + 1000, 900).unwrap());
            // An L-shape.
            l.push(Rect::new(100, 1700, 800, 1900).unwrap());
            l.push(Rect::new(100, 1900, 300, 2000).unwrap());
            out.push(SquishPattern::encode(&l.normalized()));
        }
        out
    }

    #[test]
    fn fit_learns_statistics() {
        let model = SequenceModel::fit(&training_patterns(), SequenceModelConfig::default());
        assert!(!model.starts.is_empty());
        assert!(!model.transitions.is_empty());
        assert!(!model.memorised.is_empty());
    }

    #[test]
    fn generates_nonempty_layouts() {
        let model = SequenceModel::fit(&training_patterns(), SequenceModelConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut nonempty = 0;
        for _ in 0..10 {
            let l = model.generate(&mut rng);
            if !l.is_empty() {
                nonempty += 1;
                assert_eq!(l.window().width(), 2048);
            }
        }
        assert!(nonempty >= 8, "only {nonempty}/10 non-empty");
    }

    #[test]
    fn rasterize_rectangle() {
        let poly = RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(10, 5),
            Point::new(0, 5),
        ]);
        let rects = rasterize_polygon(&poly);
        assert_eq!(rects, vec![Rect::new(0, 0, 10, 5).unwrap()]);
    }

    #[test]
    fn rasterize_l_shape_conserves_area() {
        let poly = RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(10, 4),
            Point::new(4, 4),
            Point::new(4, 10),
            Point::new(0, 10),
        ]);
        let rects = rasterize_polygon(&poly);
        let total: i128 = rects.iter().map(Rect::area).sum();
        assert_eq!(total, poly.area());
    }

    #[test]
    fn generated_patterns_vary() {
        let model = SequenceModel::fit(&training_patterns(), SequenceModelConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = model.generate(&mut rng);
        let b = model.generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn weighted_sample_respects_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let weights = [(1usize, 0u32), (2, 10)];
        for _ in 0..20 {
            assert_eq!(weighted_sample(&weights, &mut rng), Some(2));
        }
        assert_eq!(weighted_sample::<usize>(&[], &mut rng), None);
    }
}
