//! Baselines for the Table I comparison.
//!
//! The paper compares DiffPattern against four learning-based generators:
//!
//! * **CAE** \[7\] — a convolutional auto-encoder; new topologies come from
//!   decoding perturbed latent codes of training samples, thresholding the
//!   continuous output ([`Cae`]),
//! * **VCAE** \[8\] — a variational CAE sampling latents from the prior
//!   ([`Vcae`]),
//! * **LegalGAN** \[8\] — a learned post-processor that *modifies* a
//!   generated topology towards legality; reproduced as a rule-guided
//!   morphological legalizer with the same interface and effect direction
//!   ([`MorphLegalizer`]; see DESIGN.md substitution table),
//! * **LayouTransformer** \[9\] — sequential polygon generation; reproduced
//!   as an order-2 Markov model over polygon edge tokens with physical
//!   coordinates ([`SequenceModel`]).
//!
//! All baselines are *honest small-scale models*: their diversity and
//! legality numbers in the benchmark harness are measured, not scripted.
//! Pixel-based baselines produce a topology and borrow geometric vectors
//! from the training set ([`assign_borrowed_deltas`]) — the implicit,
//! learned delta assignment the paper criticises — so their legality losses
//! arise from the same mechanism as in the original systems: nothing in the
//! loop guarantees the design rules.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ae;
mod cae;
mod delta_assign;
mod legalgan;
mod sequence;
mod validity;
mod vcae;

pub use ae::AeConfig;
pub use cae::Cae;
pub use delta_assign::assign_borrowed_deltas;
pub use legalgan::MorphLegalizer;
pub use sequence::{SequenceModel, SequenceModelConfig};
pub use validity::ValidityScorer;
pub use vcae::Vcae;
