//! The *pattern validity* metric of Zhang et al. (paper ref. \[8\]) — and
//! the reason DiffPattern refuses to be scored by it (paper §IV-F).
//!
//! Validity scores a generated pattern by how well an encoder-decoder
//! model *pre-trained on the training set* can reconstruct it: patterns
//! that share features with the training distribution reconstruct well and
//! score high. The paper's §IV-F argues the metric is counterproductive
//! for pattern libraries — legal-but-novel patterns (the whole point of
//! generation) score *worse* than memorised ones, and prior work's
//! generated sets even outscored the held-out test set, a tell-tale sign
//! the metric rewards overfitting. This module implements the metric
//! faithfully so the critique can be demonstrated quantitatively (see
//! `examples/validity_critique.rs`).

use crate::ae::{bce_with_logits, grids_to_tensor, AeConfig, Decoder, Encoder};
use dp_geometry::BitGrid;
use rand::Rng;

/// An encoder-decoder validity scorer in the style of paper ref. \[8\].
#[derive(Debug, Clone)]
pub struct ValidityScorer {
    encoder: Encoder,
    decoder: Decoder,
    config: AeConfig,
    /// Reconstruction-error threshold calibrated on the training set
    /// (95th percentile); patterns below it count as "valid".
    threshold: f64,
}

impl ValidityScorer {
    /// Pre-trains the scorer on the training grids.
    ///
    /// # Panics
    ///
    /// Panics on an empty training set or mismatched grid sides.
    pub fn fit(
        config: AeConfig,
        training: &[BitGrid],
        iterations: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!training.is_empty(), "empty training set");
        let mut encoder = Encoder::new(config, config.latent, rng);
        let mut decoder = Decoder::new(config, rng);
        let mut adam = dp_nn::Adam::new(dp_nn::AdamConfig {
            lr: 2e-3,
            ..dp_nn::AdamConfig::default()
        });
        for _ in 0..iterations {
            let items: Vec<&BitGrid> = (0..8)
                .map(|_| &training[rng.gen_range(0..training.len())])
                .collect();
            let x = grids_to_tensor(&items, config.side);
            let z = encoder.forward(&x);
            let logits = decoder.forward(&z);
            let (_, grad) = bce_with_logits(&logits, &x);
            let gz = decoder.backward(&grad);
            let _ = encoder.backward(&gz);
            let mut params = encoder.params_mut();
            params.extend(decoder.params_mut());
            adam.step(&mut params);
        }
        let mut scorer = ValidityScorer {
            encoder,
            decoder,
            config,
            threshold: f64::INFINITY,
        };
        // Calibrate: the 95th percentile of training reconstruction errors.
        let mut errors: Vec<f64> = training.iter().map(|g| scorer.error(g)).collect();
        errors.sort_by(|a, b| a.partial_cmp(b).expect("finite BCE"));
        let idx = (errors.len() * 95) / 100;
        scorer.threshold = errors[idx.min(errors.len() - 1)];
        scorer
    }

    /// Reconstruction error (mean BCE) of one topology — lower = "more
    /// valid" under the metric's logic.
    ///
    /// # Panics
    ///
    /// Panics when the grid side does not match the configuration.
    pub fn error(&mut self, grid: &BitGrid) -> f64 {
        let x = grids_to_tensor(&[grid], self.config.side);
        let z = self.encoder.forward(&x);
        let logits = self.decoder.forward(&z);
        let (bce, _) = bce_with_logits(&logits, &x);
        bce
    }

    /// `true` when the pattern clears the calibrated threshold.
    pub fn is_valid(&mut self, grid: &BitGrid) -> bool {
        self.error(grid) <= self.threshold
    }

    /// Fraction of a set scoring "valid" — the percentage prior work
    /// reports.
    pub fn validity_pct(&mut self, grids: &[BitGrid]) -> f64 {
        if grids.is_empty() {
            return 0.0;
        }
        let valid = grids
            .iter()
            .filter(|g| {
                let e = self.error(g);
                e <= self.threshold
            })
            .count();
        100.0 * valid as f64 / grids.len() as f64
    }

    /// The calibrated error threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bars(side: usize, start: usize) -> BitGrid {
        let mut g = BitGrid::new(side, side).unwrap();
        g.fill_cells(start, 2, start + 2, side - 2);
        g
    }

    #[test]
    fn training_patterns_score_better_than_noise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = AeConfig {
            side: 16,
            features: 4,
            latent: 8,
        };
        let training: Vec<BitGrid> = (2..12).map(|s| bars(16, s)).collect();
        let mut scorer = ValidityScorer::fit(config, &training, 150, &mut rng);

        let train_err = scorer.error(&training[0]);
        let mut noise = BitGrid::new(16, 16).unwrap();
        use rand::Rng;
        for r in 0..16 {
            for c in 0..16 {
                noise.set(c, r, rng.gen_bool(0.5));
            }
        }
        let noise_err = scorer.error(&noise);
        assert!(
            train_err < noise_err,
            "training {train_err} vs noise {noise_err}"
        );
    }

    #[test]
    fn calibration_accepts_most_training_patterns() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let config = AeConfig {
            side: 16,
            features: 4,
            latent: 8,
        };
        let training: Vec<BitGrid> = (2..12).map(|s| bars(16, s)).collect();
        let mut scorer = ValidityScorer::fit(config, &training, 150, &mut rng);
        let pct = scorer.validity_pct(&training);
        assert!(pct >= 90.0, "training validity {pct}%");
    }

    #[test]
    fn novel_legal_patterns_can_score_worse_than_memorised() {
        // The paper's §IV-F critique in miniature: a perfectly legal but
        // *novel* pattern family (horizontal bars) scores worse under a
        // scorer trained only on vertical bars — the metric punishes
        // exactly the novelty a pattern library needs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let config = AeConfig {
            side: 16,
            features: 4,
            latent: 8,
        };
        let training: Vec<BitGrid> = (2..12).map(|s| bars(16, s)).collect();
        let mut scorer = ValidityScorer::fit(config, &training, 200, &mut rng);

        let memorised_err: f64 =
            training.iter().map(|g| scorer.error(g)).sum::<f64>() / training.len() as f64;
        // Novel family: transposed bars.
        let novel: Vec<BitGrid> = training.iter().map(|g| g.transposed()).collect();
        let novel_err: f64 =
            novel.iter().map(|g| scorer.error(g)).sum::<f64>() / novel.len() as f64;
        assert!(
            novel_err > memorised_err,
            "novel {novel_err} should score worse than memorised {memorised_err}"
        );
    }
}
