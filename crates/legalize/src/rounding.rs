//! Sum-preserving rounding from the continuous relaxation onto the integer
//! nanometre grid.

/// Rounds a positive real vector to integers that are each at least
/// `min_value` and sum exactly to `target`.
///
/// Entries are floored (clamped at `min_value`) and the residual against
/// `target` is distributed one unit at a time: increments go to the largest
/// fractional parts first, decrements to the smallest — never pushing an
/// entry below `min_value`.
///
/// Returns `None` when `target < n * min_value` (no valid rounding exists).
///
/// # Panics
///
/// Panics when `values` is empty or contains a non-finite number.
pub fn round_preserving_sum(values: &[f64], target: i64, min_value: i64) -> Option<Vec<i64>> {
    assert!(!values.is_empty(), "empty vector");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "non-finite value in solver output"
    );
    let n = values.len() as i64;
    if target < n * min_value {
        return None;
    }

    let mut out: Vec<i64> = values
        .iter()
        .map(|&v| (v.floor() as i64).max(min_value))
        .collect();
    let mut diff = target - out.iter().sum::<i64>();

    // Order indices by fractional part, largest first (they deserve the
    // increments most and the decrements least).
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = values[a] - values[a].floor();
        let fb = values[b] - values[b].floor();
        fb.partial_cmp(&fa).expect("finite values")
    });

    while diff != 0 {
        let mut moved = false;
        if diff > 0 {
            for &i in &order {
                if diff == 0 {
                    break;
                }
                out[i] += 1;
                diff -= 1;
                moved = true;
            }
        } else {
            for &i in order.iter().rev() {
                if diff == 0 {
                    break;
                }
                if out[i] > min_value {
                    out[i] -= 1;
                    diff += 1;
                    moved = true;
                }
            }
        }
        if !moved {
            // Every entry is at min_value and we still owe decrements:
            // impossible, but guarded against by the early return.
            return None;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_integers_pass_through() {
        let out = round_preserving_sum(&[10.0, 20.0, 30.0], 60, 1).unwrap();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn residual_goes_to_largest_fraction() {
        let out = round_preserving_sum(&[1.9, 1.1, 1.0], 5, 1).unwrap();
        assert_eq!(out.iter().sum::<i64>(), 5);
        assert_eq!(out[0], 2, "largest fraction gets the extra unit");
    }

    #[test]
    fn clamps_to_minimum() {
        let out = round_preserving_sum(&[0.2, 0.3, 9.5], 10, 1).unwrap();
        assert!(out.iter().all(|&v| v >= 1));
        assert_eq!(out.iter().sum::<i64>(), 10);
    }

    #[test]
    fn impossible_target_is_none() {
        assert!(round_preserving_sum(&[1.0, 1.0, 1.0], 2, 1).is_none());
    }

    proptest! {
        #[test]
        fn always_sums_and_respects_min(
            values in proptest::collection::vec(0.01f64..100.0, 1..32),
            extra in 0i64..500,
        ) {
            let n = values.len() as i64;
            let target = n + extra; // always >= n * 1
            if let Some(out) = round_preserving_sum(&values, target, 1) {
                prop_assert_eq!(out.iter().sum::<i64>(), target);
                prop_assert!(out.iter().all(|&v| v >= 1));
            } else {
                prop_assert!(target < n);
            }
        }
    }
}
