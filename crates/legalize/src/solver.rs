use crate::rounding::round_preserving_sum;
use crate::SolveError;
use dp_drc::{ConstraintSet, DesignRules};
use dp_geometry::{BitGrid, Coord};
use dp_squish::SquishPattern;
use rand::Rng;

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Required Σ Δx (the tile width, paper: 2048 nm).
    pub target_width: Coord,
    /// Required Σ Δy.
    pub target_height: Coord,
    /// Projection iterations per attempt.
    pub max_iterations: usize,
    /// Random restarts before reporting infeasibility.
    pub max_restarts: usize,
    /// Slack in nm added to the linear minima during the continuous solve
    /// so integer rounding cannot break them.
    pub margin: f64,
}

impl SolverConfig {
    /// Defaults for a `width x height` window.
    pub fn for_window(width: Coord, height: Coord) -> Self {
        SolverConfig {
            target_width: width,
            target_height: height,
            max_iterations: 500,
            max_restarts: 8,
            margin: 2.0,
        }
    }
}

/// Initialisation strategy — the Solving-R / Solving-E distinction of
/// paper Table II.
#[derive(Debug, Clone, Copy)]
pub enum Init<'a> {
    /// Solving-R: random positive intervals, scaled to the window.
    Random,
    /// Solving-E: start from an existing pattern's geometric vectors
    /// (resampled to the topology's variable counts when lengths differ).
    /// The paper reports this converging ~2.3x faster.
    Existing(&'a [Coord], &'a [Coord]),
}

/// Convergence statistics for one successful solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Projection iterations spent (across restarts).
    pub iterations: usize,
    /// Restarts used (0 = first attempt succeeded).
    pub restarts: usize,
}

/// Full accounting of a [`Solver::solve_many_report`] run: distinct
/// solutions plus how many attempts were unsolvable or duplicated an
/// earlier solution (`solutions.len() + failures + duplicates` equals the
/// requested count).
#[derive(Debug, Clone, Default)]
pub struct SolveManyReport {
    /// The distinct legal assignments found.
    pub solutions: Vec<Solution>,
    /// Attempts the solver could not legalize at all.
    pub failures: usize,
    /// Attempts that solved but duplicated an earlier solution.
    pub duplicates: usize,
}

/// A legal geometric-vector assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Interval lengths along x (sum = `target_width`).
    pub dx: Vec<Coord>,
    /// Interval lengths along y (sum = `target_height`).
    pub dy: Vec<Coord>,
    /// Convergence statistics.
    pub stats: SolveStats,
}

/// The white-box legalization solver (paper §III-D).
#[derive(Debug, Clone)]
pub struct Solver {
    rules: DesignRules,
    config: SolverConfig,
}

impl Solver {
    /// Creates a solver for the given rules and window configuration.
    pub fn new(rules: DesignRules, config: SolverConfig) -> Self {
        Solver { rules, config }
    }

    /// The rules in force.
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// The configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Solves Eq. 14 for `topology`, returning integer Δ vectors that the
    /// independent DRC oracle accepts.
    ///
    /// # Errors
    ///
    /// * [`SolveError::WindowTooSmall`] when the topology has more scan
    ///   intervals than nanometres available,
    /// * [`SolveError::Infeasible`] when the iteration/restart budget is
    ///   exhausted (the caller should drop the topology, as the paper
    ///   does).
    pub fn solve(
        &self,
        topology: &BitGrid,
        init: Init<'_>,
        rng: &mut impl Rng,
    ) -> Result<Solution, SolveError> {
        let cols = topology.width();
        let rows = topology.height();
        if (cols as i64) > self.config.target_width {
            return Err(SolveError::WindowTooSmall {
                variables: cols,
                target: self.config.target_width,
            });
        }
        if (rows as i64) > self.config.target_height {
            return Err(SolveError::WindowTooSmall {
                variables: rows,
                target: self.config.target_height,
            });
        }
        let constraints = ConstraintSet::extract(topology, &self.rules);

        let mut total_iterations = 0;
        for restart in 0..=self.config.max_restarts {
            // Solving-E applies to the first attempt; restarts re-randomise.
            let (mut u, mut v) = match (restart, init) {
                (0, Init::Existing(dx, dy)) => (
                    resample(dx, cols, self.config.target_width as f64),
                    resample(dy, rows, self.config.target_height as f64),
                ),
                _ => (
                    random_intervals(cols, self.config.target_width as f64, rng),
                    random_intervals(rows, self.config.target_height as f64, rng),
                ),
            };

            for iteration in 0..self.config.max_iterations {
                total_iterations += 1;
                let satisfied = self.projection_pass(&constraints, &mut u, &mut v);
                if satisfied {
                    if let Some(solution) = self.round_and_validate(&constraints, &u, &v) {
                        return Ok(Solution {
                            stats: SolveStats {
                                iterations: total_iterations,
                                restarts: restart,
                            },
                            ..solution
                        });
                    }
                    // Rounding broke a constraint: jitter slightly and keep
                    // iterating with the margin doing its work.
                    let _ = iteration;
                }
            }
        }
        Err(SolveError::Infeasible {
            iterations: self.config.max_iterations,
            restarts: self.config.max_restarts,
        })
    }

    /// Draws up to `count` *distinct* legal assignments for one topology
    /// (paper Fig. 7 / DiffPattern-L). Attempts that fail or duplicate an
    /// earlier solution are dropped, so the result can be shorter than
    /// `count`.
    pub fn solve_many(
        &self,
        topology: &BitGrid,
        count: usize,
        rng: &mut impl Rng,
    ) -> Vec<Solution> {
        self.solve_many_report(topology, count, rng).solutions
    }

    /// As [`Solver::solve_many`], but accounts for every attempt: callers
    /// tracking failure statistics (e.g. the DiffPattern-L report) can see
    /// how many of the `count` requested variants were unsolvable versus
    /// merely duplicates, instead of silently receiving a shorter vector.
    pub fn solve_many_report(
        &self,
        topology: &BitGrid,
        count: usize,
        rng: &mut impl Rng,
    ) -> SolveManyReport {
        let mut report = SolveManyReport::default();
        for _ in 0..count {
            match self.solve(topology, Init::Random, rng) {
                Ok(s) => {
                    if report
                        .solutions
                        .iter()
                        .any(|o| o.dx == s.dx && o.dy == s.dy)
                    {
                        report.duplicates += 1;
                    } else {
                        report.solutions.push(s);
                    }
                }
                Err(_) => report.failures += 1,
            }
        }
        report
    }

    /// Convenience: solve and assemble the full squish pattern.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from [`Solver::solve`].
    pub fn legal_pattern(
        &self,
        topology: &BitGrid,
        init: Init<'_>,
        rng: &mut impl Rng,
    ) -> Result<SquishPattern, SolveError> {
        let solution = self.solve(topology, init, rng)?;
        Ok(
            SquishPattern::new(topology.clone(), solution.dx, solution.dy)
                .expect("solver output matches topology shape"),
        )
    }

    /// One alternating-projection pass. Returns `true` when every
    /// constraint already held (with margin) *before* any fix was applied.
    fn projection_pass(&self, cs: &ConstraintSet, u: &mut [f64], v: &mut [f64]) -> bool {
        let mut satisfied = true;
        let width_req = self.rules.width_min() as f64 + self.config.margin;
        let space_req = self.rules.space_min() as f64 + self.config.margin;

        for &(a, b) in cs.x_width() {
            satisfied &= !raise_range(u, a, b, width_req);
        }
        for &(a, b) in cs.x_space() {
            satisfied &= !raise_range(u, a, b, space_req);
        }
        project_sum(u, self.config.target_width as f64);
        for &(a, b) in cs.y_width() {
            satisfied &= !raise_range(v, a, b, width_req);
        }
        for &(a, b) in cs.y_space() {
            satisfied &= !raise_range(v, a, b, space_req);
        }
        project_sum(v, self.config.target_height as f64);

        // Area constraints: one exact first-order correction per polygon.
        let span = (self.rules.area_max() - self.rules.area_min()) as f64;
        let area_margin = (span * 0.02).min(64.0) + self.config.margin;
        let lo = self.rules.area_min() as f64 + area_margin;
        let hi = self.rules.area_max() as f64 - area_margin;
        for cells in cs.polygons() {
            let area: f64 = cells.iter().map(|&(c, r)| u[c] * v[r]).sum();
            let target = if area < lo {
                lo
            } else if area > hi {
                hi
            } else {
                continue;
            };
            satisfied = false;
            area_step(cells, u, v, area, target);
        }
        if !satisfied {
            project_sum(u, self.config.target_width as f64);
            project_sum(v, self.config.target_height as f64);
        }
        satisfied
    }

    /// Rounds the continuous point to the integer grid and validates it
    /// against the independent oracle.
    fn round_and_validate(&self, cs: &ConstraintSet, u: &[f64], v: &[f64]) -> Option<Solution> {
        let dx = round_preserving_sum(u, self.config.target_width, 1)?;
        let dy = round_preserving_sum(v, self.config.target_height, 1)?;
        cs.is_satisfied(&dx, &dy, &self.rules).then(|| Solution {
            dx,
            dy,
            stats: SolveStats::default(),
        })
    }
}

/// Raises `values[a..b]` so their sum reaches `required`; returns `true`
/// when a fix was needed.
fn raise_range(values: &mut [f64], a: usize, b: usize, required: f64) -> bool {
    let sum: f64 = values[a..b].iter().sum();
    if sum >= required {
        return false;
    }
    let bump = (required - sum) / (b - a) as f64;
    for value in &mut values[a..b] {
        *value += bump;
    }
    true
}

/// Projects onto `{ x >= 1, Σx = target }`.
fn project_sum(values: &mut [f64], target: f64) {
    const MIN: f64 = 1.0;
    for _ in 0..16 {
        let sum: f64 = values.iter().sum();
        let err = target - sum;
        if err.abs() < 1e-9 {
            return;
        }
        if err > 0.0 {
            let each = err / values.len() as f64;
            for v in values.iter_mut() {
                *v += each;
            }
        } else {
            let slack: f64 = values.iter().map(|v| (v - MIN).max(0.0)).sum();
            if slack <= 0.0 {
                for v in values.iter_mut() {
                    *v = MIN;
                }
                return;
            }
            let ratio = ((slack + err).max(0.0)) / slack;
            for v in values.iter_mut() {
                *v = MIN + (*v - MIN).max(0.0) * ratio;
            }
        }
    }
}

/// Moves a polygon's area to `target` with one first-order step along the
/// area gradient, clamping entries at 1.
fn area_step(cells: &[(usize, usize)], u: &mut [f64], v: &mut [f64], area: f64, target: f64) {
    let mut gu = vec![0.0f64; u.len()];
    let mut gv = vec![0.0f64; v.len()];
    for &(c, r) in cells {
        gu[c] += v[r];
        gv[r] += u[c];
    }
    let norm_sq: f64 =
        gu.iter().map(|g| g * g).sum::<f64>() + gv.iter().map(|g| g * g).sum::<f64>();
    if norm_sq <= 1e-12 {
        return;
    }
    let t = (target - area) / norm_sq;
    for (value, g) in u.iter_mut().zip(&gu) {
        *value = (*value + t * g).max(1.0);
    }
    for (value, g) in v.iter_mut().zip(&gv) {
        *value = (*value + t * g).max(1.0);
    }
}

/// Random positive intervals scaled to sum to `target`.
fn random_intervals(n: usize, target: f64, rng: &mut impl Rng) -> Vec<f64> {
    let mut values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.2..1.8)).collect();
    let sum: f64 = values.iter().sum();
    for v in &mut values {
        *v *= target / sum;
        *v = v.max(1.0);
    }
    values
}

/// Resamples an existing Δ vector onto `n` variables, preserving the
/// profile shape, then scales to `target` (Solving-E initialisation).
fn resample(existing: &[Coord], n: usize, target: f64) -> Vec<f64> {
    if existing.is_empty() {
        return vec![target / n as f64; n];
    }
    let mut values: Vec<f64> = (0..n)
        .map(|i| {
            let src = i * existing.len() / n;
            existing[src] as f64
        })
        .collect();
    let sum: f64 = values.iter().sum();
    if sum <= 0.0 {
        return vec![target / n as f64; n];
    }
    for v in &mut values {
        *v *= target / sum;
        *v = v.max(1.0);
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rules() -> DesignRules {
        DesignRules::standard()
    }

    fn solver() -> Solver {
        Solver::new(rules(), SolverConfig::for_window(2048, 2048))
    }

    fn two_bars() -> BitGrid {
        BitGrid::from_ascii(
            ".....
             .#.#.
             .#.#.
             .....",
        )
        .unwrap()
    }

    #[test]
    fn solves_simple_topology() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let s = solver().solve(&two_bars(), Init::Random, &mut rng).unwrap();
        assert_eq!(s.dx.len(), 5);
        assert_eq!(s.dy.len(), 4);
        assert_eq!(s.dx.iter().sum::<Coord>(), 2048);
        assert_eq!(s.dy.iter().sum::<Coord>(), 2048);
        let cs = ConstraintSet::extract(&two_bars(), &rules());
        assert!(cs.is_satisfied(&s.dx, &s.dy, &rules()));
    }

    #[test]
    fn solutions_pass_full_drc() {
        // The decisive cross-check: a solved pattern must be clean under the
        // *complete* DRC engine, not just the constraint oracle.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let topo = BitGrid::from_ascii(
            ".......
             .##.##.
             .#...#.
             .#.###.
             .......",
        )
        .unwrap();
        let pattern = solver()
            .legal_pattern(&topo, Init::Random, &mut rng)
            .unwrap();
        let report = dp_drc::check_pattern(&pattern, &rules());
        assert!(report.is_clean(), "{:?}", report.violations());
    }

    #[test]
    fn empty_topology_is_trivially_legal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let topo = BitGrid::new(8, 8).unwrap();
        let s = solver().solve(&topo, Init::Random, &mut rng).unwrap();
        assert_eq!(s.dx.iter().sum::<Coord>(), 2048);
        assert!(s.dx.iter().all(|&d| d >= 1));
    }

    #[test]
    fn window_too_small_is_detected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let topo = BitGrid::new(16, 16).unwrap();
        let tiny = Solver::new(rules(), SolverConfig::for_window(8, 2048));
        assert!(matches!(
            tiny.solve(&topo, Init::Random, &mut rng),
            Err(SolveError::WindowTooSmall { .. })
        ));
    }

    #[test]
    fn infeasible_rules_are_reported() {
        // space_min + width_min far beyond what the window can hold for a
        // dense comb topology.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let topo = BitGrid::from_ascii(
            "........
             .#.#.#.#
             .#.#.#.#
             ........",
        )
        .unwrap();
        let harsh = DesignRules::builder()
            .space_min(400)
            .width_min(400)
            .area_range(1, i128::MAX / 4)
            .build()
            .unwrap();
        let s = Solver::new(
            harsh,
            SolverConfig {
                max_iterations: 60,
                max_restarts: 2,
                ..SolverConfig::for_window(1000, 1000)
            },
        );
        assert!(matches!(
            s.solve(&topo, Init::Random, &mut rng),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn solving_e_initialisation_works() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        // Use a legal existing pattern's deltas (same shape here).
        let dx = vec![400, 300, 300, 300, 748];
        let dy = vec![500, 500, 500, 548];
        let s = solver()
            .solve(&two_bars(), Init::Existing(&dx, &dy), &mut rng)
            .unwrap();
        let cs = ConstraintSet::extract(&two_bars(), &rules());
        assert!(cs.is_satisfied(&s.dx, &s.dy, &rules()));
    }

    #[test]
    fn solving_e_with_mismatched_lengths() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let dx = vec![1024, 1024];
        let dy = vec![2048];
        let s = solver()
            .solve(&two_bars(), Init::Existing(&dx, &dy), &mut rng)
            .unwrap();
        assert_eq!(s.dx.len(), 5);
        assert_eq!(s.dy.len(), 4);
    }

    #[test]
    fn solve_many_report_accounts_for_every_attempt() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let report = solver().solve_many_report(&two_bars(), 6, &mut rng);
        assert_eq!(
            report.solutions.len() + report.failures + report.duplicates,
            6
        );
        // Infeasible rules: every attempt must be accounted as a failure.
        let harsh = DesignRules::builder()
            .space_min(400)
            .width_min(400)
            .area_range(1, i128::MAX / 4)
            .build()
            .unwrap();
        let s = Solver::new(
            harsh,
            SolverConfig {
                max_iterations: 40,
                max_restarts: 1,
                ..SolverConfig::for_window(1000, 1000)
            },
        );
        let topo = BitGrid::from_ascii(
            "........
             .#.#.#.#
             .#.#.#.#
             ........",
        )
        .unwrap();
        let report = s.solve_many_report(&topo, 4, &mut rng);
        assert!(report.solutions.is_empty());
        assert_eq!(report.failures, 4);
    }

    #[test]
    fn solve_many_produces_distinct_solutions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let solutions = solver().solve_many(&two_bars(), 6, &mut rng);
        assert!(solutions.len() >= 4, "only {} solutions", solutions.len());
        for (i, a) in solutions.iter().enumerate() {
            for b in &solutions[i + 1..] {
                assert!(a.dx != b.dx || a.dy != b.dy, "duplicate solutions");
            }
        }
        let cs = ConstraintSet::extract(&two_bars(), &rules());
        for s in &solutions {
            assert!(cs.is_satisfied(&s.dx, &s.dy, &rules()));
        }
    }

    #[test]
    fn different_rules_give_legal_patterns_from_same_topology() {
        // Paper Fig. 8: same topology, three rule sets.
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let topo = two_bars();
        for rules in [
            DesignRules::standard(),
            DesignRules::larger_space(),
            DesignRules::smaller_area(),
        ] {
            let s = Solver::new(rules, SolverConfig::for_window(2048, 2048));
            let pattern = s.legal_pattern(&topo, Init::Random, &mut rng).unwrap();
            let report = dp_drc::check_pattern(&pattern, &rules);
            assert!(
                report.is_clean(),
                "rules {rules}: {:?}",
                report.violations()
            );
        }
    }

    #[test]
    fn stats_are_recorded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let s = solver().solve(&two_bars(), Init::Random, &mut rng).unwrap();
        assert!(s.stats.iterations >= 1);
        assert_eq!(s.stats.restarts, 0);
    }
}
