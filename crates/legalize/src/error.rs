use std::fmt;

/// Error type for the legalization solver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The topology has more scan intervals than the target window can hold
    /// at one nanometre each — no assignment can exist.
    WindowTooSmall {
        /// Number of variables on the axis.
        variables: usize,
        /// Target sum for the axis.
        target: i64,
    },
    /// The solver exhausted its iteration/restart budget without finding a
    /// point satisfying every constraint. The paper (§III-D) notes such
    /// cases are removed from the generated set; callers should drop the
    /// topology.
    Infeasible {
        /// Projection iterations spent in the last attempt.
        iterations: usize,
        /// Restarts attempted.
        restarts: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::WindowTooSmall { variables, target } => write!(
                f,
                "{variables} scan intervals cannot fit a window of {target} nm"
            ),
            SolveError::Infeasible {
                iterations,
                restarts,
            } => write!(
                f,
                "no legal assignment found after {restarts} restarts x {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SolveError::WindowTooSmall {
            variables: 4096,
            target: 2048,
        };
        assert!(e.to_string().contains("4096"));
    }
}
