//! 2-D legal pattern assessment (paper §III-D).
//!
//! Given a generated topology matrix and a set of design rules, DiffPattern
//! restores a *legal* layout pattern by solving for geometric vectors Δx,
//! Δy satisfying the nonlinear system of paper Eq. 14:
//!
//! ```text
//! δx_i, δy_j > 0                                   positivity
//! Σ δx_i = √C·M,  Σ δy_j = √C·M                     window pinning
//! Σ_{i∈[a,b)} δ ≥ Space_min      ∀ (a,b) ∈ Set_S    spacing
//! Σ_{i∈[a,b)} δ ≥ Width_min      ∀ (a,b) ∈ Set_W    width
//! Σ δx_i·δy_j ∈ [Area_min, Area_max]  ∀ polygon     area
//! ```
//!
//! Everything except the bilinear area family is linear, so the solver uses
//! alternating projections (deficit spreading + sum re-projection) with an
//! exact first-order correction step for the area constraints, then rounds
//! to the integer nanometre grid with sum preservation. A solution is only
//! returned after it passes the *independent* oracle
//! [`dp_drc::ConstraintSet::is_satisfied`], so "legal by construction"
//! really holds (this is cross-checked against the full DRC engine in the
//! tests).
//!
//! Two entry points mirror the paper's Table II:
//!
//! * **Solving-R** — random initialisation ([`Solver::solve`] with
//!   [`Init::Random`]),
//! * **Solving-E** — initialisation from an existing pattern's geometric
//!   vectors, which the paper reports converging ~2.3x faster
//!   ([`Init::Existing`]).
//!
//! Multiple distinct solutions for a single topology (paper Fig. 7,
//! DiffPattern-L) come from [`Solver::solve_many`].
//!
//! # Example
//!
//! ```
//! use dp_drc::DesignRules;
//! use dp_geometry::BitGrid;
//! use dp_legalize::{Init, Solver, SolverConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topology = BitGrid::from_ascii(
//!     ".....
//!      .#.#.
//!      .#.#.
//!      .....",
//! )?;
//! let rules = DesignRules::standard();
//! let solver = Solver::new(rules, SolverConfig::for_window(2048, 2048));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let solution = solver.solve(&topology, Init::Random, &mut rng)?;
//! assert_eq!(solution.dx.iter().sum::<i64>(), 2048);
//! assert_eq!(solution.dy.iter().sum::<i64>(), 2048);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod rounding;
mod solver;

pub use error::SolveError;
pub use rounding::round_preserving_sum;
pub use solver::{Init, Solution, SolveManyReport, SolveStats, Solver, SolverConfig};
