//! Per-lane conditioning for the reverse diffusion chain: region-frozen
//! inpainting and hotspot-avoidance guidance.
//!
//! A [`Conditioning`] travels with a generation lane and bends its reverse
//! chain without touching any other lane:
//!
//! * **[`FrozenRegion`]** — diffusion inpainting. Masked entries are
//!   re-clamped to their known values after every reverse step, but
//!   *q-sampled at the step's noise level* (one Bernoulli flip per masked
//!   entry with `b̄_k`, exactly [`crate::forward_sample`]'s kernel) so the
//!   intermediate states the denoiser sees stay on the forward-process
//!   manifold. Only the final step clamps the exact bits.
//! * **[`MotifGuidance`]** — the terminal categorical draw's logits are
//!   reweighted to steer mass away from a DRC hotspot motif. The only
//!   motif today is [`Motif::IsolatedCell`]: each matrix cell's logit is
//!   biased towards its 4-neighbourhood consensus, suppressing the
//!   single-cell features and single-cell gaps that materialise as
//!   min-width / min-space / min-area violations.
//!
//! Both parts compose in one `Conditioning`, and the empty value
//! ([`Conditioning::none`]) is the unconditioned sampler: it draws no extra
//! randomness and perturbs no probability, so unconditioned lanes remain
//! bit-identical with or without the conditioning plumbing. A conditioned
//! lane draws its extra flips from *its own* RNG stream, keeping every
//! lane's output a pure function of `(seed, index, conditioning)`.

use crate::DiffusionError;
use rand::Rng;
use std::sync::Arc;

/// Logits saturate past this probability clamp; keeps the guidance bias
/// finite at p ∈ {0, 1}.
const LOGIT_EPS: f64 = 1e-9;

/// Known bits to hold fixed through the reverse chain (diffusion
/// inpainting). `mask` and `bits` are full-tensor, channel-major (the
/// [`dp_squish::DeepSquishTensor::bits`] order); `bits[i]` is only
/// meaningful where `mask[i]` is set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrozenRegion {
    mask: Arc<[bool]>,
    bits: Arc<[bool]>,
}

impl FrozenRegion {
    /// Builds a frozen region from a same-length mask/bits pair.
    ///
    /// # Errors
    ///
    /// [`DiffusionError::ConditioningMismatch`] when the lengths differ.
    pub fn new(mask: Vec<bool>, bits: Vec<bool>) -> Result<Self, DiffusionError> {
        if mask.len() != bits.len() {
            return Err(DiffusionError::ConditioningMismatch {
                mask: mask.len(),
                bits: bits.len(),
            });
        }
        Ok(FrozenRegion {
            mask: mask.into(),
            bits: bits.into(),
        })
    }

    /// The frozen-entry mask, channel-major over the whole tensor.
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// The target values, channel-major; meaningful only under the mask.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Tensor length this region was built for.
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// `true` when the mask covers zero entries (still a valid region).
    pub fn is_empty(&self) -> bool {
        !self.mask.iter().any(|&m| m)
    }

    /// Overwrites masked entries of `state` with the frozen bits q-sampled
    /// at noise level `flip` (= `b̄_k` of the step just reached): one RNG
    /// draw per masked entry, in entry order.
    pub(crate) fn write_noised(&self, flip: f64, state: &mut [bool], rng: &mut impl Rng) {
        debug_assert_eq!(state.len(), self.mask.len());
        for (i, bit) in state.iter_mut().enumerate() {
            if self.mask[i] {
                // XOR with a Bernoulli(b̄_k) flip — forward_sample's kernel.
                *bit = self.bits[i] != rng.gen_bool(flip);
            }
        }
    }

    /// Clamps masked entries of `state` to their exact frozen values (the
    /// final-step form; draws nothing).
    pub(crate) fn write_exact(&self, state: &mut [bool]) {
        debug_assert_eq!(state.len(), self.mask.len());
        for (i, bit) in state.iter_mut().enumerate() {
            if self.mask[i] {
                *bit = self.bits[i];
            }
        }
    }
}

/// A hotspot motif class the guidance steers away from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Motif {
    /// Single-cell features and single-cell gaps: the topology motifs that
    /// become min-width, min-space and min-area violations once physical
    /// Δ vectors are assigned.
    IsolatedCell,
}

impl Motif {
    /// Stable lowercase name (the wire/CLI preset token).
    pub fn name(self) -> &'static str {
        match self {
            Motif::IsolatedCell => "isolated-cell",
        }
    }

    /// Parses a preset token produced by [`Motif::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "isolated-cell" => Some(Motif::IsolatedCell),
            _ => None,
        }
    }
}

/// Logit reweighting of the terminal categorical draw, parameterised by a
/// [`Motif`] and a positive weight (the logit bias scale; values around
/// 1–4 are gentle-to-firm, derived from `dp_drc` rule margins upstream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotifGuidance {
    motif: Motif,
    weight: f64,
}

impl MotifGuidance {
    /// Builds a guidance term.
    ///
    /// # Errors
    ///
    /// [`DiffusionError::BadGuidanceWeight`] when `weight` is not a finite
    /// positive number.
    pub fn new(motif: Motif, weight: f64) -> Result<Self, DiffusionError> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(DiffusionError::BadGuidanceWeight { weight });
        }
        Ok(MotifGuidance { motif, weight })
    }

    /// The motif class being avoided.
    pub fn motif(&self) -> Motif {
        self.motif
    }

    /// The logit bias scale.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Rewrites a lane's `p1` buffer in place, biasing each entry's logit
    /// by the motif rule evaluated on the *unbiased* probabilities in
    /// `base` (a caller-provided copy of `p1`, so the pass reads
    /// pre-guidance neighbours). Deterministic, draws nothing.
    ///
    /// # Panics
    ///
    /// Panics when `channels` is not a perfect square (guidance reasons in
    /// unfolded matrix coordinates, which need the fold's patch size).
    pub(crate) fn reweight(&self, channels: usize, side: usize, base: &[f64], p1: &mut [f64]) {
        let patch = (channels as f64).sqrt().round() as usize;
        assert_eq!(
            patch * patch,
            channels,
            "guidance needs a square channel count"
        );
        debug_assert_eq!(base.len(), channels * side * side);
        debug_assert_eq!(p1.len(), base.len());
        let matrix = side * patch;
        // Folded index of unfolded matrix cell (x, y): channel (pi, pj)
        // holds the cells congruent to (pj, pi) mod patch.
        let entry = |x: usize, y: usize| -> usize {
            let (pj, n) = (x % patch, x / patch);
            let (pi, m) = (y % patch, y / patch);
            (pi * patch + pj) * side * side + m * side + n
        };
        match self.motif {
            Motif::IsolatedCell => {
                for y in 0..matrix {
                    for x in 0..matrix {
                        let mut sum = 0.0;
                        let mut count = 0.0;
                        if x > 0 {
                            sum += base[entry(x - 1, y)];
                            count += 1.0;
                        }
                        if x + 1 < matrix {
                            sum += base[entry(x + 1, y)];
                            count += 1.0;
                        }
                        if y > 0 {
                            sum += base[entry(x, y - 1)];
                            count += 1.0;
                        }
                        if y + 1 < matrix {
                            sum += base[entry(x, y + 1)];
                            count += 1.0;
                        }
                        if count == 0.0 {
                            continue;
                        }
                        let e = entry(x, y);
                        let p = base[e].clamp(LOGIT_EPS, 1.0 - LOGIT_EPS);
                        // Consensus in [-1, 1]: positive when the
                        // neighbourhood leans filled.
                        let consensus = 2.0 * (sum / count) - 1.0;
                        let logit = (p / (1.0 - p)).ln() + self.weight * consensus;
                        p1[e] = 1.0 / (1.0 + (-logit).exp());
                    }
                }
            }
        }
    }
}

/// Everything a lane's reverse chain is conditioned on. The empty value is
/// the unconditioned sampler; a frozen region and a guidance term compose
/// freely.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Conditioning {
    frozen: Option<FrozenRegion>,
    avoid: Option<MotifGuidance>,
}

impl Conditioning {
    /// The unconditioned value: draws no extra randomness, perturbs no
    /// probability — sampling under it is bit-identical to the
    /// conditioning-free sampler.
    pub fn none() -> Self {
        Conditioning::default()
    }

    /// `true` when no constraint is attached.
    pub fn is_none(&self) -> bool {
        self.frozen.is_none() && self.avoid.is_none()
    }

    /// Attaches (replaces) a frozen region.
    #[must_use]
    pub fn with_frozen(mut self, region: FrozenRegion) -> Self {
        self.frozen = Some(region);
        self
    }

    /// Attaches (replaces) a motif-avoidance guidance term.
    #[must_use]
    pub fn with_avoid(mut self, guidance: MotifGuidance) -> Self {
        self.avoid = Some(guidance);
        self
    }

    /// The frozen region, if any.
    pub fn frozen(&self) -> Option<&FrozenRegion> {
        self.frozen.as_ref()
    }

    /// The guidance term, if any.
    pub fn avoid(&self) -> Option<&MotifGuidance> {
        self.avoid.as_ref()
    }

    /// Checks the conditioning against a concrete tensor geometry: the
    /// frozen mask/bits must span exactly `entries` values.
    pub fn matches_entries(&self, entries: usize) -> bool {
        self.frozen.as_ref().is_none_or(|f| f.len() == entries)
    }

    /// A content hash suitable for a micro-batch plan key: two lanes may
    /// share a lock-step chunk only when their whole plan — including this
    /// hash — matches. [`Conditioning::none`] hashes to 0 so unconditioned
    /// batching keys are stable across processes.
    pub fn plan_hash(&self) -> u64 {
        if self.is_none() {
            return 0;
        }
        // FNV-1a over a canonical byte rendering.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        match &self.frozen {
            None => eat(0),
            Some(region) => {
                eat(1);
                for chunk in region.mask().chunks(8) {
                    let mut b = 0u8;
                    for (i, &v) in chunk.iter().enumerate() {
                        b |= (v as u8) << i;
                    }
                    eat(b);
                }
                eat(2);
                for chunk in region.bits().chunks(8) {
                    let mut b = 0u8;
                    for (i, &v) in chunk.iter().enumerate() {
                        b |= (v as u8) << i;
                    }
                    eat(b);
                }
            }
        }
        match &self.avoid {
            None => eat(0),
            Some(g) => {
                eat(3);
                eat(match g.motif() {
                    Motif::IsolatedCell => 1,
                });
                for byte in g.weight().to_bits().to_le_bytes() {
                    eat(byte);
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_is_none_and_hashes_to_zero() {
        let c = Conditioning::none();
        assert!(c.is_none());
        assert_eq!(c.plan_hash(), 0);
        assert!(c.matches_entries(0));
        assert!(c.matches_entries(64));
    }

    #[test]
    fn frozen_region_rejects_length_mismatch() {
        let err = FrozenRegion::new(vec![true; 4], vec![false; 5]).unwrap_err();
        assert_eq!(
            err,
            DiffusionError::ConditioningMismatch { mask: 4, bits: 5 }
        );
    }

    #[test]
    fn guidance_rejects_bad_weights() {
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(MotifGuidance::new(Motif::IsolatedCell, w).is_err());
        }
        assert!(MotifGuidance::new(Motif::IsolatedCell, 2.0).is_ok());
    }

    #[test]
    fn motif_names_round_trip() {
        let m = Motif::IsolatedCell;
        assert_eq!(Motif::from_name(m.name()), Some(m));
        assert_eq!(Motif::from_name("no-such-motif"), None);
    }

    #[test]
    fn plan_hash_distinguishes_contents() {
        let region = |bit: bool| FrozenRegion::new(vec![true; 8], vec![bit; 8]).unwrap();
        let a = Conditioning::none().with_frozen(region(false));
        let b = Conditioning::none().with_frozen(region(true));
        assert_ne!(a.plan_hash(), b.plan_hash());
        assert_ne!(a.plan_hash(), 0);
        // Same contents, independently built: same hash.
        let a2 = Conditioning::none().with_frozen(region(false));
        assert_eq!(a.plan_hash(), a2.plan_hash());
        // Adding guidance changes the key.
        let g = MotifGuidance::new(Motif::IsolatedCell, 1.5).unwrap();
        assert_ne!(a.plan_hash(), a.clone().with_avoid(g).plan_hash());
        // Mask vs bits are domain-separated: swapping which side carries
        // the payload must not collide.
        let swapped = Conditioning::none()
            .with_frozen(FrozenRegion::new(vec![false; 8], vec![true; 8]).unwrap());
        let masked = Conditioning::none()
            .with_frozen(FrozenRegion::new(vec![true; 8], vec![false; 8]).unwrap());
        assert_ne!(swapped.plan_hash(), masked.plan_hash());
    }

    #[test]
    fn matches_entries_checks_frozen_length() {
        let c = Conditioning::none()
            .with_frozen(FrozenRegion::new(vec![false; 64], vec![false; 64]).unwrap());
        assert!(c.matches_entries(64));
        assert!(!c.matches_entries(63));
    }

    #[test]
    fn write_exact_only_touches_masked_entries() {
        let mask = vec![true, false, true, false];
        let bits = vec![true, true, false, true];
        let region = FrozenRegion::new(mask, bits).unwrap();
        let mut state = vec![false, false, true, false];
        region.write_exact(&mut state);
        assert_eq!(state, vec![true, false, false, false]);
    }

    #[test]
    fn write_noised_draws_once_per_masked_entry() {
        // flip = 0.0 reproduces write_exact while still consuming one draw
        // per masked entry — the determinism contract the engine relies on.
        let region = FrozenRegion::new(vec![true, false, true], vec![true, true, false]).unwrap();
        let mut a = vec![false; 3];
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        region.write_noised(0.0, &mut a, &mut rng);
        assert_eq!(a, vec![true, false, false]);
        // flip = 1.0 inverts every frozen bit deterministically.
        let mut b = vec![false; 3];
        region.write_noised(1.0, &mut b, &mut rng);
        assert_eq!(b, vec![false, false, true]);
    }

    #[test]
    fn guidance_pulls_isolated_cells_towards_neighbour_consensus() {
        // One channel, 4x4 matrix: a lone near-certain "on" cell in an
        // empty field must be pushed down; a near-certain "off" cell in a
        // filled field must be pushed up.
        let g = MotifGuidance::new(Motif::IsolatedCell, 4.0).unwrap();
        let mut low = vec![0.05f64; 16];
        low[5] = 0.9;
        let base = low.clone();
        g.reweight(1, 4, &base, &mut low);
        assert!(low[5] < 0.9, "isolated dot not suppressed: {}", low[5]);
        let mut high = vec![0.95f64; 16];
        high[10] = 0.1;
        let base = high.clone();
        g.reweight(1, 4, &base, &mut high);
        assert!(high[10] > 0.1, "isolated gap not filled: {}", high[10]);
        // A cell agreeing with its neighbours barely moves direction-wise:
        // consensus pushes it further towards the shared value.
        assert!(low[0] <= 0.05 + 1e-12);
    }

    #[test]
    fn guidance_reads_pre_bias_neighbours() {
        // The pass must read neighbour probabilities from `base`, not from
        // the partially rewritten buffer: rewriting in scan order would
        // otherwise make the result depend on traversal direction.
        let g = MotifGuidance::new(Motif::IsolatedCell, 2.0).unwrap();
        let base: Vec<f64> = (0..16).map(|i| (i as f64 + 0.5) / 17.0).collect();
        let mut forward = base.clone();
        g.reweight(1, 4, &base, &mut forward);
        // Recompute each entry independently from base — must match.
        for e in 0..16 {
            let mut solo = base.clone();
            g.reweight(1, 4, &base, &mut solo);
            assert_eq!(solo[e], forward[e]);
        }
    }
}
