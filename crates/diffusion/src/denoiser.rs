use crate::loss::{p1_of_logits, p1_of_logits_append, p1_of_logits_into};
use dp_nn::{Tensor, UNet, Workspace};
use dp_squish::DeepSquishTensor;

/// A reverse-process model: predicts, for every entry of a noisy topology
/// tensor, the probability that the *clean* entry is one.
///
/// Abstracting the network behind this trait lets the sampler and its tests
/// validate the diffusion mathematics with closed-form denoisers
/// ([`OracleDenoiser`], [`UniformDenoiser`]) before any training happens,
/// and lets downstream users plug in their own models.
pub trait Denoiser {
    /// For each batch item `i`, returns `p_θ(x̃0 = 1 | x_k)` per entry in
    /// the [`DeepSquishTensor::bits`] order. `ks[i]` is the 1-based
    /// diffusion step of item `i`.
    fn predict_p1(&mut self, xks: &[DeepSquishTensor], ks: &[usize]) -> Vec<Vec<f64>>;
}

/// The inference-time counterpart of [`Denoiser`]: prediction from a
/// *shared* reference, with no gradient caching and no internal mutation,
/// so one model can serve many threads simultaneously (`Sync`).
///
/// [`crate::TrainedModel`] and the batch-generation engines build on this
/// trait; [`NeuralDenoiser`] implements it through the U-Net's dedicated
/// `&self` forward path ([`dp_nn::UNet::infer`]).
pub trait InferenceDenoiser: Sync {
    /// As [`Denoiser::predict_p1`], from `&self`.
    fn infer_p1(&self, xks: &[DeepSquishTensor], ks: &[usize]) -> Vec<Vec<f64>>;

    /// Single-item prediction into a caller-provided buffer, drawing all
    /// scratch memory from `ws` — the allocation-free path the sampling
    /// hot loop uses. The default implementation falls back to
    /// [`InferenceDenoiser::infer_p1`] (correct but allocating); neural
    /// implementations override it.
    fn infer_p1_into(
        &self,
        xk: &DeepSquishTensor,
        k: usize,
        ws: &mut Workspace,
        out: &mut Vec<f64>,
    ) {
        let _ = ws;
        let p1 = self.infer_p1(std::slice::from_ref(xk), &[k]).swap_remove(0);
        out.clear();
        out.extend_from_slice(&p1);
    }

    /// Lock-step micro-batch prediction: all of `xks` sit at the **same**
    /// diffusion step `k`, and the per-entry probabilities of every item
    /// are written into `out` concatenated in item order (`out.len() ==
    /// xks.len() * entries`). The contract is that item `i`'s slice is
    /// **bit-identical** to what [`InferenceDenoiser::infer_p1_into`]
    /// would produce for that item alone — the batched sampler relies on
    /// this to keep micro-batched chains equal to sequential ones.
    ///
    /// The default implementation loops over [`infer_p1_into`]
    /// (trivially satisfying the contract, but evaluating the model once
    /// per item and allocating a temporary); neural implementations
    /// override it with one stacked model evaluation.
    ///
    /// [`infer_p1_into`]: InferenceDenoiser::infer_p1_into
    fn infer_p1_batch_into(
        &self,
        xks: &[DeepSquishTensor],
        k: usize,
        ws: &mut Workspace,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let mut lane = Vec::new();
        for xk in xks {
            self.infer_p1_into(xk, k, ws, &mut lane);
            out.extend_from_slice(&lane);
        }
    }
}

/// The production denoiser: a [`UNet`] consuming `±1`-mapped bits and
/// producing two logits per entry.
#[derive(Debug, Clone)]
pub struct NeuralDenoiser {
    unet: UNet,
    channels: usize,
}

impl NeuralDenoiser {
    /// Wraps a U-Net whose input channel count is the squish channel count
    /// `C` and whose output channel count is `2C`.
    ///
    /// # Panics
    ///
    /// Panics when the network's channel counts violate that contract.
    pub fn new(unet: UNet) -> Self {
        let channels = unet.config().in_channels;
        assert_eq!(
            unet.config().out_channels,
            2 * channels,
            "denoiser U-Net must output 2 logits per input channel"
        );
        NeuralDenoiser { unet, channels }
    }

    /// Squish channel count `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The wrapped network.
    pub fn unet(&self) -> &UNet {
        &self.unet
    }

    /// Mutable access to the wrapped network (for the trainer).
    pub fn unet_mut(&mut self) -> &mut UNet {
        &mut self.unet
    }

    /// Maps a batch of bit tensors to the network input (`false → -1`,
    /// `true → +1`), the conditioning the trainer also uses.
    pub fn batch_to_input(xks: &[DeepSquishTensor]) -> Tensor {
        let n = xks.len();
        assert!(n > 0, "empty batch");
        let c = xks[0].channels();
        let side = xks[0].side();
        let mut data = Vec::with_capacity(n * c * side * side);
        for xk in xks {
            assert_eq!(
                (xk.channels(), xk.side()),
                (c, side),
                "batch shape mismatch"
            );
            data.extend(xk.bits().iter().map(|&b| if b { 1.0f32 } else { -1.0 }));
        }
        Tensor::from_vec(&[n, c, side, side], data)
    }

    /// Runs the network and returns the raw logit tensor `(n, 2C, M, M)` —
    /// used by the trainer, which needs logits rather than probabilities.
    pub fn forward_logits(&mut self, xks: &[DeepSquishTensor], ks: &[usize]) -> Tensor {
        let input = Self::batch_to_input(xks);
        self.unet.forward(&input, ks)
    }

    /// Writes one tensor's `±1`-mapped bits into a workspace tensor.
    fn input_into(xk: &DeepSquishTensor, ws: &mut Workspace) -> Tensor {
        let (c, side) = (xk.channels(), xk.side());
        let mut input = ws.take_uninit(&[1, c, side, side]);
        for (v, &b) in input.data_mut().iter_mut().zip(xk.bits()) {
            *v = if b { 1.0 } else { -1.0 };
        }
        input
    }
}

impl Denoiser for NeuralDenoiser {
    fn predict_p1(&mut self, xks: &[DeepSquishTensor], ks: &[usize]) -> Vec<Vec<f64>> {
        let logits = self.forward_logits(xks, ks);
        (0..xks.len())
            .map(|ni| p1_of_logits(&logits, ni, self.channels))
            .collect()
    }
}

impl InferenceDenoiser for NeuralDenoiser {
    fn infer_p1(&self, xks: &[DeepSquishTensor], ks: &[usize]) -> Vec<Vec<f64>> {
        let input = Self::batch_to_input(xks);
        let logits = self.unet.infer(&input, ks, &mut Workspace::new());
        (0..xks.len())
            .map(|ni| p1_of_logits(&logits, ni, self.channels))
            .collect()
    }

    fn infer_p1_into(
        &self,
        xk: &DeepSquishTensor,
        k: usize,
        ws: &mut Workspace,
        out: &mut Vec<f64>,
    ) {
        let input = Self::input_into(xk, ws);
        let logits = self.unet.infer(&input, &[k], ws);
        ws.recycle(input);
        p1_of_logits_into(&logits, 0, self.channels, out);
        ws.recycle(logits);
    }

    fn infer_p1_batch_into(
        &self,
        xks: &[DeepSquishTensor],
        k: usize,
        ws: &mut Workspace,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        let Some(first) = xks.first() else { return };
        // One stacked evaluation: the U-Net's per-item bit-equality
        // guarantee (see `dp_nn::UNet::infer`, "Batch invariance") makes
        // each lane's probabilities equal to a single-item call.
        let (n, c, side) = (xks.len(), first.channels(), first.side());
        let mut input = ws.take_uninit(&[n, c, side, side]);
        let entries = c * side * side;
        for (ni, xk) in xks.iter().enumerate() {
            assert_eq!(
                (xk.channels(), xk.side()),
                (c, side),
                "batch shape mismatch"
            );
            let lane = &mut input.data_mut()[ni * entries..(ni + 1) * entries];
            for (v, &b) in lane.iter_mut().zip(xk.bits()) {
                *v = if b { 1.0 } else { -1.0 };
            }
        }
        let steps = ws.take_steps(k, n);
        let logits = self.unet.infer(&input, &steps, ws);
        ws.put_steps(steps);
        ws.recycle(input);
        for ni in 0..n {
            p1_of_logits_append(&logits, ni, self.channels, out);
        }
        ws.recycle(logits);
    }
}

/// A denoiser that knows the true clean sample — used to validate the
/// sampler: with high confidence, ancestral sampling from pure noise must
/// reconstruct `x0` (see the sampler tests).
#[derive(Debug, Clone)]
pub struct OracleDenoiser {
    x0: DeepSquishTensor,
    confidence: f64,
}

impl OracleDenoiser {
    /// Creates an oracle believing in `x0` with probability `confidence`.
    ///
    /// # Panics
    ///
    /// Panics when `confidence` is not in `(0, 1)`.
    pub fn new(x0: DeepSquishTensor, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        OracleDenoiser { x0, confidence }
    }
}

impl OracleDenoiser {
    fn oracle_p1(&self, xks: &[DeepSquishTensor]) -> Vec<Vec<f64>> {
        xks.iter()
            .map(|_| {
                self.x0
                    .bits()
                    .iter()
                    .map(|&b| {
                        if b {
                            self.confidence
                        } else {
                            1.0 - self.confidence
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

impl Denoiser for OracleDenoiser {
    fn predict_p1(&mut self, xks: &[DeepSquishTensor], _ks: &[usize]) -> Vec<Vec<f64>> {
        self.oracle_p1(xks)
    }
}

impl InferenceDenoiser for OracleDenoiser {
    fn infer_p1(&self, xks: &[DeepSquishTensor], _ks: &[usize]) -> Vec<Vec<f64>> {
        self.oracle_p1(xks)
    }
}

/// A denoiser with no information: `p1 = 0.5` everywhere. Sampling with it
/// keeps the chain at the uniform stationary distribution — the null model
/// for statistical tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformDenoiser;

impl UniformDenoiser {
    /// Creates the denoiser.
    pub fn new() -> Self {
        UniformDenoiser
    }
}

impl Denoiser for UniformDenoiser {
    fn predict_p1(&mut self, xks: &[DeepSquishTensor], _ks: &[usize]) -> Vec<Vec<f64>> {
        xks.iter().map(|xk| vec![0.5; xk.bits().len()]).collect()
    }
}

impl InferenceDenoiser for UniformDenoiser {
    fn infer_p1(&self, xks: &[DeepSquishTensor], _ks: &[usize]) -> Vec<Vec<f64>> {
        xks.iter().map(|xk| vec![0.5; xk.bits().len()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_nn::UNetConfig;
    use rand::SeedableRng;

    #[test]
    fn batch_to_input_maps_signs() {
        let t = DeepSquishTensor::from_bits(1, 2, vec![true, false, false, true]).unwrap();
        let x = NeuralDenoiser::batch_to_input(&[t]);
        assert_eq!(x.shape(), &[1, 1, 2, 2]);
        assert_eq!(x.data(), &[1.0, -1.0, -1.0, 1.0]);
    }

    #[test]
    fn neural_denoiser_output_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = UNetConfig {
            in_channels: 4,
            out_channels: 8,
            base_channels: 4,
            channel_mults: vec![1, 1],
            num_res_blocks: 1,
            attn_resolutions: vec![],
            time_dim: 8,
            groups: 2,
            dropout: 0.0,
        };
        let mut d = NeuralDenoiser::new(dp_nn::UNet::new(&config, &mut rng));
        let t = DeepSquishTensor::from_bits(4, 4, vec![false; 64]).unwrap();
        let p = d.predict_p1(&[t.clone(), t], &[1, 5]);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].len(), 64);
        assert!(p[0].iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "2 logits")]
    fn neural_denoiser_rejects_bad_head() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let config = UNetConfig {
            in_channels: 2,
            out_channels: 3,
            base_channels: 4,
            channel_mults: vec![1],
            num_res_blocks: 1,
            attn_resolutions: vec![],
            time_dim: 8,
            groups: 2,
            dropout: 0.0,
        };
        let _ = NeuralDenoiser::new(dp_nn::UNet::new(&config, &mut rng));
    }

    #[test]
    fn infer_p1_matches_eval_predict_p1() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let config = UNetConfig {
            in_channels: 4,
            out_channels: 8,
            base_channels: 4,
            channel_mults: vec![1, 1],
            num_res_blocks: 1,
            attn_resolutions: vec![],
            time_dim: 8,
            groups: 2,
            dropout: 0.3, // identity in both eval paths
        };
        let mut d = NeuralDenoiser::new(dp_nn::UNet::new(&config, &mut rng));
        let t = DeepSquishTensor::from_bits(4, 4, vec![true; 64]).unwrap();
        let shared = d.infer_p1(std::slice::from_ref(&t), &[3]);
        let exclusive = d.predict_p1(std::slice::from_ref(&t), &[3]);
        assert_eq!(shared, exclusive);
    }

    #[test]
    fn neural_batched_infer_matches_per_item_infer_bitwise() {
        // The override must honour the `infer_p1_batch_into` contract:
        // each lane's slice equals the single-item path bit-for-bit.
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let config = UNetConfig {
            in_channels: 4,
            out_channels: 8,
            base_channels: 4,
            channel_mults: vec![1, 1],
            num_res_blocks: 1,
            attn_resolutions: vec![1],
            time_dim: 8,
            groups: 2,
            dropout: 0.0,
        };
        let d = NeuralDenoiser::new(dp_nn::UNet::new(&config, &mut rng));
        for n in [1usize, 3, 8] {
            let xks: Vec<DeepSquishTensor> = (0..n)
                .map(|i| {
                    let bits = (0..64).map(|j| (i * 7 + j) % 3 == 0).collect();
                    DeepSquishTensor::from_bits(4, 4, bits).unwrap()
                })
                .collect();
            let mut ws = Workspace::new();
            let mut batched = Vec::new();
            d.infer_p1_batch_into(&xks, 5, &mut ws, &mut batched);
            assert_eq!(batched.len(), n * 64);
            let mut solo = Vec::new();
            for (li, xk) in xks.iter().enumerate() {
                d.infer_p1_into(xk, 5, &mut ws, &mut solo);
                assert_eq!(&batched[li * 64..(li + 1) * 64], &solo[..], "lane {li}");
            }
        }
        // Empty batch: clears the buffer, touches nothing.
        let mut ws = Workspace::new();
        let mut out = vec![0.5; 3];
        d.infer_p1_batch_into(&[], 5, &mut ws, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn oracle_reports_x0() {
        let x0 = DeepSquishTensor::from_bits(1, 2, vec![true, false, true, false]).unwrap();
        let mut oracle = OracleDenoiser::new(x0.clone(), 0.9);
        let noisy = DeepSquishTensor::from_bits(1, 2, vec![false; 4]).unwrap();
        let p = oracle.predict_p1(&[noisy], &[3]);
        let expected = [0.9, 0.1, 0.9, 0.1];
        for (a, b) in p[0].iter().zip(expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_is_half() {
        let t = DeepSquishTensor::from_bits(1, 2, vec![true; 4]).unwrap();
        let p = UniformDenoiser::new().predict_p1(&[t], &[1]);
        assert!(p[0].iter().all(|&v| v == 0.5));
    }
}
