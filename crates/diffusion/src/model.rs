//! The immutable, shareable artifact of training: [`TrainedModel`].
//!
//! The paper's workflow trains once (17 GPU-hours) and then samples from
//! the frozen model indefinitely. `TrainedModel` makes that split explicit
//! in the type system: it owns the U-Net weights, the noise schedule and
//! the fold geometry, exposes only `&self` operations (so one model can
//! serve any number of sampling threads simultaneously), and serialises to
//! a single self-describing blob — architecture, schedule, geometry and
//! weights together — replacing the old "save raw weights, rebuild the
//! pipeline, `load_params`, `mark_trained`" dance.

use crate::{DiffusionError, InferenceDenoiser, NeuralDenoiser, NoiseSchedule, Sampler};
use dp_nn::{load_params, save_params, Precision, UNet, UNetConfig};
use dp_squish::DeepSquishTensor;
use rand::{Rng, SeedableRng};

/// Magic bytes identifying a serialised model blob.
const MAGIC: &[u8; 8] = b"DPMODEL\x01";
/// Blob format version. Version 2 added the prepack precision field
/// (version-1 blobs load as [`Precision::Exact`]).
const VERSION: u32 = 2;

/// A trained discrete-diffusion model: U-Net weights, noise schedule and
/// fold geometry, frozen into an immutable value.
///
/// Everything on this type takes `&self` and the type is `Sync`, so a
/// single instance can be shared by reference across worker threads —
/// the foundation of `GenerationSession`'s thread-parallel batch
/// generation in the facade crate.
///
/// Obtain one from [`crate::Trainer::finish`] after training, or restore a
/// previously saved model with [`TrainedModel::load`].
#[derive(Debug, Clone)]
pub struct TrainedModel {
    denoiser: NeuralDenoiser,
    schedule: NoiseSchedule,
    side: usize,
    precision: Precision,
}

impl TrainedModel {
    /// Assembles a model from its parts. `side` is the spatial side of the
    /// folded topology tensors the network was trained on.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::BadModelBlob`] when `side` is zero or the
    /// fold channel count is not a perfect square.
    pub fn new(
        denoiser: NeuralDenoiser,
        schedule: NoiseSchedule,
        side: usize,
    ) -> Result<Self, DiffusionError> {
        Self::new_with_precision(denoiser, schedule, side, Precision::Exact)
    }

    /// [`TrainedModel::new`] with an explicit prepack precision (see
    /// [`Precision`]): `Exact` keeps inference bit-identical to the
    /// training forward pass; `Bf16` rounds the frozen packed weight
    /// copies to bfloat16 for faster, slightly lossy sampling. The master
    /// weights stay f32 either way, so [`TrainedModel::save`] is lossless.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrainedModel::new`].
    pub fn new_with_precision(
        mut denoiser: NeuralDenoiser,
        schedule: NoiseSchedule,
        side: usize,
        precision: Precision,
    ) -> Result<Self, DiffusionError> {
        if side == 0 {
            return Err(DiffusionError::BadModelBlob {
                reason: "zero spatial side".into(),
            });
        }
        let channels = denoiser.channels();
        let patch = (channels as f64).sqrt() as usize;
        if patch * patch != channels {
            return Err(DiffusionError::BadModelBlob {
                reason: format!("fold channel count {channels} is not a perfect square"),
            });
        }
        // Freeze point: the weights are final, so precompute every
        // layer's packed/transposed GEMM operand once. Sampling then
        // never re-reshapes a kernel tensor.
        denoiser.unet_mut().prepack_with(precision);
        Ok(TrainedModel {
            denoiser,
            schedule,
            side,
            precision,
        })
    }

    /// The precision the packed inference weights were built at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// A copy of this model re-prepacked at `precision`. The underlying
    /// f32 master weights are shared history — only the frozen packed GEMM
    /// operands are rebuilt — so converting `Bf16 -> Exact` recovers the
    /// bit-exact model.
    pub fn with_precision(&self, precision: Precision) -> TrainedModel {
        let mut copy = self.clone();
        if precision != self.precision {
            copy.denoiser.unet_mut().prepack_with(precision);
            copy.precision = precision;
        }
        copy
    }

    /// Fold channel count `C` of the Deep Squish tensors.
    pub fn channels(&self) -> usize {
        self.denoiser.channels()
    }

    /// Spatial side of the folded tensors the model samples.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Side of the unfolded topology matrix (`side * √C`) — the scan-line
    /// grid the legalization solver works on.
    pub fn matrix_side(&self) -> usize {
        self.side * (self.channels() as f64).sqrt() as usize
    }

    /// The noise schedule the model was trained under.
    pub fn schedule(&self) -> &NoiseSchedule {
        &self.schedule
    }

    /// The wrapped denoiser.
    pub fn denoiser(&self) -> &NeuralDenoiser {
        &self.denoiser
    }

    /// A sampler over this model's schedule.
    pub fn sampler(&self) -> Sampler {
        Sampler::new(self.schedule.clone())
    }

    /// Convenience: draws one topology tensor through the full ancestral
    /// chain (see [`Sampler`] for respaced and traced variants).
    pub fn sample_one(&self, rng: &mut impl Rng) -> DeepSquishTensor {
        self.sampler()
            .sample_one_infer(self, self.channels(), self.side, rng)
    }

    /// Serialises the model — architecture, schedule, geometry and weights
    /// — into one self-describing little-endian blob.
    pub fn save(&self) -> Vec<u8> {
        let config = self.denoiser.unet().config();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        let push = |buf: &mut Vec<u8>, v: usize| buf.extend_from_slice(&(v as u32).to_le_bytes());
        push(&mut buf, config.in_channels);
        push(&mut buf, config.out_channels);
        push(&mut buf, config.base_channels);
        push(&mut buf, config.channel_mults.len());
        for &m in &config.channel_mults {
            push(&mut buf, m);
        }
        push(&mut buf, config.num_res_blocks);
        push(&mut buf, config.attn_resolutions.len());
        for &a in &config.attn_resolutions {
            push(&mut buf, a);
        }
        push(&mut buf, config.time_dim);
        push(&mut buf, config.groups);
        buf.extend_from_slice(&config.dropout.to_le_bytes());
        push(&mut buf, self.side);
        push(
            &mut buf,
            match self.precision {
                Precision::Exact => 0,
                Precision::Bf16 => 1,
            },
        );
        push(&mut buf, self.schedule.steps());
        for &b in self.schedule.betas() {
            buf.extend_from_slice(&b.to_le_bytes());
        }
        buf.extend_from_slice(&save_params(&self.denoiser.unet().params()));
        buf
    }

    /// Restores a model from a blob produced by [`TrainedModel::save`].
    ///
    /// # Errors
    ///
    /// * [`DiffusionError::BadModelBlob`] for header/geometry corruption,
    /// * [`DiffusionError::BadSchedule`] for invalid schedule values,
    /// * [`DiffusionError::Weights`] when the weight payload does not match
    ///   the declared architecture.
    pub fn load(blob: &[u8]) -> Result<Self, DiffusionError> {
        let mut r = Reader::new(blob);
        if blob.len() < 12 || &blob[..8] != MAGIC {
            return Err(bad("missing DPMODEL header"));
        }
        r.skip(8);
        let version = r.u32()?;
        if version == 0 || version > VERSION {
            return Err(bad("unsupported format version"));
        }
        let in_channels = r.u32()? as usize;
        let out_channels = r.u32()? as usize;
        if in_channels == 0 {
            return Err(bad("zero input channels"));
        }
        if out_channels != 2 * in_channels {
            return Err(bad(
                "head contract violated: out_channels != 2 * in_channels",
            ));
        }
        let base_channels = r.u32()? as usize;
        if base_channels == 0 || base_channels > 8192 {
            return Err(bad("implausible base channel count"));
        }
        let mults_len = r.u32()? as usize;
        if mults_len == 0 || mults_len > 16 {
            return Err(bad("implausible channel_mults length"));
        }
        let channel_mults = (0..mults_len)
            .map(|_| r.u32().map(|v| v as usize))
            .collect::<Result<Vec<_>, _>>()?;
        if channel_mults.iter().any(|&m| m == 0 || m > 64) {
            return Err(bad("implausible channel multiplier"));
        }
        let num_res_blocks = r.u32()? as usize;
        if num_res_blocks == 0 || num_res_blocks > 64 {
            return Err(bad("implausible residual block count"));
        }
        let attn_len = r.u32()? as usize;
        if attn_len > 16 {
            return Err(bad("implausible attn_resolutions length"));
        }
        let attn_resolutions = (0..attn_len)
            .map(|_| r.u32().map(|v| v as usize))
            .collect::<Result<Vec<_>, _>>()?;
        let time_dim = r.u32()? as usize;
        if time_dim == 0 || !time_dim.is_multiple_of(2) || time_dim > 65_536 {
            return Err(bad("implausible time embedding dimension"));
        }
        let groups = r.u32()? as usize;
        if groups == 0 || groups > 8192 {
            return Err(bad("implausible group count"));
        }
        let dropout = f32::from_bits(r.u32()?);
        if !(0.0..1.0).contains(&dropout) {
            return Err(bad("dropout outside [0, 1)"));
        }
        let side = r.u32()? as usize;
        if side == 0 || side > 65_536 {
            return Err(bad("implausible spatial side"));
        }
        // Version 1 predates the precision field and always meant exact.
        let precision = if version >= 2 {
            match r.u32()? {
                0 => Precision::Exact,
                1 => Precision::Bf16,
                other => return Err(bad(&format!("unknown precision tag {other}"))),
            }
        } else {
            Precision::Exact
        };
        let steps = r.u32()? as usize;
        if steps == 0 || steps > 1 << 20 {
            return Err(bad("implausible diffusion step count"));
        }
        let betas = (0..steps).map(|_| r.f64()).collect::<Result<Vec<_>, _>>()?;
        let schedule = NoiseSchedule::from_beta_values(betas)?;

        let config = UNetConfig {
            in_channels,
            out_channels,
            base_channels,
            channel_mults,
            num_res_blocks,
            attn_resolutions,
            time_dim,
            groups,
            dropout,
        };
        // Weight values are fully overwritten below; the init RNG only
        // determines the (discarded) random starting point. Construction
        // asserts internal consistency rules (e.g. GroupNorm divisibility)
        // that the field checks above cannot cheaply enumerate, so a
        // corrupt header that slipped past them is converted into an error
        // here instead of tearing the process down.
        let mut unet = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // dp-lint: allow(rng-discipline): fixed-seed init RNG whose output is fully overwritten by load_params below
            let mut init_rng = rand::rngs::StdRng::seed_from_u64(0);
            UNet::new(&config, &mut init_rng)
        }))
        .map_err(|_| bad("architecture declared by the blob is inconsistent"))?;
        load_params(&mut unet.params_mut(), r.rest())?;
        TrainedModel::new_with_precision(NeuralDenoiser::new(unet), schedule, side, precision)
    }
}

impl InferenceDenoiser for TrainedModel {
    fn infer_p1(&self, xks: &[DeepSquishTensor], ks: &[usize]) -> Vec<Vec<f64>> {
        self.denoiser.infer_p1(xks, ks)
    }

    fn infer_p1_into(
        &self,
        xk: &DeepSquishTensor,
        k: usize,
        ws: &mut dp_nn::Workspace,
        out: &mut Vec<f64>,
    ) {
        self.denoiser.infer_p1_into(xk, k, ws, out);
    }

    fn infer_p1_batch_into(
        &self,
        xks: &[DeepSquishTensor],
        k: usize,
        ws: &mut dp_nn::Workspace,
        out: &mut Vec<f64>,
    ) {
        self.denoiser.infer_p1_batch_into(xks, k, ws, out);
    }
}

fn bad(reason: &str) -> DiffusionError {
    DiffusionError::BadModelBlob {
        reason: reason.into(),
    }
}

/// Bounds-checked little-endian read cursor.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn skip(&mut self, n: usize) {
        self.buf = &self.buf[n..];
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DiffusionError> {
        if self.buf.len() < n {
            return Err(bad("truncated blob"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32, DiffusionError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, DiffusionError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn rest(&self) -> &'a [u8] {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TrainConfig, Trainer};
    use dp_nn::AdamConfig;
    use rand::SeedableRng;

    fn tiny_unet(channels: usize) -> UNetConfig {
        UNetConfig {
            in_channels: channels,
            out_channels: 2 * channels,
            base_channels: 8,
            channel_mults: vec![1, 2],
            num_res_blocks: 1,
            attn_resolutions: vec![1],
            time_dim: 16,
            groups: 4,
            dropout: 0.0,
        }
    }

    fn trained_tiny_model(seed: u64) -> TrainedModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let config = TrainConfig {
            batch_size: 4,
            diffusion_steps: 20,
            adam: AdamConfig::default(),
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(&tiny_unet(1), config, &mut rng).unwrap();
        let data: Vec<DeepSquishTensor> = (0..2)
            .map(|phase| {
                let bits = (0..64).map(|i| (i % 8) % 2 == phase).collect();
                DeepSquishTensor::from_bits(1, 8, bits).unwrap()
            })
            .collect();
        let _ = trainer.train(&data, 4, &mut rng).unwrap();
        trainer.finish().unwrap()
    }

    #[test]
    fn save_load_sample_round_trip_is_bit_identical() {
        let model = trained_tiny_model(0);
        let blob = model.save();
        let restored = TrainedModel::load(&blob).unwrap();
        assert_eq!(restored.channels(), model.channels());
        assert_eq!(restored.side(), model.side());
        assert_eq!(restored.schedule(), model.schedule());

        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let a = model.sample_one(&mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let b = restored.sample_one(&mut rng);
        assert_eq!(a, b, "round-tripped model must sample identically");
    }

    #[test]
    fn bf16_model_round_trips_and_recovers_exact() {
        let model = trained_tiny_model(7);
        assert_eq!(model.precision(), Precision::Exact);
        let bf16 = model.with_precision(Precision::Bf16);
        assert_eq!(bf16.precision(), Precision::Bf16);

        let restored = TrainedModel::load(&bf16.save()).unwrap();
        assert_eq!(restored.precision(), Precision::Bf16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a = bf16.sample_one(&mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let b = restored.sample_one(&mut rng);
        assert_eq!(a, b, "bf16 model must survive a save/load round trip");

        // The blob stores f32 master weights, so converting the restored
        // bf16 model back to exact recovers the original bit-for-bit.
        let back = restored.with_precision(Precision::Exact);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let c = back.sample_one(&mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let d = model.sample_one(&mut rng);
        assert_eq!(c, d, "exact model must be recoverable from a bf16 blob");
    }

    #[test]
    fn version1_blob_without_precision_field_loads_as_exact() {
        // tiny_unet(1) layout: ... dropout 56..60, side 60..64,
        // precision 64..68 (v2 only). A v1 blob is the v2 blob with the
        // version field rewritten and the precision word removed.
        let model = trained_tiny_model(6);
        let blob = model.save();
        let mut v1 = blob.clone();
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        v1.drain(64..68);
        let restored = TrainedModel::load(&v1).unwrap();
        assert_eq!(restored.precision(), Precision::Exact);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let a = model.sample_one(&mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let b = restored.sample_one(&mut rng);
        assert_eq!(a, b, "v1 blob must load as the exact model");

        // An unknown precision tag in a v2 blob is rejected cleanly.
        let mut tagged = blob;
        tagged[64..68].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            TrainedModel::load(&tagged),
            Err(DiffusionError::BadModelBlob { .. })
        ));
    }

    #[test]
    fn finish_before_training_errors() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let trainer = Trainer::new(&tiny_unet(1), TrainConfig::default(), &mut rng).unwrap();
        assert!(matches!(trainer.finish(), Err(DiffusionError::NotTrained)));
    }

    #[test]
    fn corrupt_blobs_are_rejected() {
        let model = trained_tiny_model(2);
        let blob = model.save();
        assert!(matches!(
            TrainedModel::load(b"not a model"),
            Err(DiffusionError::BadModelBlob { .. })
        ));
        assert!(matches!(
            TrainedModel::load(&blob[..blob.len() / 3]),
            Err(DiffusionError::BadModelBlob { .. }) | Err(DiffusionError::Weights(_))
        ));
        let mut broken = blob.clone();
        broken[8] ^= 0xff; // version field
        assert!(TrainedModel::load(&broken).is_err());
    }

    #[test]
    fn corrupt_header_fields_error_instead_of_panicking() {
        // tiny_unet(1) header layout: magic 0..8, version 8..12,
        // in 12..16, out 16..20, base 20..24, mults_len 24..28,
        // mults 28..36, num_res 36..40, attn_len 40..44, attn 44..48,
        // time_dim 48..52, groups 52..56.
        let blob = trained_tiny_model(5).save();
        let patch = |offset: usize, value: u32| {
            let mut b = blob.clone();
            b[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
            b
        };
        for (offset, value) in [
            (12, 0),       // zero input channels
            (20, 0),       // zero base channels
            (28, 0),       // zero channel multiplier
            (48, 7),       // odd time_dim
            (52, 0),       // zero groups
            (52, 3),       // groups violating GroupNorm divisibility
            (20, 100_000), // absurd base channel count
        ] {
            assert!(
                matches!(
                    TrainedModel::load(&patch(offset, value)),
                    Err(DiffusionError::BadModelBlob { .. })
                ),
                "field at {offset} = {value} must be rejected cleanly"
            );
        }
    }

    #[test]
    fn matrix_side_accounts_for_fold_patch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let denoiser = NeuralDenoiser::new(UNet::new(&tiny_unet(4), &mut rng));
        let schedule = NoiseSchedule::linear(10, 0.05, 0.5).unwrap();
        let model = TrainedModel::new(denoiser, schedule, 8).unwrap();
        assert_eq!(model.channels(), 4);
        assert_eq!(model.matrix_side(), 16);
    }

    #[test]
    fn non_square_channel_count_is_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let denoiser = NeuralDenoiser::new(UNet::new(&tiny_unet(2), &mut rng));
        let schedule = NoiseSchedule::linear(10, 0.05, 0.5).unwrap();
        assert!(matches!(
            TrainedModel::new(denoiser, schedule, 8),
            Err(DiffusionError::BadModelBlob { .. })
        ));
    }
}
