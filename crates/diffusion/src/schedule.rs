use crate::DiffusionError;
use dp_squish::DeepSquishTensor;
use rand::Rng;

/// The β noise schedule and its cumulative products (paper Eq. 7–8, 10).
///
/// For a binary state space the doubly-stochastic transition matrix
///
/// ```text
/// Q_k = [ 1-β_k   β_k  ]
///       [ β_k    1-β_k ]
/// ```
///
/// is fully described by its *flip probability* β_k, and the cumulative
/// product `Q̄_k = Q_1 … Q_k` stays in the same family with flip probability
/// `b̄_k` following the recurrence `b̄_k = b̄_{k-1}(1-β_k) + (1-b̄_{k-1})β_k`.
/// This is what makes the deep-squish binary representation so convenient:
/// the whole forward process is one Bernoulli flip per entry.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSchedule {
    betas: Vec<f64>,            // betas[k-1] = β_k, k = 1..=K
    cumulative_flips: Vec<f64>, // cumulative_flips[k] = b̄_k, index 0 = 0.0
}

impl NoiseSchedule {
    /// Linearly increasing schedule from `beta1` to `beta_k` over `steps`
    /// steps (paper Eq. 8; the paper uses K = 1000, β: 0.01 → 0.5).
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::BadSchedule`] when `steps == 0` or either β
    /// is outside `(0, 1)`.
    pub fn linear(steps: usize, beta1: f64, beta_k: f64) -> Result<Self, DiffusionError> {
        if steps == 0
            || !(0.0..1.0).contains(&beta1)
            || !(0.0..1.0).contains(&beta_k)
            || beta1 <= 0.0
            || beta_k <= 0.0
        {
            return Err(DiffusionError::BadSchedule {
                steps,
                beta1,
                beta_k,
            });
        }
        let betas: Vec<f64> = (1..=steps)
            .map(|k| {
                if steps == 1 {
                    beta1
                } else {
                    (k - 1) as f64 * (beta_k - beta1) / (steps - 1) as f64 + beta1
                }
            })
            .collect();
        Ok(Self::from_betas(betas))
    }

    /// Constant schedule (used by the ablation benchmarks).
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::BadSchedule`] for invalid parameters.
    pub fn constant(steps: usize, beta: f64) -> Result<Self, DiffusionError> {
        Self::linear(steps, beta, beta)
    }

    fn from_betas(betas: Vec<f64>) -> Self {
        let mut cumulative_flips = Vec::with_capacity(betas.len() + 1);
        cumulative_flips.push(0.0);
        let mut acc = 0.0f64;
        for &b in &betas {
            acc = acc * (1.0 - b) + (1.0 - acc) * b;
            cumulative_flips.push(acc);
        }
        NoiseSchedule {
            betas,
            cumulative_flips,
        }
    }

    /// Number of diffusion steps `K`.
    pub fn steps(&self) -> usize {
        self.betas.len()
    }

    /// The per-step flip probabilities `β_1..β_K` — the schedule's full
    /// description, used by [`crate::TrainedModel`] serialisation.
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// Rebuilds a schedule from explicit per-step flip probabilities (the
    /// inverse of [`NoiseSchedule::betas`]).
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::BadSchedule`] when `betas` is empty or any
    /// entry is outside `(0, 1)`.
    pub fn from_beta_values(betas: Vec<f64>) -> Result<Self, DiffusionError> {
        if betas.is_empty() || betas.iter().any(|&b| b <= 0.0 || b >= 1.0) {
            return Err(DiffusionError::BadSchedule {
                steps: betas.len(),
                beta1: betas.first().copied().unwrap_or(0.0),
                beta_k: betas.last().copied().unwrap_or(0.0),
            });
        }
        Ok(Self::from_betas(betas))
    }

    /// β_k, the single-step flip probability (`k` is 1-based).
    ///
    /// # Panics
    ///
    /// Panics when `k` is outside `1..=K`.
    pub fn beta(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.betas.len(), "step out of range");
        self.betas[k - 1]
    }

    /// `b̄_k`, the cumulative flip probability of `Q̄_k` (Eq. 10);
    /// `cumulative_flip(0) == 0`.
    ///
    /// # Panics
    ///
    /// Panics when `k > K`.
    pub fn cumulative_flip(&self, k: usize) -> f64 {
        assert!(k <= self.betas.len(), "step out of range");
        self.cumulative_flips[k]
    }

    /// Smallest `k` at which the marginal is within `tol` of uniform —
    /// a convergence diagnostic for Eq. 6 (used by the schedule ablation).
    pub fn mixing_step(&self, tol: f64) -> Option<usize> {
        (1..=self.steps()).find(|&k| (self.cumulative_flip(k) - 0.5).abs() < tol)
    }
}

/// Draws `x_k ~ q(x_k | x_0)` by flipping every bit of `x0` independently
/// with probability `b̄_k` (Eq. 10 specialised to the binary case).
///
/// # Panics
///
/// Panics when `k` is outside `1..=K`.
pub fn forward_sample(
    x0: &DeepSquishTensor,
    schedule: &NoiseSchedule,
    k: usize,
    rng: &mut impl Rng,
) -> DeepSquishTensor {
    assert!(k >= 1 && k <= schedule.steps(), "step out of range");
    let flip = schedule.cumulative_flip(k);
    let bits = x0
        .bits()
        .iter()
        .map(|&b| if rng.gen_bool(flip) { !b } else { b })
        .collect();
    DeepSquishTensor::from_bits(x0.channels(), x0.side(), bits)
        .expect("shape preserved by construction")
}

/// Composite flip probability of the transition `Q_{j→k} = Q_{j+1} … Q_k`
/// for `0 <= j < k <= K`: the probability that a bit at step `j` differs at
/// step `k`. Derived from the cumulative recurrence,
/// `f = (b̄_k − b̄_j) / (1 − 2·b̄_j)`.
///
/// # Panics
///
/// Panics when `j >= k` or `k > K`.
pub fn flip_between(schedule: &NoiseSchedule, j: usize, k: usize) -> f64 {
    assert!(j < k && k <= schedule.steps(), "need 0 <= j < k <= K");
    if k == j + 1 {
        // Exact single-step value; the division below loses precision as
        // b̄_j approaches 1/2.
        return schedule.beta(k);
    }
    let bj = schedule.cumulative_flip(j);
    let bk = schedule.cumulative_flip(k);
    let denom = 1.0 - 2.0 * bj;
    if denom < 1e-9 {
        // The state at step j is already (numerically) uniform; any further
        // transition keeps it uniform.
        return 0.5;
    }
    ((bk - bj) / denom).clamp(0.0, 0.5)
}

/// `q(x_j = x_k | x_k, x_0)` for an arbitrary jump `j < k` — the
/// generalisation of Eq. 12 that powers respaced (DDIM-style, paper ref.
/// \[12\]) sampling. With `a = b̄_j` and `f = flip_between(j, k)`:
///
/// * `x_k == x_0`:  `(1-f)(1-a) / ((1-f)(1-a) + f·a)`
/// * `x_k != x_0`:  `(1-f)·a / ((1-f)·a + f·(1-a))`
///
/// # Panics
///
/// Panics when `j >= k` or `k > K`.
pub fn posterior_jump_same_prob(
    schedule: &NoiseSchedule,
    j: usize,
    k: usize,
    xk_equals_x0: bool,
) -> f64 {
    let a = schedule.cumulative_flip(j);
    let f = flip_between(schedule, j, k);
    if xk_equals_x0 {
        let num = (1.0 - f) * (1.0 - a);
        num / (num + f * a)
    } else {
        let num = (1.0 - f) * a;
        num / (num + f * (1.0 - a))
    }
}

/// `q(x_{k-1} = x_k | x_k, x_0)` — the posterior probability that the
/// previous state *equals the current state*, given whether `x_k == x_0`
/// (Eq. 12 specialised to the symmetric binary case; the single-step case
/// of [`posterior_jump_same_prob`]).
///
/// # Panics
///
/// Panics when `k` is outside `1..=K`.
pub fn posterior_same_prob(schedule: &NoiseSchedule, k: usize, xk_equals_x0: bool) -> f64 {
    assert!(k >= 1 && k <= schedule.steps(), "step out of range");
    let a = schedule.cumulative_flip(k - 1);
    let b = schedule.beta(k);
    if xk_equals_x0 {
        let num = (1.0 - b) * (1.0 - a);
        num / (num + b * a)
    } else {
        let num = (1.0 - b) * a;
        num / (num + b * (1.0 - a))
    }
}

/// `p_θ(x_{k-1} = x_k | x_k)` — the probability that the reverse step keeps
/// the current state, obtained by marginalising the posterior over the
/// network's belief `p1 = p_θ(x̃_0 = x_k | x_k)` (Eq. 11).
///
/// # Panics
///
/// Panics when `k` is outside `1..=K` or `p_x0_equals_xk` is not a
/// probability.
pub fn reverse_step_prob(schedule: &NoiseSchedule, k: usize, p_x0_equals_xk: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p_x0_equals_xk),
        "probability out of range"
    );
    let p_same_if_eq = posterior_same_prob(schedule, k, true);
    let p_same_if_ne = posterior_same_prob(schedule, k, false);
    p_x0_equals_xk * p_same_if_eq + (1.0 - p_x0_equals_xk) * p_same_if_ne
}

/// `p_θ(x_j = x_k | x_k)` for an arbitrary reverse jump `j < k` — the
/// respaced counterpart of [`reverse_step_prob`].
///
/// # Panics
///
/// Panics when `j >= k`, `k > K`, or `p_x0_equals_xk` is not a probability.
pub fn reverse_jump_prob(schedule: &NoiseSchedule, j: usize, k: usize, p_x0_equals_xk: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p_x0_equals_xk),
        "probability out of range"
    );
    let p_same_if_eq = posterior_jump_same_prob(schedule, j, k, true);
    let p_same_if_ne = posterior_jump_same_prob(schedule, j, k, false);
    p_x0_equals_xk * p_same_if_eq + (1.0 - p_x0_equals_xk) * p_same_if_ne
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn schedule() -> NoiseSchedule {
        NoiseSchedule::linear(1000, 0.01, 0.5).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(NoiseSchedule::linear(0, 0.1, 0.5).is_err());
        assert!(NoiseSchedule::linear(10, 0.0, 0.5).is_err());
        assert!(NoiseSchedule::linear(10, 0.1, 1.0).is_err());
    }

    #[test]
    fn betas_are_linear_and_increasing() {
        let s = schedule();
        assert!((s.beta(1) - 0.01).abs() < 1e-12);
        assert!((s.beta(1000) - 0.5).abs() < 1e-12);
        for k in 2..=1000 {
            assert!(s.beta(k) > s.beta(k - 1));
        }
    }

    #[test]
    fn cumulative_flip_converges_to_half() {
        // Paper Eq. 6: q(x_K | x_0) -> [0.5, 0.5].
        let s = schedule();
        assert_eq!(s.cumulative_flip(0), 0.0);
        assert!((s.cumulative_flip(1000) - 0.5).abs() < 1e-9);
        // Monotone approach to 1/2 from below.
        for k in 1..=1000 {
            assert!(s.cumulative_flip(k) <= 0.5 + 1e-12);
            assert!(s.cumulative_flip(k) >= s.cumulative_flip(k - 1) - 1e-12);
        }
    }

    #[test]
    fn mixing_step_reports_convergence() {
        let s = schedule();
        let m = s.mixing_step(1e-3).expect("converges");
        assert!(m < 1000, "should mix before the end: {m}");
        // A slower constant schedule mixes later than a hotter one.
        let cold = NoiseSchedule::constant(1000, 0.002).unwrap();
        let hot = NoiseSchedule::constant(1000, 0.05).unwrap();
        let mc = cold.mixing_step(1e-3).unwrap_or(usize::MAX);
        let mh = hot.mixing_step(1e-3).unwrap();
        assert!(mh < mc);
    }

    #[test]
    fn single_step_schedule() {
        let s = NoiseSchedule::linear(1, 0.3, 0.9).unwrap();
        assert_eq!(s.steps(), 1);
        assert!((s.beta(1) - 0.3).abs() < 1e-12);
        assert!((s.cumulative_flip(1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn forward_sample_statistics() {
        let s = schedule();
        let x0 = DeepSquishTensor::from_bits(1, 16, vec![true; 256]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        // Early step: few flips. Late step: about half.
        let early = forward_sample(&x0, &s, 10, &mut rng);
        let late = forward_sample(&x0, &s, 1000, &mut rng);
        let flips_early = early.bits().iter().filter(|&&b| !b).count();
        let flips_late = late.bits().iter().filter(|&&b| !b).count();
        assert!(flips_early < 40, "early flips {flips_early}");
        assert!(
            (flips_late as f64 - 128.0).abs() < 40.0,
            "late flips {flips_late}"
        );
    }

    #[test]
    fn posterior_probabilities_are_normalised_bayes() {
        // Validate Eq. 12 against brute-force Bayes on the 2-state chain.
        let s = NoiseSchedule::linear(50, 0.02, 0.4).unwrap();
        for k in [1usize, 2, 10, 50] {
            let a = s.cumulative_flip(k - 1);
            let b = s.beta(k);
            // Brute force: states 0/1, x0 = 0.
            // P(x_{k-1} = m | x0=0) = a if m==1 else 1-a.
            // P(x_k = j | x_{k-1} = m) = b if j!=m else 1-b.
            for j in [0usize, 1] {
                let joint_m0 = (1.0 - a) * if j == 0 { 1.0 - b } else { b };
                let joint_m1 = a * if j == 1 { 1.0 - b } else { b };
                let brute_same = if j == 0 {
                    joint_m0 / (joint_m0 + joint_m1)
                } else {
                    joint_m1 / (joint_m0 + joint_m1)
                };
                let ours = posterior_same_prob(&s, k, j == 0);
                assert!(
                    (ours - brute_same).abs() < 1e-12,
                    "k={k} j={j}: {ours} vs {brute_same}"
                );
            }
        }
    }

    #[test]
    fn reverse_step_with_perfect_knowledge_denoises() {
        // If the model is certain x0 == xk, the reverse step should strongly
        // prefer keeping the state (for small a).
        let s = schedule();
        let keep = reverse_step_prob(&s, 2, 1.0);
        assert!(keep > 0.95, "{keep}");
        // If the model is certain x0 != xk at the last step, it should be
        // likely to move away.
        let keep = reverse_step_prob(&s, 1000, 0.0);
        assert!(keep < 0.6, "{keep}");
    }

    #[test]
    fn jump_posterior_reduces_to_single_step() {
        let s = NoiseSchedule::linear(100, 0.01, 0.5).unwrap();
        for k in [1usize, 5, 50, 100] {
            for eq in [true, false] {
                assert!(
                    (posterior_jump_same_prob(&s, k - 1, k, eq) - posterior_same_prob(&s, k, eq))
                        .abs()
                        < 1e-15
                );
            }
        }
    }

    #[test]
    fn flip_between_composes() {
        // Flipping j->m then m->k equals flipping j->k.
        let s = NoiseSchedule::linear(100, 0.01, 0.5).unwrap();
        let (j, m, k) = (10usize, 40, 90);
        let f1 = flip_between(&s, j, m);
        let f2 = flip_between(&s, m, k);
        let composed = f1 * (1.0 - f2) + (1.0 - f1) * f2;
        assert!((composed - flip_between(&s, j, k)).abs() < 1e-12);
    }

    #[test]
    fn flip_from_zero_is_cumulative() {
        let s = NoiseSchedule::linear(100, 0.01, 0.5).unwrap();
        for k in [1usize, 10, 100] {
            assert!((flip_between(&s, 0, k) - s.cumulative_flip(k)).abs() < 1e-15);
        }
    }

    proptest! {
        #[test]
        fn reverse_prob_is_convex_mixture(k in 1usize..=100, p in 0.0f64..=1.0) {
            let s = NoiseSchedule::linear(100, 0.01, 0.5).unwrap();
            let lo = posterior_same_prob(&s, k, false).min(posterior_same_prob(&s, k, true));
            let hi = posterior_same_prob(&s, k, false).max(posterior_same_prob(&s, k, true));
            let r = reverse_step_prob(&s, k, p);
            prop_assert!(r >= lo - 1e-12 && r <= hi + 1e-12);
        }

        #[test]
        fn cumulative_flip_recurrence(k in 1usize..=200) {
            let s = NoiseSchedule::linear(200, 0.01, 0.5).unwrap();
            let a = s.cumulative_flip(k - 1);
            let b = s.beta(k);
            let expected = a * (1.0 - b) + (1.0 - a) * b;
            prop_assert!((s.cumulative_flip(k) - expected).abs() < 1e-12);
        }
    }
}
