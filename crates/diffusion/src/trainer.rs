use crate::loss::{vb_loss_and_grad, LossReport};
use crate::schedule::{forward_sample, NoiseSchedule};
use crate::{DiffusionError, NeuralDenoiser, Sampler, TrainedModel};
use dp_nn::{Adam, AdamConfig, UNet, UNetConfig};
use dp_squish::DeepSquishTensor;
use rand::Rng;

/// Training configuration (defaults mirror the paper's §IV-A setup at
/// reduced scale: Adam, learning rate 2e-4, gradient clip 1.0, λ = 0.001,
/// K = 1000 with β linearly 0.01 → 0.5).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Mini-batch size (paper: 128).
    pub batch_size: usize,
    /// Loss balance λ between the KL and auxiliary CE terms.
    pub lambda: f64,
    /// Diffusion steps `K`.
    pub diffusion_steps: usize,
    /// β at step 1.
    pub beta1: f64,
    /// β at step K.
    pub beta_k: f64,
    /// Optimizer settings.
    pub adam: AdamConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 16,
            lambda: 0.001,
            diffusion_steps: 1000,
            beta1: 0.01,
            beta_k: 0.5,
            adam: AdamConfig::default(),
        }
    }
}

/// Loss history of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-iteration loss summaries.
    pub losses: Vec<LossReport>,
}

impl TrainReport {
    /// Mean total loss over the first `n` iterations.
    pub fn head_mean(&self, n: usize) -> f64 {
        let n = n.min(self.losses.len()).max(1);
        self.losses[..n].iter().map(|l| l.total).sum::<f64>() / n as f64
    }

    /// Mean total loss over the last `n` iterations.
    pub fn tail_mean(&self, n: usize) -> f64 {
        let len = self.losses.len();
        let n = n.min(len).max(1);
        self.losses[len - n..].iter().map(|l| l.total).sum::<f64>() / n as f64
    }
}

/// Drives discrete-diffusion training of a [`NeuralDenoiser`]: per
/// iteration it samples clean tensors from the dataset, corrupts them with
/// the closed-form forward process (Eq. 10), and descends the exact
/// variational-bound gradient (Eq. 9).
#[derive(Debug, Clone)]
pub struct Trainer {
    denoiser: NeuralDenoiser,
    adam: Adam,
    schedule: NoiseSchedule,
    config: TrainConfig,
    /// `(channels, side)` of the dataset last trained on — what
    /// [`Trainer::finish`] needs to freeze the fold geometry.
    trained_shape: Option<(usize, usize)>,
}

impl Trainer {
    /// Builds a trainer around a freshly initialised U-Net.
    ///
    /// # Errors
    ///
    /// Returns [`DiffusionError::BadSchedule`] for invalid schedule
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics when `unet_config.out_channels != 2 * unet_config.in_channels`
    /// (the denoiser head contract).
    pub fn new(
        unet_config: &UNetConfig,
        config: TrainConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, DiffusionError> {
        let schedule = NoiseSchedule::linear(config.diffusion_steps, config.beta1, config.beta_k)?;
        let denoiser = NeuralDenoiser::new(UNet::new(unet_config, rng));
        let adam = Adam::new(config.adam);
        Ok(Trainer {
            denoiser,
            adam,
            schedule,
            config,
            trained_shape: None,
        })
    }

    /// The noise schedule in use.
    pub fn schedule(&self) -> &NoiseSchedule {
        &self.schedule
    }

    /// Shared access to the denoiser (for `&self` inference).
    pub fn denoiser(&self) -> &NeuralDenoiser {
        &self.denoiser
    }

    /// The denoiser being trained.
    pub fn denoiser_mut(&mut self) -> &mut NeuralDenoiser {
        &mut self.denoiser
    }

    /// Consumes the trainer, yielding the trained denoiser and a sampler
    /// over the same schedule.
    pub fn into_parts(self) -> (NeuralDenoiser, Sampler) {
        (self.denoiser, Sampler::new(self.schedule))
    }

    /// Consumes the trainer and freezes its state into an immutable,
    /// shareable [`TrainedModel`] — the training/inference hand-off point.
    ///
    /// # Errors
    ///
    /// [`DiffusionError::NotTrained`] when [`Trainer::train`] never ran
    /// (the fold geometry is unknown), [`DiffusionError::BadModelBlob`]
    /// when the trained channel count is not a perfect square.
    pub fn finish(self) -> Result<TrainedModel, DiffusionError> {
        let (_, side) = self.trained_shape.ok_or(DiffusionError::NotTrained)?;
        TrainedModel::new(self.denoiser, self.schedule, side)
    }

    /// Runs `iterations` optimisation steps over `dataset`.
    ///
    /// # Errors
    ///
    /// * [`DiffusionError::EmptyDataset`] for an empty dataset,
    /// * [`DiffusionError::ShapeMismatch`] when tensors disagree in shape or
    ///   do not match the network's input channels.
    pub fn train(
        &mut self,
        dataset: &[DeepSquishTensor],
        iterations: usize,
        rng: &mut impl Rng,
    ) -> Result<TrainReport, DiffusionError> {
        if dataset.is_empty() {
            return Err(DiffusionError::EmptyDataset);
        }
        let channels = dataset[0].channels();
        let side = dataset[0].side();
        for t in dataset {
            if (t.channels(), t.side()) != (channels, side) {
                return Err(DiffusionError::ShapeMismatch {
                    expected: (channels, side),
                    actual: (t.channels(), t.side()),
                });
            }
        }
        if channels != self.denoiser.channels() {
            return Err(DiffusionError::ShapeMismatch {
                expected: (self.denoiser.channels(), side),
                actual: (channels, side),
            });
        }

        self.trained_shape = Some((channels, side));
        // Dropout is active only while optimising (paper §IV-A trains with
        // dropout 0.1); sampling afterwards runs the deterministic network.
        self.denoiser.unet_mut().set_training(true);
        let mut report = TrainReport::default();
        for _ in 0..iterations {
            report.losses.push(self.train_step(dataset, rng));
        }
        self.denoiser.unet_mut().set_training(false);
        Ok(report)
    }

    /// One optimisation step; returns its loss summary.
    fn train_step(&mut self, dataset: &[DeepSquishTensor], rng: &mut impl Rng) -> LossReport {
        let batch = self.config.batch_size.min(dataset.len()).max(1);
        let mut x0s = Vec::with_capacity(batch);
        let mut xks = Vec::with_capacity(batch);
        let mut ks = Vec::with_capacity(batch);
        for _ in 0..batch {
            let x0 = dataset[rng.gen_range(0..dataset.len())].clone();
            let k = rng.gen_range(1..=self.schedule.steps());
            xks.push(forward_sample(&x0, &self.schedule, k, rng));
            ks.push(k);
            x0s.push(x0);
        }
        let logits = self.denoiser.forward_logits(&xks, &ks);
        let (loss, grad) =
            vb_loss_and_grad(&x0s, &xks, &ks, &logits, &self.schedule, self.config.lambda);
        let _ = self.denoiser.unet_mut().backward(&grad);
        self.adam.step(&mut self.denoiser.unet_mut().params_mut());
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_unet(channels: usize) -> UNetConfig {
        UNetConfig {
            in_channels: channels,
            out_channels: 2 * channels,
            base_channels: 8,
            channel_mults: vec![1, 2],
            num_res_blocks: 1,
            attn_resolutions: vec![1],
            time_dim: 16,
            groups: 4,
            dropout: 0.0,
        }
    }

    fn striped_dataset(side: usize) -> Vec<DeepSquishTensor> {
        // Two simple structured patterns: vertical and horizontal stripes.
        let mut data = Vec::new();
        for phase in 0..2 {
            let bits: Vec<bool> = (0..side * side).map(|i| (i % side) % 2 == phase).collect();
            data.push(DeepSquishTensor::from_bits(1, side, bits).unwrap());
            let bits: Vec<bool> = (0..side * side).map(|i| (i / side) % 2 == phase).collect();
            data.push(DeepSquishTensor::from_bits(1, side, bits).unwrap());
        }
        data
    }

    #[test]
    fn rejects_empty_dataset() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut t = Trainer::new(&tiny_unet(1), TrainConfig::default(), &mut rng).unwrap();
        assert!(matches!(
            t.train(&[], 1, &mut rng),
            Err(DiffusionError::EmptyDataset)
        ));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut t = Trainer::new(&tiny_unet(1), TrainConfig::default(), &mut rng).unwrap();
        let a = DeepSquishTensor::from_bits(1, 4, vec![false; 16]).unwrap();
        let b = DeepSquishTensor::from_bits(1, 8, vec![false; 64]).unwrap();
        assert!(matches!(
            t.train(&[a.clone(), b], 1, &mut rng),
            Err(DiffusionError::ShapeMismatch { .. })
        ));
        // Channel mismatch against the network.
        let c4 = DeepSquishTensor::from_bits(4, 4, vec![false; 64]).unwrap();
        assert!(matches!(
            t.train(&[c4], 1, &mut rng),
            Err(DiffusionError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn loss_decreases_on_tiny_dataset() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let config = TrainConfig {
            batch_size: 4,
            diffusion_steps: 50,
            adam: AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(&tiny_unet(1), config, &mut rng).unwrap();
        let dataset = striped_dataset(8);
        let report = trainer.train(&dataset, 40, &mut rng).unwrap();
        let head = report.head_mean(8);
        let tail = report.tail_mean(8);
        assert!(
            tail < head * 0.9,
            "loss did not decrease: head {head} tail {tail}"
        );
    }

    #[test]
    fn trained_model_beats_uniform_at_denoising() {
        // After training, generated samples should be meaningfully more
        // structured (closer to the dataset) than uniform noise.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let config = TrainConfig {
            batch_size: 8,
            diffusion_steps: 30,
            adam: AdamConfig {
                lr: 3e-3,
                ..AdamConfig::default()
            },
            ..TrainConfig::default()
        };
        let mut trainer = Trainer::new(&tiny_unet(1), config, &mut rng).unwrap();
        let dataset = striped_dataset(8);
        let _ = trainer.train(&dataset, 60, &mut rng).unwrap();
        let (mut denoiser, sampler) = trainer.into_parts();

        let min_dist = |t: &DeepSquishTensor| -> usize {
            dataset
                .iter()
                .map(|d| {
                    t.bits()
                        .iter()
                        .zip(d.bits())
                        .filter(|(a, b)| a != b)
                        .count()
                })
                .min()
                .unwrap()
        };
        let samples = sampler.sample(&mut denoiser, 1, 8, 4, &mut rng);
        let trained: usize = samples.iter().map(&min_dist).sum();
        let mut uniform = crate::UniformDenoiser::new();
        let noise = sampler.sample(&mut uniform, 1, 8, 4, &mut rng);
        let baseline: usize = noise.iter().map(min_dist).sum();
        assert!(
            trained < baseline,
            "trained distance {trained} not below uniform baseline {baseline}"
        );
    }
}
