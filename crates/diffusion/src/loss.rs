//! The variational-bound training loss (paper Eq. 9) and its exact gradient
//! with respect to the network logits.
//!
//! Per entry, the network outputs two logits — one per state of
//! `x̃_0 ∈ {0, 1}` — and the loss is
//!
//! ```text
//! L = D_KL( q(x_{k-1} | x_k, x_0) ‖ p_θ(x_{k-1} | x_k) ) − λ·log p_θ(x_0 | x_k)
//! ```
//!
//! with the KL term replaced by the reconstruction term
//! `−log p_θ(x_0 | x_1)` at `k = 1` (paper Eq. 3, last term). Both the KL
//! and the mixture `p_θ(x_{k-1}|x_k)` have closed forms in the binary state
//! space, so the gradient with respect to the logits is computed exactly —
//! no stochastic estimator is needed.

use crate::schedule::{posterior_same_prob, NoiseSchedule};
use dp_nn::Tensor;
use dp_squish::DeepSquishTensor;

/// Numerical floor for probabilities inside logs and denominators.
const P_EPS: f64 = 1e-7;

/// Loss summary for one mini-batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossReport {
    /// Mean total loss per entry.
    pub total: f64,
    /// Mean KL term per entry (zero contribution at `k = 1`).
    pub kl: f64,
    /// Mean auxiliary cross-entropy per entry.
    pub ce: f64,
}

/// Computes the batch loss and the gradient with respect to `logits`.
///
/// `logits` has shape `(n, 2*C, M, M)`: channel `c < C` is the state-1
/// logit of squish channel `c`, channel `C + c` the state-0 logit.
/// Entries of `ks` are 1-based diffusion steps per batch item.
///
/// Returns the report and a gradient tensor shaped like `logits`,
/// normalised by the total entry count (so learning rates transfer across
/// tensor sizes).
///
/// # Panics
///
/// Panics when shapes disagree or a step index is out of range.
pub fn vb_loss_and_grad(
    x0s: &[DeepSquishTensor],
    xks: &[DeepSquishTensor],
    ks: &[usize],
    logits: &Tensor,
    schedule: &NoiseSchedule,
    lambda: f64,
) -> (LossReport, Tensor) {
    let n = x0s.len();
    assert_eq!(n, xks.len(), "batch size mismatch");
    assert_eq!(n, ks.len(), "batch size mismatch");
    assert!(n > 0, "empty batch");
    let c = x0s[0].channels();
    let side = x0s[0].side();
    assert_eq!(logits.shape(), &[n, 2 * c, side, side], "logit shape");

    let mut grad = Tensor::zeros(logits.shape());
    let entries = (n * c * side * side) as f64;
    let mut total = 0.0f64;
    let mut total_kl = 0.0f64;
    let mut total_ce = 0.0f64;

    for (ni, ((x0, xk), &k)) in x0s.iter().zip(xks).zip(ks).enumerate() {
        assert!(
            k >= 1 && k <= schedule.steps(),
            "step {k} outside 1..={}",
            schedule.steps()
        );
        assert_eq!((x0.channels(), x0.side()), (c, side), "x0 shape");
        assert_eq!((xk.channels(), xk.side()), (c, side), "xk shape");
        let ps_eq = posterior_same_prob(schedule, k, true);
        let ps_ne = posterior_same_prob(schedule, k, false);
        for ci in 0..c {
            for m in 0..side {
                for nn in 0..side {
                    let b0 = x0.get(ci, nn, m);
                    let bk = xk.get(ci, nn, m);
                    let l1 = logits.at4(ni, ci, m, nn) as f64;
                    let l0 = logits.at4(ni, c + ci, m, nn) as f64;
                    // s1 = p_θ(x̃0 = 1 | x_k) via a stable 2-way softmax.
                    let s1 = sigmoid(l1 - l0).clamp(P_EPS, 1.0 - P_EPS);
                    let s0 = 1.0 - s1;

                    // Probability the model assigns to x̃0 == xk.
                    let p_match = if bk { s1 } else { s0 };
                    // Mixture probability of keeping the state (Eq. 11).
                    let p_same =
                        (p_match * ps_eq + (1.0 - p_match) * ps_ne).clamp(P_EPS, 1.0 - P_EPS);
                    // True posterior keep-probability (Eq. 12).
                    let q_same = posterior_same_prob(schedule, k, bk == b0);

                    // Cross-entropy on x0.
                    let s_true = if b0 { s1 } else { s0 };
                    let ce = -s_true.ln();

                    let (kl, d_dp_same) = if k == 1 {
                        (0.0, 0.0)
                    } else {
                        let kl = q_same * (q_same / p_same).ln()
                            + (1.0 - q_same) * ((1.0 - q_same) / (1.0 - p_same)).ln();
                        let d = -q_same / p_same + (1.0 - q_same) / (1.0 - p_same);
                        (kl, d)
                    };
                    let base = if k == 1 { ce } else { kl };
                    total += base + lambda * ce;
                    total_kl += kl;
                    total_ce += ce;

                    // Gradient wrt s1.
                    // dp_same/ds1: p_match is s1 when bk else s0.
                    let dp_match_ds1 = if bk { 1.0 } else { -1.0 };
                    let dp_same_ds1 = dp_match_ds1 * (ps_eq - ps_ne);
                    let dce_ds1 = if b0 { -1.0 / s1 } else { 1.0 / s0 };
                    let dl_ds1 = if k == 1 {
                        (1.0 + lambda) * dce_ds1
                    } else {
                        d_dp_same * dp_same_ds1 + lambda * dce_ds1
                    };
                    // s1 = σ(l1 - l0): ds1/dl1 = s1 s0, ds1/dl0 = -s1 s0.
                    let dl_dl1 = dl_ds1 * s1 * s0 / entries;
                    let g1 = grad.at4(ni, ci, m, nn) + dl_dl1 as f32;
                    grad.set4(ni, ci, m, nn, g1);
                    let g0 = grad.at4(ni, c + ci, m, nn) - dl_dl1 as f32;
                    grad.set4(ni, c + ci, m, nn, g0);
                }
            }
        }
    }

    (
        LossReport {
            total: total / entries,
            kl: total_kl / entries,
            ce: total_ce / entries,
        },
        grad,
    )
}

/// Extracts per-entry `p_θ(x̃0 = 1 | x_k)` from a logit tensor (same layout
/// as [`vb_loss_and_grad`]), for batch item `ni`.
///
/// # Panics
///
/// Panics when the tensor is not `(n, 2C, M, M)` or `ni` is out of range.
pub fn p1_of_logits(logits: &Tensor, ni: usize, channels: usize) -> Vec<f64> {
    let mut out = Vec::new();
    p1_of_logits_into(logits, ni, channels, &mut out);
    out
}

/// [`p1_of_logits`] into a caller-provided buffer (cleared first), so the
/// sampling hot loop reuses one allocation across denoising steps.
///
/// # Panics
///
/// Same conditions as [`p1_of_logits`].
pub fn p1_of_logits_into(logits: &Tensor, ni: usize, channels: usize, out: &mut Vec<f64>) {
    out.clear();
    p1_of_logits_append(logits, ni, channels, out);
}

/// As [`p1_of_logits_into`] but **appending** to `out` instead of clearing
/// it first — the batched sampling path concatenates every lane's
/// probabilities into one buffer with repeated calls (identical per-entry
/// arithmetic, so lane slices are bit-equal to single-item extraction).
///
/// # Panics
///
/// Same conditions as [`p1_of_logits`].
pub fn p1_of_logits_append(logits: &Tensor, ni: usize, channels: usize, out: &mut Vec<f64>) {
    let side = logits.shape()[2];
    assert_eq!(logits.shape()[1], 2 * channels, "logit channel layout");
    let hw = side * side;
    out.reserve(channels * hw);
    let base = ni * 2 * channels * hw;
    for ci in 0..channels {
        let ones = &logits.data()[base + ci * hw..base + (ci + 1) * hw];
        let zeros = &logits.data()[base + (channels + ci) * hw..base + (channels + ci + 1) * hw];
        for (&l1, &l0) in ones.iter().zip(zeros) {
            out.push(sigmoid(l1 as f64 - l0 as f64));
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
#[allow(clippy::cloned_ref_to_slice_refs)] // explicit clones read clearer in these fixtures
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_bits(rng: &mut impl Rng, c: usize, side: usize) -> DeepSquishTensor {
        let bits = (0..c * side * side).map(|_| rng.gen_bool(0.5)).collect();
        DeepSquishTensor::from_bits(c, side, bits).unwrap()
    }

    fn schedule() -> NoiseSchedule {
        NoiseSchedule::linear(100, 0.01, 0.5).unwrap()
    }

    #[test]
    fn perfect_prediction_minimises_loss() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let s = schedule();
        let x0 = random_bits(&mut rng, 1, 4);
        let xk = crate::forward_sample(&x0, &s, 50, &mut rng);

        // Logits that put all mass on the true x0.
        let mut good = Tensor::zeros(&[1, 2, 4, 4]);
        let mut bad = Tensor::zeros(&[1, 2, 4, 4]);
        for m in 0..4 {
            for nn in 0..4 {
                let b = x0.get(0, nn, m);
                good.set4(0, 0, m, nn, if b { 8.0 } else { -8.0 });
                good.set4(0, 1, m, nn, if b { -8.0 } else { 8.0 });
                bad.set4(0, 0, m, nn, if b { -8.0 } else { 8.0 });
                bad.set4(0, 1, m, nn, if b { 8.0 } else { -8.0 });
            }
        }
        let (lg, _) = vb_loss_and_grad(&[x0.clone()], &[xk.clone()], &[50], &good, &s, 0.001);
        let (lb, _) = vb_loss_and_grad(&[x0], &[xk], &[50], &bad, &s, 0.001);
        assert!(lg.total < lb.total, "good {lg:?} bad {lb:?}");
        // Perfect prediction drives the KL near zero (the posterior is then
        // matched exactly).
        assert!(lg.kl < 1e-3, "{}", lg.kl);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = schedule();
        let x0 = random_bits(&mut rng, 4, 3);
        let xk = crate::forward_sample(&x0, &s, 30, &mut rng);
        let logits = Tensor::randn(&[1, 8, 3, 3], 1.0, &mut rng);
        let (_, grad) = vb_loss_and_grad(&[x0.clone()], &[xk.clone()], &[30], &logits, &s, 0.001);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let (lp, _) = vb_loss_and_grad(&[x0.clone()], &[xk.clone()], &[30], &plus, &s, 0.001);
            let (lm, _) = vb_loss_and_grad(&[x0.clone()], &[xk.clone()], &[30], &minus, &s, 0.001);
            // Total in the report is already normalised per entry, as is the
            // gradient.
            let numeric = (lp.total - lm.total) / (2.0 * eps as f64);
            let analytic = grad.data()[i] as f64;
            assert!(
                (numeric - analytic).abs() < 1e-4,
                "entry {i}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn k1_uses_reconstruction_term() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let s = schedule();
        let x0 = random_bits(&mut rng, 1, 2);
        let x1 = crate::forward_sample(&x0, &s, 1, &mut rng);
        let logits = Tensor::randn(&[1, 2, 2, 2], 1.0, &mut rng);
        let (report, _) = vb_loss_and_grad(&[x0], &[x1], &[1], &logits, &s, 0.5);
        assert_eq!(report.kl, 0.0);
        // total = (1 + λ) * ce at k=1.
        assert!((report.total - 1.5 * report.ce).abs() < 1e-9);
    }

    #[test]
    fn p1_layout_round_trip() {
        let mut logits = Tensor::zeros(&[1, 2, 2, 2]);
        logits.set4(0, 0, 0, 0, 5.0); // state-1 logit high at (m=0, n=0)
        logits.set4(0, 1, 1, 1, 5.0); // state-0 logit high at (m=1, n=1)
        let p1 = p1_of_logits(&logits, 0, 1);
        assert!(p1[0] > 0.99); // entry (n=0, m=0)
        assert!(p1[3] < 0.01); // entry (n=1, m=1)
        assert!((p1[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn out_of_range_step_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let s = schedule();
        let x0 = random_bits(&mut rng, 1, 2);
        let logits = Tensor::zeros(&[1, 2, 2, 2]);
        let _ = vb_loss_and_grad(&[x0.clone()], &[x0], &[0], &logits, &s, 0.1);
    }
}
