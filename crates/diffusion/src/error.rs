use std::fmt;

/// Error type for diffusion configuration and training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DiffusionError {
    /// Schedule parameters outside `(0, 1)` or a zero step count.
    BadSchedule {
        /// Number of steps requested.
        steps: usize,
        /// β at step 1.
        beta1: f64,
        /// β at step K.
        beta_k: f64,
    },
    /// A step index outside `1..=K`.
    StepOutOfRange {
        /// Offending step.
        step: usize,
        /// Total steps `K`.
        total: usize,
    },
    /// The training set is empty.
    EmptyDataset,
    /// Dataset tensors have inconsistent shapes.
    ShapeMismatch {
        /// Expected `(channels, side)`.
        expected: (usize, usize),
        /// Found `(channels, side)`.
        actual: (usize, usize),
    },
}

impl fmt::Display for DiffusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffusionError::BadSchedule {
                steps,
                beta1,
                beta_k,
            } => write!(
                f,
                "invalid schedule: steps={steps}, beta1={beta1}, betaK={beta_k} (need steps>0 and 0<beta<1)"
            ),
            DiffusionError::StepOutOfRange { step, total } => {
                write!(f, "step {step} outside 1..={total}")
            }
            DiffusionError::EmptyDataset => write!(f, "training set is empty"),
            DiffusionError::ShapeMismatch { expected, actual } => write!(
                f,
                "tensor shape {actual:?} does not match dataset shape {expected:?}"
            ),
        }
    }
}

impl std::error::Error for DiffusionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = DiffusionError::StepOutOfRange { step: 0, total: 10 };
        assert!(e.to_string().contains("0"));
    }
}
