use std::fmt;

/// Error type for diffusion configuration and training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DiffusionError {
    /// Schedule parameters outside `(0, 1)` or a zero step count.
    BadSchedule {
        /// Number of steps requested.
        steps: usize,
        /// β at step 1.
        beta1: f64,
        /// β at step K.
        beta_k: f64,
    },
    /// A step index outside `1..=K`.
    StepOutOfRange {
        /// Offending step.
        step: usize,
        /// Total steps `K`.
        total: usize,
    },
    /// The training set is empty.
    EmptyDataset,
    /// Dataset tensors have inconsistent shapes.
    ShapeMismatch {
        /// Expected `(channels, side)`.
        expected: (usize, usize),
        /// Found `(channels, side)`.
        actual: (usize, usize),
    },
    /// [`crate::Trainer::finish`] was called before any training run, so
    /// the spatial geometry of the model is unknown.
    NotTrained,
    /// A serialised [`crate::TrainedModel`] blob was malformed.
    BadModelBlob {
        /// Human-readable reason.
        reason: String,
    },
    /// The weight payload inside a model blob did not match the declared
    /// architecture.
    Weights(dp_nn::WeightsError),
    /// A frozen-region mask and its bit payload have different lengths.
    ConditioningMismatch {
        /// Mask length.
        mask: usize,
        /// Bits length.
        bits: usize,
    },
    /// A motif-guidance weight outside `(0, ∞)`.
    BadGuidanceWeight {
        /// Offending weight.
        weight: f64,
    },
}

impl fmt::Display for DiffusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffusionError::BadSchedule {
                steps,
                beta1,
                beta_k,
            } => write!(
                f,
                "invalid schedule: steps={steps}, beta1={beta1}, betaK={beta_k} (need steps>0 and 0<beta<1)"
            ),
            DiffusionError::StepOutOfRange { step, total } => {
                write!(f, "step {step} outside 1..={total}")
            }
            DiffusionError::EmptyDataset => write!(f, "training set is empty"),
            DiffusionError::ShapeMismatch { expected, actual } => write!(
                f,
                "tensor shape {actual:?} does not match dataset shape {expected:?}"
            ),
            DiffusionError::NotTrained => {
                write!(f, "finish() called before any training run")
            }
            DiffusionError::BadModelBlob { reason } => {
                write!(f, "malformed model blob: {reason}")
            }
            DiffusionError::Weights(e) => write!(f, "model weights: {e}"),
            DiffusionError::ConditioningMismatch { mask, bits } => write!(
                f,
                "frozen-region mask length {mask} does not match bits length {bits}"
            ),
            DiffusionError::BadGuidanceWeight { weight } => {
                write!(f, "guidance weight {weight} must be finite and positive")
            }
        }
    }
}

impl std::error::Error for DiffusionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiffusionError::Weights(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dp_nn::WeightsError> for DiffusionError {
    fn from(e: dp_nn::WeightsError) -> Self {
        DiffusionError::Weights(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = DiffusionError::StepOutOfRange { step: 0, total: 10 };
        assert!(e.to_string().contains("0"));
    }
}
