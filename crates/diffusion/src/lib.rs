//! Discrete denoising diffusion over binary layout-topology tensors.
//!
//! This crate is the paper's primary algorithmic contribution (§III-C):
//! instead of running a continuous DDPM over a grayscale image and
//! thresholding — wasting model capacity on learning "discreteness" — the
//! forward process flips each binary entry with a scheduled probability and
//! the reverse process samples each entry from an exact two-state
//! categorical posterior.
//!
//! The pieces map one-to-one onto the paper's equations:
//!
//! | Paper | Here |
//! |---|---|
//! | Eq. 7 doubly-stochastic `Q_k` | [`NoiseSchedule::beta`] (a 2x2 symmetric matrix is fully described by its flip probability) |
//! | Eq. 8 linear β schedule | [`NoiseSchedule::linear`] |
//! | Eq. 10 closed-form `q(x_k\|x_0)` with `Q̄_k` | [`NoiseSchedule::cumulative_flip`], [`forward_sample`] |
//! | Eq. 12 posterior `q(x_{k-1}\|x_k, x_0)` | [`posterior_same_prob`] |
//! | Eq. 11 mixture `p_θ(x_{k-1}\|x_k)` | [`reverse_step_prob`] |
//! | Eq. 9 loss `KL + λ·CE` | [`loss::vb_loss_and_grad`] |
//! | Eq. 13 ancestral sampling | [`Sampler`] |
//!
//! The denoising network is abstracted behind the [`Denoiser`] trait so the
//! diffusion mathematics can be validated against a closed-form oracle
//! independently of neural-network training (see `OracleDenoiser`), while
//! production use plugs in the [`NeuralDenoiser`] U-Net wrapper.
//!
//! Every sampling entry point funnels into one *conditioned* core
//! parameterised by a per-lane [`Conditioning`]: a [`FrozenRegion`]
//! holds known bits through the whole reverse chain (diffusion
//! inpainting — the frozen set rides `q(x_k | x_0)` between steps so
//! lane statistics stay on-manifold, and is clamped exactly at the
//! end), and a [`MotifGuidance`] reweights the terminal draw against a
//! hotspot motif. [`Conditioning::none`] is the unconditioned case and
//! costs nothing; each lane consumes exactly its own RNG stream either
//! way, so conditioned and unconditioned lanes compose freely in one
//! batch call without perturbing each other.
//!
//! # Example: forward process converges to the uniform distribution
//!
//! ```
//! use dp_diffusion::NoiseSchedule;
//!
//! let schedule = NoiseSchedule::linear(1000, 0.01, 0.5).unwrap();
//! // After K steps any bit is essentially a fair coin (Eq. 6).
//! assert!((schedule.cumulative_flip(1000) - 0.5).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod conditioning;
mod denoiser;
mod error;
pub mod loss;
mod model;
mod sampler;
mod schedule;
mod trainer;

pub use conditioning::{Conditioning, FrozenRegion, Motif, MotifGuidance};
pub use denoiser::{Denoiser, InferenceDenoiser, NeuralDenoiser, OracleDenoiser, UniformDenoiser};
pub use error::DiffusionError;
pub use model::TrainedModel;
pub use sampler::{
    categorical_draw_in_place, reverse_update_in_place, BatchScratch, SampleScratch, SampleTrace,
    Sampler,
};
pub use schedule::{
    flip_between, forward_sample, posterior_jump_same_prob, posterior_same_prob, reverse_jump_prob,
    reverse_step_prob, NoiseSchedule,
};
pub use trainer::{TrainConfig, TrainReport, Trainer};

/// Re-exported so downstream crates can pick a [`TrainedModel`] prepack
/// precision without depending on `dp_nn` directly.
pub use dp_nn::Precision;
pub use dp_squish::DeepSquishTensor;
