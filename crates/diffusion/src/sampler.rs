use crate::schedule::{posterior_jump_same_prob, NoiseSchedule};
use crate::{Conditioning, Denoiser, InferenceDenoiser, MotifGuidance};
use dp_nn::Workspace;
use dp_squish::DeepSquishTensor;
use rand::Rng;

/// Reusable per-thread scratch for the sampling hot loop: the neural
/// network's [`Workspace`] plus the probability buffer the denoiser fills
/// each step. After the first sample warms it up, every subsequent
/// denoising step runs without heap allocation.
///
/// Keep one per worker thread and pass it to the `*_with` sampling
/// methods; the scratch-free methods create a throwaway one per call.
#[derive(Debug, Default)]
pub struct SampleScratch {
    ws: Workspace,
    p1: Vec<f64>,
}

impl SampleScratch {
    /// Creates an empty scratch (sized lazily by its first use).
    pub fn new() -> Self {
        SampleScratch::default()
    }
}

/// Reusable scratch for the **micro-batched** sampling loop: one
/// [`Workspace`] shared by the stacked network evaluation plus the
/// concatenated per-lane probability buffer
/// ([`InferenceDenoiser::infer_p1_batch_into`]'s output). Keep one per
/// worker thread; after the first batch warms it up, every denoising step
/// runs without heap allocation regardless of the lane count.
#[derive(Debug, Default)]
pub struct BatchScratch {
    ws: Workspace,
    p1: Vec<f64>,
}

impl BatchScratch {
    /// Creates an empty scratch (sized lazily by its first use).
    pub fn new() -> Self {
        BatchScratch::default()
    }
}

/// `p_θ(x̃0 = 1 | x_k)` for one state at one step — the only thing the
/// sampling cores need from a denoiser, whichever mutability flavour it
/// comes in. Implementations write into the caller's buffer so the
/// inference flavour stays allocation-free.
trait Predictor {
    fn predict_into(
        &mut self,
        x: &DeepSquishTensor,
        k: usize,
        ws: &mut Workspace,
        out: &mut Vec<f64>,
    );
}

struct MutPredictor<'a>(&'a mut dyn Denoiser);

impl Predictor for MutPredictor<'_> {
    fn predict_into(
        &mut self,
        x: &DeepSquishTensor,
        k: usize,
        _ws: &mut Workspace,
        out: &mut Vec<f64>,
    ) {
        let p1 = self
            .0
            .predict_p1(std::slice::from_ref(x), &[k])
            .swap_remove(0);
        out.clear();
        out.extend_from_slice(&p1);
    }
}

/// Trace observer handed to the conditioned core: called with the step
/// index and the state at the top step, after each intermediate jump,
/// and at 0 (the Fig. 6 hook).
type SnapshotObserver<'a> = &'a mut dyn FnMut(usize, &DeepSquishTensor);

struct InferPredictor<'a>(&'a dyn InferenceDenoiser);

impl Predictor for InferPredictor<'_> {
    fn predict_into(
        &mut self,
        x: &DeepSquishTensor,
        k: usize,
        ws: &mut Workspace,
        out: &mut Vec<f64>,
    ) {
        self.0.infer_p1_into(x, k, ws, out);
    }
}

/// Ancestral sampler for the reverse diffusion process (paper Eq. 13,
/// Fig. 6).
///
/// Starting from the uniform stationary distribution, each step queries the
/// denoiser for `p_θ(x̃0 | x_k)` and flips every entry according to the
/// closed-form mixture `p_θ(x_{k-1} | x_k)`; the final step draws
/// `x̂_0 ~ p_θ(x_0 | x_1)` directly. The output is naturally binary — there
/// is no threshold anywhere, which is the paper's core argument for
/// discrete diffusion.
#[derive(Debug, Clone)]
pub struct Sampler {
    schedule: NoiseSchedule,
}

/// A reverse trajectory with snapshots at requested steps — the data behind
/// paper Fig. 6.
#[derive(Debug, Clone)]
pub struct SampleTrace {
    /// `(k, state at step k)` pairs, highest `k` first. `k = 0` is the
    /// final sample.
    pub snapshots: Vec<(usize, DeepSquishTensor)>,
    /// The final clean sample `x̂_0`.
    pub sample: DeepSquishTensor,
}

impl Sampler {
    /// Creates a sampler over `schedule`.
    pub fn new(schedule: NoiseSchedule) -> Self {
        Sampler { schedule }
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &NoiseSchedule {
        &self.schedule
    }

    /// Draws `count` fresh topology tensors of shape `channels x side x
    /// side`.
    pub fn sample(
        &self,
        denoiser: &mut dyn Denoiser,
        channels: usize,
        side: usize,
        count: usize,
        rng: &mut impl Rng,
    ) -> Vec<DeepSquishTensor> {
        let mut scratch = SampleScratch::new();
        let retained = self.full_steps();
        (0..count)
            .map(|_| {
                self.conditioned_core(
                    &mut MutPredictor(denoiser),
                    channels,
                    side,
                    &retained,
                    &Conditioning::none(),
                    None,
                    rng,
                    &mut scratch,
                )
            })
            .collect()
    }

    /// Draws one sample.
    pub fn sample_one(
        &self,
        denoiser: &mut dyn Denoiser,
        channels: usize,
        side: usize,
        rng: &mut impl Rng,
    ) -> DeepSquishTensor {
        self.conditioned_core(
            &mut MutPredictor(denoiser),
            channels,
            side,
            &self.full_steps(),
            &Conditioning::none(),
            None,
            rng,
            &mut SampleScratch::new(),
        )
    }

    /// Draws one sample through a shared-reference denoiser — the
    /// thread-safe inference path used by `TrainedModel`-based batch
    /// generation. Identical mathematics to [`Sampler::sample_one`].
    pub fn sample_one_infer(
        &self,
        denoiser: &dyn InferenceDenoiser,
        channels: usize,
        side: usize,
        rng: &mut impl Rng,
    ) -> DeepSquishTensor {
        self.sample_one_with(denoiser, channels, side, rng, &mut SampleScratch::new())
    }

    /// [`Sampler::sample_one_infer`] reusing a caller-owned
    /// [`SampleScratch`]: once the scratch is warm, the whole denoising
    /// chain allocates nothing beyond the returned tensor.
    pub fn sample_one_with(
        &self,
        denoiser: &dyn InferenceDenoiser,
        channels: usize,
        side: usize,
        rng: &mut impl Rng,
        scratch: &mut SampleScratch,
    ) -> DeepSquishTensor {
        self.conditioned_core(
            &mut InferPredictor(denoiser),
            channels,
            side,
            &self.full_steps(),
            &Conditioning::none(),
            None,
            rng,
            scratch,
        )
    }

    /// Respaced (DDIM-style, paper ref. \[12\]) sampling: traverses only
    /// the sub-sequence `0 < k_1 < k_2 < ... <= K` of steps, jumping
    /// directly between consecutive entries with the generalised posterior
    /// `q(x_{k_i} | x_{k_{i+1}}, x̃_0)`. One denoiser call per retained step
    /// — `stride` x fewer network evaluations at modest quality cost.
    ///
    /// # Panics
    ///
    /// Panics when `retained` is empty, unsorted, contains 0 or exceeds K.
    pub fn sample_respaced(
        &self,
        denoiser: &mut dyn Denoiser,
        channels: usize,
        side: usize,
        retained: &[usize],
        rng: &mut impl Rng,
    ) -> DeepSquishTensor {
        self.conditioned_core(
            &mut MutPredictor(denoiser),
            channels,
            side,
            retained,
            &Conditioning::none(),
            None,
            rng,
            &mut SampleScratch::new(),
        )
    }

    /// [`Sampler::sample_respaced`] through a shared-reference denoiser.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Sampler::sample_respaced`].
    pub fn sample_respaced_infer(
        &self,
        denoiser: &dyn InferenceDenoiser,
        channels: usize,
        side: usize,
        retained: &[usize],
        rng: &mut impl Rng,
    ) -> DeepSquishTensor {
        self.sample_respaced_with(
            denoiser,
            channels,
            side,
            retained,
            rng,
            &mut SampleScratch::new(),
        )
    }

    /// [`Sampler::sample_respaced_infer`] reusing a caller-owned
    /// [`SampleScratch`] (see [`Sampler::sample_one_with`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Sampler::sample_respaced`].
    pub fn sample_respaced_with(
        &self,
        denoiser: &dyn InferenceDenoiser,
        channels: usize,
        side: usize,
        retained: &[usize],
        rng: &mut impl Rng,
        scratch: &mut SampleScratch,
    ) -> DeepSquishTensor {
        self.conditioned_core(
            &mut InferPredictor(denoiser),
            channels,
            side,
            retained,
            &Conditioning::none(),
            None,
            rng,
            scratch,
        )
    }

    /// Conditioned single-lane sampling over an explicit retained-step
    /// subset (the full sequence [`Sampler::strided_steps`]`(1)` gives the
    /// plain ancestral chain). The conditioning bends this lane's chain —
    /// frozen entries are q-sampled to the step's noise level after every
    /// reverse step and clamped exactly at the end; motif guidance
    /// reweights the terminal categorical draw's logits (see
    /// [`Conditioning`]).
    ///
    /// Determinism: the lane consumes only `rng`, in a fixed order, so the
    /// output is a pure function of `(denoiser, rng stream, conditioning)`.
    /// Under [`Conditioning::none`] no extra draw and no probability
    /// perturbation happens — the result is bit-identical to
    /// [`Sampler::sample_respaced_with`].
    ///
    /// # Panics
    ///
    /// Same retained-step conditions as [`Sampler::sample_respaced`]; also
    /// panics when the conditioning's frozen mask does not span exactly
    /// `channels * side * side` entries (validate shapes upstream with
    /// [`Conditioning::matches_entries`]).
    #[allow(clippy::too_many_arguments)]
    pub fn sample_conditioned_with(
        &self,
        denoiser: &dyn InferenceDenoiser,
        channels: usize,
        side: usize,
        retained: &[usize],
        conditioning: &Conditioning,
        rng: &mut impl Rng,
        scratch: &mut SampleScratch,
    ) -> DeepSquishTensor {
        self.conditioned_core(
            &mut InferPredictor(denoiser),
            channels,
            side,
            retained,
            conditioning,
            None,
            rng,
            scratch,
        )
    }

    /// Micro-batched ancestral sampling: advances `rngs.len()` independent
    /// chains in lock-step, evaluating the denoiser **once per step** on
    /// the whole batch while drawing every lane's randomness from that
    /// lane's own RNG. Because each lane consumes exactly the random
    /// stream a solo chain would, and the batched network evaluation is
    /// bit-identical per item (see
    /// [`InferenceDenoiser::infer_p1_batch_into`]), lane `i` of the result
    /// is **bit-identical** to
    /// [`Sampler::sample_one_with`] driven by `rngs[i]` alone — batching
    /// changes the cost, never the samples.
    ///
    /// An empty `rngs` slice returns an empty vector without touching the
    /// denoiser.
    pub fn sample_batch_with<R: Rng>(
        &self,
        denoiser: &dyn InferenceDenoiser,
        channels: usize,
        side: usize,
        rngs: &mut [R],
        scratch: &mut BatchScratch,
    ) -> Vec<DeepSquishTensor> {
        self.sample_conditioned_batch_with(
            denoiser,
            channels,
            side,
            &self.full_steps(),
            &Conditioning::none(),
            rngs,
            scratch,
        )
    }

    /// Micro-batched respaced sampling: the [`Sampler::sample_respaced_with`]
    /// mathematics advanced across `rngs.len()` lock-step lanes, with the
    /// same per-lane bit-identity guarantee as
    /// [`Sampler::sample_batch_with`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Sampler::sample_respaced`] (checked even for
    /// an empty batch, so a misconfigured schedule never goes unnoticed).
    pub fn sample_respaced_batch_with<R: Rng>(
        &self,
        denoiser: &dyn InferenceDenoiser,
        channels: usize,
        side: usize,
        retained: &[usize],
        rngs: &mut [R],
        scratch: &mut BatchScratch,
    ) -> Vec<DeepSquishTensor> {
        self.sample_conditioned_batch_with(
            denoiser,
            channels,
            side,
            retained,
            &Conditioning::none(),
            rngs,
            scratch,
        )
    }

    /// THE batched core: [`Sampler::sample_conditioned_with`] advanced
    /// across `rngs.len()` lock-step lanes sharing one `conditioning`.
    /// Every unconditioned entry point in this crate funnels here (with
    /// the full step sequence and [`Conditioning::none`]), so there is
    /// exactly one implementation of the reverse-chain mathematics.
    ///
    /// Per-lane bit-identity holds as for [`Sampler::sample_batch_with`]:
    /// lane `i` equals [`Sampler::sample_conditioned_with`] driven by
    /// `rngs[i]` alone, because frozen-bit re-noising draws from the
    /// lane's own RNG right after that lane's reverse update.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Sampler::sample_conditioned_with`] (checked
    /// even for an empty batch, so a misconfigured schedule or mask never
    /// goes unnoticed).
    #[allow(clippy::too_many_arguments)]
    pub fn sample_conditioned_batch_with<R: Rng>(
        &self,
        denoiser: &dyn InferenceDenoiser,
        channels: usize,
        side: usize,
        retained: &[usize],
        conditioning: &Conditioning,
        rngs: &mut [R],
        scratch: &mut BatchScratch,
    ) -> Vec<DeepSquishTensor> {
        let entries = channels * side * side;
        self.validate_retained(retained);
        assert!(
            conditioning.matches_entries(entries),
            "conditioning mask does not span {entries} entries"
        );
        let k_top = *retained.last().expect("non-empty");

        let mut states: Vec<DeepSquishTensor> = rngs
            .iter_mut()
            .map(|rng| {
                let mut state = uniform_state(channels, side, rng);
                if let Some(region) = conditioning.frozen() {
                    // Lanes start at q(x_{k_top} | x0) on the frozen set.
                    region.write_noised(
                        self.schedule.cumulative_flip(k_top),
                        state.bits_mut(),
                        rng,
                    );
                }
                state
            })
            .collect();
        if states.is_empty() {
            return states;
        }
        let BatchScratch { ws, p1 } = scratch;

        // The steady-state denoising loop: every buffer it touches was
        // allocated up front (states, scratch), which the counting-
        // allocator tests pin dynamically and dp_lint pins statically.
        // dp-lint: zero-alloc
        for idx in (0..retained.len()).rev() {
            let k = retained[idx];
            let j = if idx == 0 { 0 } else { retained[idx - 1] };
            denoiser.infer_p1_batch_into(&states, k, ws, p1);
            debug_assert_eq!(p1.len(), states.len() * entries);
            let coeffs = (j > 0).then(|| {
                (
                    posterior_jump_same_prob(&self.schedule, j, k, true),
                    posterior_jump_same_prob(&self.schedule, j, k, false),
                )
            });
            for (li, (state, rng)) in states.iter_mut().zip(rngs.iter_mut()).enumerate() {
                let lane = &mut p1[li * entries..(li + 1) * entries];
                match coeffs {
                    Some((eq, ne)) => {
                        reverse_update_in_place(eq, ne, state.bits_mut(), lane, rng);
                        if let Some(region) = conditioning.frozen() {
                            region.write_noised(
                                self.schedule.cumulative_flip(j),
                                state.bits_mut(),
                                rng,
                            );
                        }
                    }
                    None => {
                        if let Some(guidance) = conditioning.avoid() {
                            apply_guidance(guidance, channels, side, ws, lane);
                        }
                        categorical_draw_in_place(state.bits_mut(), lane, rng);
                        if let Some(region) = conditioning.frozen() {
                            region.write_exact(state.bits_mut());
                        }
                    }
                }
            }
        }
        states
    }

    /// The single-lane core behind every non-batched entry point: the
    /// respaced reverse chain with optional conditioning and an optional
    /// snapshot observer (called at the top step, after each intermediate
    /// jump, and at 0 — the Fig. 6 trace hook).
    #[allow(clippy::too_many_arguments)]
    fn conditioned_core(
        &self,
        predict: &mut dyn Predictor,
        channels: usize,
        side: usize,
        retained: &[usize],
        conditioning: &Conditioning,
        mut snapshot: Option<SnapshotObserver<'_>>,
        rng: &mut impl Rng,
        scratch: &mut SampleScratch,
    ) -> DeepSquishTensor {
        self.validate_retained(retained);
        let entries = channels * side * side;
        assert!(
            conditioning.matches_entries(entries),
            "conditioning mask does not span {entries} entries"
        );
        let k_top = *retained.last().expect("non-empty");

        // Start from the stationary distribution at the highest retained
        // step (for k_top close to K this is indistinguishable from T_K).
        let mut state = uniform_state(channels, side, rng);
        if let Some(region) = conditioning.frozen() {
            region.write_noised(self.schedule.cumulative_flip(k_top), state.bits_mut(), rng);
        }
        if let Some(observe) = snapshot.as_deref_mut() {
            observe(k_top, &state);
        }
        let SampleScratch { ws, p1 } = scratch;

        // Steady-state single-lane loop — same allocation-free contract
        // as the batched core above.
        // dp-lint: zero-alloc
        for idx in (0..retained.len()).rev() {
            let k = retained[idx];
            let j = if idx == 0 { 0 } else { retained[idx - 1] };
            predict.predict_into(&state, k, ws, p1);
            if j == 0 {
                // Final jump: draw x̂0 ~ p_θ(x0 | x_k) directly, with the
                // guidance bias (if any) applied to this draw's logits.
                if let Some(guidance) = conditioning.avoid() {
                    apply_guidance(guidance, channels, side, ws, p1);
                }
                categorical_draw_in_place(state.bits_mut(), p1, rng);
                if let Some(region) = conditioning.frozen() {
                    region.write_exact(state.bits_mut());
                }
            } else {
                let eq = posterior_jump_same_prob(&self.schedule, j, k, true);
                let ne = posterior_jump_same_prob(&self.schedule, j, k, false);
                reverse_update_in_place(eq, ne, state.bits_mut(), p1, rng);
                if let Some(region) = conditioning.frozen() {
                    region.write_noised(self.schedule.cumulative_flip(j), state.bits_mut(), rng);
                }
                if let Some(observe) = snapshot.as_deref_mut() {
                    observe(j, &state);
                }
            }
        }
        if let Some(observe) = snapshot {
            observe(0, &state);
        }
        state
    }

    /// The full 1-based step sequence `[1, 2, ..., K]` — the retained set
    /// that makes the respaced core the plain ancestral chain
    /// (`posterior_jump_same_prob(k-1, k)` is bit-exactly
    /// [`crate::posterior_same_prob`]`(k)`).
    fn full_steps(&self) -> Vec<usize> {
        (1..=self.schedule.steps()).collect()
    }

    /// The retained-step contract shared by every sampling entry point.
    fn validate_retained(&self, retained: &[usize]) {
        assert!(!retained.is_empty(), "empty step subset");
        assert!(
            retained.windows(2).all(|w| w[0] < w[1]),
            "retained steps must be strictly increasing"
        );
        assert!(retained[0] >= 1, "steps are 1-based");
        assert!(
            *retained.last().expect("non-empty") <= self.schedule.steps(),
            "step beyond K"
        );
    }

    /// Builds an evenly strided retained-step subset `[s, 2s, ..., K]` for
    /// [`Sampler::sample_respaced`].
    ///
    /// The respacing contract, pinned by unit tests:
    ///
    /// * `stride == 0` is clamped to 1, i.e. the full sequence `1..=K`;
    /// * `stride >= K` keeps only `[K]` — a single direct jump from the
    ///   stationary distribution to `x̂_0`;
    /// * `K` itself is always retained (appended when the stride does not
    ///   divide it), so the chain always starts at the top step and the
    ///   result is never empty.
    pub fn strided_steps(&self, stride: usize) -> Vec<usize> {
        let k_max = self.schedule.steps();
        let stride = stride.max(1);
        let mut out: Vec<usize> = (1..=k_max).filter(|k| k % stride == 0).collect();
        // `k_max >= 1` (schedules are non-empty), so this push makes the
        // result non-empty whenever the filter retained nothing.
        if out.last() != Some(&k_max) {
            out.push(k_max);
        }
        out
    }

    /// Draws one sample, recording snapshots at the requested steps
    /// (plus the initial noise at `k = K` and the final sample at `k = 0`).
    pub fn sample_with_trace(
        &self,
        denoiser: &mut dyn Denoiser,
        channels: usize,
        side: usize,
        snapshot_steps: &[usize],
        rng: &mut impl Rng,
    ) -> SampleTrace {
        self.trace_core(
            &mut MutPredictor(denoiser),
            channels,
            side,
            snapshot_steps,
            rng,
        )
    }

    /// [`Sampler::sample_with_trace`] through a shared-reference denoiser.
    pub fn sample_with_trace_infer(
        &self,
        denoiser: &dyn InferenceDenoiser,
        channels: usize,
        side: usize,
        snapshot_steps: &[usize],
        rng: &mut impl Rng,
    ) -> SampleTrace {
        self.trace_core(
            &mut InferPredictor(denoiser),
            channels,
            side,
            snapshot_steps,
            rng,
        )
    }

    /// The Fig. 6 trace path: the conditioned core with a snapshot
    /// observer cloning the state at the endpoints and every requested
    /// step (which necessarily allocates per snapshot).
    fn trace_core(
        &self,
        predict: &mut dyn Predictor,
        channels: usize,
        side: usize,
        snapshot_steps: &[usize],
        rng: &mut impl Rng,
    ) -> SampleTrace {
        let k_max = self.schedule.steps();
        let mut snapshots: Vec<(usize, DeepSquishTensor)> = Vec::new();
        let mut record = |k: usize, state: &DeepSquishTensor| {
            if k == k_max || k == 0 || snapshot_steps.contains(&k) {
                snapshots.push((k, state.clone()));
            }
        };
        let sample = self.conditioned_core(
            predict,
            channels,
            side,
            &self.full_steps(),
            &Conditioning::none(),
            Some(&mut record),
            rng,
            &mut SampleScratch::new(),
        );
        SampleTrace { snapshots, sample }
    }
}

/// Rebiases one lane's `p1` in place for the terminal draw: copies the
/// unbiased probabilities into a pooled workspace buffer (so neighbour
/// reads see pre-guidance values), then lets the guidance rewrite `p1`.
/// Allocation-free once the workspace pool is warm.
fn apply_guidance(
    guidance: &MotifGuidance,
    channels: usize,
    side: usize,
    ws: &mut Workspace,
    p1: &mut [f64],
) {
    let mut base = ws.take_probs(p1.len());
    base.copy_from_slice(p1);
    guidance.reweight(channels, side, &base, p1);
    ws.put_probs(base);
}

/// Applies one reverse denoising step to a lane in place: every entry is
/// kept or flipped with keep-probability `pm·eq + (1−pm)·ne`, where `pm`
/// is the network's probability that `x̃_0` matches the entry's current
/// value and `(eq, ne)` are the step's two posterior coefficients
/// ([`crate::posterior_same_prob`] / [`posterior_jump_same_prob`] at
/// `xk_equals_x0 ∈ {true, false}`). The coefficients depend only on the
/// schedule and the step — never on the state — so callers hoist them out
/// of the element loop instead of re-deriving the posterior per entry.
///
/// Exactly one RNG draw per entry, in entry order, and the same f64
/// operation sequence as evaluating the per-element posterior mixture, so
/// the hoisted form is bit-exact against the scalar one. Public so the
/// micro-benchmarks can time the sampler's non-network floor directly.
pub fn reverse_update_in_place(
    eq: f64,
    ne: f64,
    bits: &mut [bool],
    p1: &[f64],
    rng: &mut impl Rng,
) {
    // dp-lint: zero-alloc
    for (bit, &p) in bits.iter_mut().zip(p1) {
        // Probability the network gives to x̃0 equalling the current
        // state of this entry.
        let pm = if *bit { p } else { 1.0 - p };
        let keep = (pm * eq + (1.0 - pm) * ne).clamp(0.0, 1.0);
        // gen_bool(keep) == false means "flip"; XNOR avoids the branch.
        *bit = *bit == rng.gen_bool(keep);
    }
}

/// The chain's terminal draw `x̂_0 ~ Bernoulli(p1)` per entry — one RNG
/// draw per entry, in entry order. Public for the same micro-benchmark
/// reason as [`reverse_update_in_place`].
pub fn categorical_draw_in_place(bits: &mut [bool], p1: &[f64], rng: &mut impl Rng) {
    // dp-lint: zero-alloc
    for (bit, &p) in bits.iter_mut().zip(p1) {
        *bit = rng.gen_bool(p.clamp(0.0, 1.0));
    }
}

/// A fresh uniform-random state tensor (the chain's starting point).
fn uniform_state(channels: usize, side: usize, rng: &mut impl Rng) -> DeepSquishTensor {
    let bits = (0..channels * side * side)
        .map(|_| rng.gen_bool(0.5))
        .collect();
    DeepSquishTensor::from_bits(channels, side, bits).expect("valid shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrozenRegion, OracleDenoiser, UniformDenoiser};
    use rand::SeedableRng;

    fn schedule() -> NoiseSchedule {
        NoiseSchedule::linear(100, 0.01, 0.5).unwrap()
    }

    #[test]
    fn oracle_sampling_reconstructs_x0() {
        // The strongest correctness check of the reverse-process math: with
        // a confident oracle, ancestral sampling from pure noise must land
        // on x0 (every step pulls each entry towards x0's value).
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let bits: Vec<bool> = (0..64).map(|i| (i / 3) % 2 == 0).collect();
        let x0 = DeepSquishTensor::from_bits(1, 8, bits).unwrap();
        let mut oracle = OracleDenoiser::new(x0.clone(), 0.999);
        let sampler = Sampler::new(schedule());
        let out = sampler.sample_one(&mut oracle, 1, 8, &mut rng);
        let hamming: usize = out
            .bits()
            .iter()
            .zip(x0.bits())
            .filter(|(a, b)| a != b)
            .count();
        assert!(hamming <= 1, "hamming {hamming} too large");
    }

    #[test]
    fn infer_path_matches_mut_path_per_seed() {
        // Both flavours drive the same core with the same RNG stream, so a
        // fixed seed must give bit-identical samples.
        let bits: Vec<bool> = (0..64).map(|i| i % 7 == 0).collect();
        let x0 = DeepSquishTensor::from_bits(1, 8, bits).unwrap();
        let mut oracle = OracleDenoiser::new(x0, 0.9);
        let sampler = Sampler::new(schedule());
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let a = sampler.sample_one(&mut oracle, 1, 8, &mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let b = sampler.sample_one_infer(&oracle, 1, 8, &mut rng);
        assert_eq!(a, b);
        let retained = sampler.strided_steps(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let a = sampler.sample_respaced(&mut oracle, 1, 8, &retained, &mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let b = sampler.sample_respaced_infer(&oracle, 1, 8, &retained, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch_per_seed() {
        // A warm scratch must not change what gets sampled, only how much
        // is allocated.
        let bits: Vec<bool> = (0..64).map(|i| i % 5 == 0).collect();
        let x0 = DeepSquishTensor::from_bits(1, 8, bits).unwrap();
        let oracle = OracleDenoiser::new(x0, 0.9);
        let sampler = Sampler::new(schedule());
        let mut scratch = SampleScratch::new();
        // Warm it up.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let _ = sampler.sample_one_with(&oracle, 1, 8, &mut rng, &mut scratch);
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let warm = sampler.sample_one_with(&oracle, 1, 8, &mut rng, &mut scratch);
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let fresh = sampler.sample_one_infer(&oracle, 1, 8, &mut rng);
        assert_eq!(warm, fresh);
        let retained = sampler.strided_steps(7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(34);
        let warm = sampler.sample_respaced_with(&oracle, 1, 8, &retained, &mut rng, &mut scratch);
        let mut rng = rand::rngs::StdRng::seed_from_u64(34);
        let fresh = sampler.sample_respaced_infer(&oracle, 1, 8, &retained, &mut rng);
        assert_eq!(warm, fresh);
    }

    #[test]
    fn uniform_denoiser_stays_uniform() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sampler = Sampler::new(schedule());
        let mut d = UniformDenoiser::new();
        let samples = sampler.sample(&mut d, 1, 16, 4, &mut rng);
        let ones: usize = samples
            .iter()
            .map(|s| s.bits().iter().filter(|&&b| b).count())
            .sum();
        let total = 4 * 256;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.08, "fraction {frac}");
    }

    #[test]
    fn trace_contains_endpoints_and_requested_steps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let sampler = Sampler::new(schedule());
        let mut d = UniformDenoiser::new();
        let trace = sampler.sample_with_trace(&mut d, 1, 4, &[50, 10], &mut rng);
        let ks: Vec<usize> = trace.snapshots.iter().map(|(k, _)| *k).collect();
        assert_eq!(ks, vec![100, 50, 10, 0]);
        assert_eq!(trace.sample, trace.snapshots.last().unwrap().1);
    }

    #[test]
    fn trace_and_chain_agree_per_seed() {
        let mut d = UniformDenoiser::new();
        let sampler = Sampler::new(schedule());
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let via_chain = sampler.sample_one(&mut d, 1, 4, &mut rng);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let via_trace = sampler.sample_with_trace(&mut d, 1, 4, &[], &mut rng);
        assert_eq!(via_chain, via_trace.sample);
    }

    #[test]
    fn samples_have_requested_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sampler = Sampler::new(NoiseSchedule::linear(10, 0.05, 0.5).unwrap());
        let mut d = UniformDenoiser::new();
        let out = sampler.sample(&mut d, 4, 8, 3, &mut rng);
        assert_eq!(out.len(), 3);
        for t in out {
            assert_eq!((t.channels(), t.side()), (4, 8));
        }
    }

    #[test]
    fn respaced_oracle_reconstruction() {
        // Even with a stride of 10 (one tenth of the denoiser calls), a
        // confident oracle still reconstructs x0 through the generalised
        // jump posterior.
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let bits: Vec<bool> = (0..64).map(|i| (i / 4) % 2 == 1).collect();
        let x0 = DeepSquishTensor::from_bits(1, 8, bits).unwrap();
        let mut oracle = OracleDenoiser::new(x0.clone(), 0.999);
        let sampler = Sampler::new(schedule());
        let retained = sampler.strided_steps(10);
        assert!(retained.len() <= 11);
        let out = sampler.sample_respaced(&mut oracle, 1, 8, &retained, &mut rng);
        let hamming: usize = out
            .bits()
            .iter()
            .zip(x0.bits())
            .filter(|(a, b)| a != b)
            .count();
        assert!(hamming <= 2, "hamming {hamming}");
    }

    #[test]
    fn respaced_full_sequence_matches_regular_statistics() {
        // With stride 1, respaced sampling is the ordinary ancestral
        // sampler; under a uniform denoiser both keep the fair-coin
        // density.
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let sampler = Sampler::new(schedule());
        let full: Vec<usize> = (1..=100).collect();
        let mut d = UniformDenoiser::new();
        let mut ones = 0usize;
        for _ in 0..4 {
            let t = sampler.sample_respaced(&mut d, 1, 16, &full, &mut rng);
            ones += t.bits().iter().filter(|&&b| b).count();
        }
        let frac = ones as f64 / (4.0 * 256.0);
        assert!((frac - 0.5).abs() < 0.08, "{frac}");
    }

    #[test]
    fn strided_steps_cover_endpoints() {
        let sampler = Sampler::new(schedule());
        let steps = sampler.strided_steps(25);
        assert_eq!(steps.last(), Some(&100));
        assert!(steps.iter().all(|&k| (1..=100).contains(&k)));
        assert!(steps.windows(2).all(|w| w[0] < w[1]));
        // stride 1 is the full sequence
        assert_eq!(sampler.strided_steps(1).len(), 100);
    }

    #[test]
    fn strided_steps_zero_stride_is_full_sequence() {
        // Pinned contract: stride 0 clamps to 1.
        let sampler = Sampler::new(schedule());
        let full: Vec<usize> = (1..=100).collect();
        assert_eq!(sampler.strided_steps(0), full);
        assert_eq!(sampler.strided_steps(0), sampler.strided_steps(1));
    }

    #[test]
    fn strided_steps_beyond_k_keep_only_the_top_step() {
        // Pinned contract: stride >= K (even absurdly large) degenerates
        // to the single direct jump [K]; stride == K hits K exactly.
        let sampler = Sampler::new(schedule());
        assert_eq!(sampler.strided_steps(100), vec![100]);
        assert_eq!(sampler.strided_steps(101), vec![100]);
        assert_eq!(sampler.strided_steps(usize::MAX), vec![100]);
        // K = 1: every stride gives [1].
        let tiny = Sampler::new(NoiseSchedule::linear(1, 0.3, 0.5).unwrap());
        for stride in [0usize, 1, 2, 50] {
            assert_eq!(tiny.strided_steps(stride), vec![1]);
        }
    }

    #[test]
    fn batched_chains_match_sequential_chains_bit_for_bit() {
        // The tentpole contract: B lock-step lanes with per-lane RNGs must
        // reproduce B sequential single-chain samples exactly, for the
        // full ancestral chain and the respaced chain alike.
        let bits: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let x0 = DeepSquishTensor::from_bits(1, 8, bits).unwrap();
        let oracle = OracleDenoiser::new(x0, 0.9);
        let sampler = Sampler::new(schedule());
        let retained = sampler.strided_steps(9);
        for batch in [1usize, 3, 8] {
            let seeds: Vec<u64> = (0..batch as u64).map(|i| 1000 + 13 * i).collect();
            let mut scratch = BatchScratch::new();
            let mut rngs: Vec<rand::rngs::StdRng> = seeds
                .iter()
                .map(|&s| rand::rngs::StdRng::seed_from_u64(s))
                .collect();
            let batched = sampler.sample_batch_with(&oracle, 1, 8, &mut rngs, &mut scratch);
            let mut single_scratch = SampleScratch::new();
            for (li, &seed) in seeds.iter().enumerate() {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let solo = sampler.sample_one_with(&oracle, 1, 8, &mut rng, &mut single_scratch);
                assert_eq!(batched[li], solo, "B={batch} lane {li} diverged");
            }
            // Respaced flavour, reusing the (now warm) scratches.
            let mut rngs: Vec<rand::rngs::StdRng> = seeds
                .iter()
                .map(|&s| rand::rngs::StdRng::seed_from_u64(s))
                .collect();
            let batched = sampler.sample_respaced_batch_with(
                &oracle,
                1,
                8,
                &retained,
                &mut rngs,
                &mut scratch,
            );
            for (li, &seed) in seeds.iter().enumerate() {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let solo = sampler.sample_respaced_with(
                    &oracle,
                    1,
                    8,
                    &retained,
                    &mut rng,
                    &mut single_scratch,
                );
                assert_eq!(batched[li], solo, "respaced B={batch} lane {li} diverged");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let sampler = Sampler::new(schedule());
        let oracle = UniformDenoiser::new();
        let mut scratch = BatchScratch::new();
        let mut rngs: Vec<rand::rngs::StdRng> = Vec::new();
        assert!(sampler
            .sample_batch_with(&oracle, 1, 8, &mut rngs, &mut scratch)
            .is_empty());
        let retained = sampler.strided_steps(10);
        assert!(sampler
            .sample_respaced_batch_with(&oracle, 1, 8, &retained, &mut rngs, &mut scratch)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn respaced_rejects_unsorted_steps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let sampler = Sampler::new(schedule());
        let mut d = UniformDenoiser::new();
        let _ = sampler.sample_respaced(&mut d, 1, 4, &[50, 10], &mut rng);
    }

    #[test]
    fn conditioning_none_is_bit_identical_to_unconditioned_entry_points() {
        // The conditioned core IS the unconditioned sampler under
        // `Conditioning::none()`: same draws, same samples, single-lane
        // and batched, full chain and respaced.
        let bits: Vec<bool> = (0..64).map(|i| i % 4 == 0).collect();
        let x0 = DeepSquishTensor::from_bits(1, 8, bits).unwrap();
        let oracle = OracleDenoiser::new(x0, 0.9);
        let sampler = Sampler::new(schedule());
        let none = Conditioning::none();
        let full = sampler.strided_steps(1);
        let retained = sampler.strided_steps(8);
        let mut scratch = SampleScratch::new();
        for (steps, seed) in [(&full, 41u64), (&retained, 42)] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let cond = sampler.sample_conditioned_with(
                &oracle,
                1,
                8,
                steps,
                &none,
                &mut rng,
                &mut scratch,
            );
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let plain = sampler.sample_respaced_with(&oracle, 1, 8, steps, &mut rng, &mut scratch);
            assert_eq!(cond, plain);
        }
    }

    fn frozen_checkerboard(entries: usize, offset: usize, span: usize) -> FrozenRegion {
        let mask: Vec<bool> = (0..entries)
            .map(|i| (offset..offset + span).contains(&i))
            .collect();
        let bits: Vec<bool> = (0..entries).map(|i| i % 2 == 0).collect();
        FrozenRegion::new(mask, bits).unwrap()
    }

    #[test]
    fn conditioned_batch_matches_sequential_conditioned_lanes() {
        // Same lock-step bit-identity contract as the unconditioned batch,
        // now with a frozen region + guidance attached to every lane.
        let bits: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let x0 = DeepSquishTensor::from_bits(1, 8, bits).unwrap();
        let oracle = OracleDenoiser::new(x0, 0.9);
        let sampler = Sampler::new(schedule());
        let cond = Conditioning::none()
            .with_frozen(frozen_checkerboard(64, 5, 20))
            .with_avoid(MotifGuidance::new(crate::Motif::IsolatedCell, 2.0).unwrap());
        let retained = sampler.strided_steps(6);
        let seeds: Vec<u64> = (0..5u64).map(|i| 7000 + 11 * i).collect();
        let mut scratch = BatchScratch::new();
        let mut rngs: Vec<rand::rngs::StdRng> = seeds
            .iter()
            .map(|&s| rand::rngs::StdRng::seed_from_u64(s))
            .collect();
        let batched = sampler.sample_conditioned_batch_with(
            &oracle,
            1,
            8,
            &retained,
            &cond,
            &mut rngs,
            &mut scratch,
        );
        let mut solo_scratch = SampleScratch::new();
        for (li, &seed) in seeds.iter().enumerate() {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let solo = sampler.sample_conditioned_with(
                &oracle,
                1,
                8,
                &retained,
                &cond,
                &mut rng,
                &mut solo_scratch,
            );
            assert_eq!(batched[li], solo, "lane {li} diverged");
        }
    }

    #[test]
    fn guidance_suppresses_isolated_cells() {
        // An oracle that believes in a field of isolated single-cell dots:
        // unguided sampling reproduces most of them; isolated-cell
        // guidance sees each dot's logit against a firmly-empty
        // neighbourhood and pushes it down.
        let sampler = Sampler::new(schedule());
        let dot = |n: usize, m: usize| n % 4 == 1 && m % 4 == 1;
        let bits: Vec<bool> = (0..256).map(|i| dot(i % 16, i / 16)).collect();
        let x0 = DeepSquishTensor::from_bits(1, 16, bits).unwrap();
        let oracle = OracleDenoiser::new(x0, 0.9);
        let retained = sampler.strided_steps(1);
        let dots_present = |t: &DeepSquishTensor| -> usize {
            (0..256)
                .filter(|&i| dot(i % 16, i / 16) && t.bits()[i])
                .count()
        };
        let cond = Conditioning::none()
            .with_avoid(MotifGuidance::new(crate::Motif::IsolatedCell, 6.0).unwrap());
        let mut scratch = SampleScratch::new();
        let (mut plain, mut guided) = (0usize, 0usize);
        for seed in 0..8u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let t = sampler.sample_conditioned_with(
                &oracle,
                1,
                16,
                &retained,
                &Conditioning::none(),
                &mut rng,
                &mut scratch,
            );
            plain += dots_present(&t);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let t = sampler.sample_conditioned_with(
                &oracle,
                1,
                16,
                &retained,
                &cond,
                &mut rng,
                &mut scratch,
            );
            guided += dots_present(&t);
        }
        assert!(
            guided * 2 < plain,
            "guidance did not suppress isolated dots: {guided} vs {plain}"
        );
    }

    #[test]
    #[should_panic(expected = "does not span")]
    fn conditioned_core_rejects_wrong_mask_shape() {
        let sampler = Sampler::new(schedule());
        let d = UniformDenoiser::new();
        let cond = Conditioning::none().with_frozen(frozen_checkerboard(32, 0, 8));
        let retained = sampler.strided_steps(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = sampler.sample_conditioned_with(
            &d,
            1,
            8, // 64 entries, mask has 32
            &retained,
            &cond,
            &mut rng,
            &mut SampleScratch::new(),
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        #[test]
        fn frozen_bits_survive_every_offset_and_seed(
            offset in 0usize..64,
            span in 1usize..32,
            seed in proptest::prelude::any::<u64>(),
            stride in 0usize..12,
        ) {
            // The inpainting contract, at every mask offset: output bits
            // under the mask equal the frozen input bits, for all seeds,
            // full-chain and respaced alike.
            let sampler = Sampler::new(NoiseSchedule::linear(24, 0.02, 0.5).unwrap());
            let d = UniformDenoiser::new();
            let span = span.min(64 - offset);
            let region = frozen_checkerboard(64, offset, span);
            let cond = Conditioning::none().with_frozen(region.clone());
            let retained = sampler.strided_steps(stride);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let out = sampler.sample_conditioned_with(
                &d, 1, 8, &retained, &cond, &mut rng, &mut SampleScratch::new(),
            );
            for (i, &frozen) in region.mask().iter().enumerate() {
                if frozen {
                    proptest::prop_assert_eq!(out.bits()[i], region.bits()[i]);
                }
            }
        }
    }

    #[test]
    fn noise_dominates_early_denoising_late() {
        // With a confident oracle, the state at a late snapshot (small k)
        // must be closer to x0 than the initial noise was.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let bits: Vec<bool> = (0..256).map(|i| i % 5 == 0).collect();
        let x0 = DeepSquishTensor::from_bits(1, 16, bits).unwrap();
        let mut oracle = OracleDenoiser::new(x0.clone(), 0.999);
        let sampler = Sampler::new(schedule());
        let trace = sampler.sample_with_trace(&mut oracle, 1, 16, &[5], &mut rng);
        let dist = |t: &DeepSquishTensor| -> usize {
            t.bits()
                .iter()
                .zip(x0.bits())
                .filter(|(a, b)| a != b)
                .count()
        };
        let initial = dist(&trace.snapshots[0].1);
        let late = dist(&trace.snapshots[1].1);
        assert!(
            late < initial / 4,
            "late {late} should be far below initial {initial}"
        );
    }
}
