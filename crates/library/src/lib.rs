//! `dp_library` — a durable, append-only, content-addressed store for
//! squish pattern libraries.
//!
//! The DiffPattern pipeline (DAC 2023) ends in a *library*: the
//! deduplicated, DRC-legal pattern set whose complexity-distribution
//! entropy is the paper's diversity metric (Definition 1). Earlier
//! layers of this repo built libraries in memory and threw them away;
//! this crate makes the library a first-class on-disk artifact:
//!
//! * **Content-addressed segments** — append-only segment files of
//!   length-prefixed, CRC-checksummed records, keyed by topology hash;
//!   each topology bucket holds its legal Δ-variants. Reads are
//!   zero-copy-in-spirit buffered positional reads; the index is
//!   rebuildable from segments alone.
//! * **Streaming dedup** — exact topology-level and Δ-variant-level
//!   dedup at ingest, always confirmed by byte comparison (hashes only
//!   prune candidates, they never decide).
//! * **Online diversity accounting** — complexity histogram and
//!   Shannon entropy updated O(1) per pattern, bit-for-bit identical to
//!   the one-shot table1 computation, with a timestamped
//!   `results.md`-style matrix regenerated at every checkpoint.
//! * **Checkpoint/resume** — [`LibraryWriter`] commits durably at
//!   segment boundaries; a killed build resumes from the last
//!   checkpoint and converges to a library content-identical to an
//!   uninterrupted run. Torn tail records are detected by checksum and
//!   safely discarded; loss of *committed* bytes is a hard
//!   [`LibraryError::DataLoss`].
//!
//! [`merge_libraries`] combines seed-space shard libraries
//! deterministically into the same store a single process would have
//! produced.

pub mod codec;
pub mod diversity;
pub mod error;
pub mod matrix;
pub mod store;

pub use codec::{crc32, scan_frame, topology_hash, variant_hash, FrameScan, Record};
pub use diversity::DiversityMeter;
pub use error::LibraryError;
pub use matrix::{format_utc_timestamp, render_matrix, write_matrix, MatrixRow};
pub use store::{
    merge_libraries, BucketStats, IngestOutcome, Library, LibraryConfig, LibraryWriter, RecordRef,
    WriterTotals,
};
