//! Incremental diversity accounting (paper Definition 1).
//!
//! The paper's diversity metric is the Shannon entropy, in bits, of the
//! library's complexity distribution. The table1 harness computes it
//! one-shot via [`dp_datagen::PatternLibrary::diversity`]; this module
//! maintains the same quantity *online*, O(1) per inserted pattern.
//!
//! Two figures are exposed:
//!
//! * [`DiversityMeter::diversity`] delegates to an embedded
//!   [`PatternLibrary`], so it is **bit-for-bit identical** to the
//!   one-shot computation on the same multiset — by construction, not
//!   by numerical luck.
//! * [`DiversityMeter::running_entropy`] is the O(1) update: it
//!   maintains `S = Σ c·log₂c` across count changes and evaluates
//!   `H = log₂N − S/N` without touching the histogram. It agrees with
//!   the exact figure to floating-point accumulation error (pinned to
//!   `1e-9` in tests) and is what the hot ingest path reports.

use dp_datagen::PatternLibrary;
use std::collections::BTreeMap;

/// Online complexity histogram + Shannon entropy for one library bucket.
///
/// The histogram is a `BTreeMap` so any future iteration (debug dumps,
/// merges, heat maps) is in deterministic key order — this type feeds
/// `results.md`, where byte-stability across runs is a contract.
#[derive(Debug, Clone, Default)]
pub struct DiversityMeter {
    lib: PatternLibrary,
    counts: BTreeMap<(usize, usize), usize>,
    sum_clog: f64,
}

impl DiversityMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one pattern by its core complexity, O(1).
    pub fn add(&mut self, cx: usize, cy: usize) {
        let c = self.counts.entry((cx, cy)).or_insert(0);
        let old = *c as f64;
        *c += 1;
        let new = *c as f64;
        if *c > 1 {
            self.sum_clog -= old * old.log2();
        }
        self.sum_clog += new * new.log2();
        self.lib.add_complexity(cx, cy);
    }

    /// Number of recorded patterns.
    pub fn len(&self) -> usize {
        self.lib.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.lib.is_empty()
    }

    /// Number of distinct complexity pairs.
    pub fn distinct(&self) -> usize {
        self.lib.distinct()
    }

    /// The exact diversity: delegates to [`PatternLibrary::diversity`],
    /// the same code path the table1 harness runs, so the two can never
    /// disagree even in the last bit.
    pub fn diversity(&self) -> f64 {
        self.lib.diversity()
    }

    /// The O(1) running entropy `log₂N − (Σ c·log₂c)/N`.
    pub fn running_entropy(&self) -> f64 {
        let n = self.lib.len();
        if n == 0 {
            return 0.0;
        }
        (n as f64).log2() - self.sum_clog / n as f64
    }

    /// The underlying histogram, for heat maps and merging.
    pub fn histogram(&self) -> &PatternLibrary {
        &self.lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_one_shot_library_bit_for_bit() {
        let mut meter = DiversityMeter::new();
        let mut oneshot = PatternLibrary::new();
        let mut x = 7u64;
        for _ in 0..500 {
            // Cheap deterministic scatter over a small complexity space.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let cx = (x >> 33) as usize % 9 + 1;
            let cy = (x >> 45) as usize % 7 + 1;
            meter.add(cx, cy);
            oneshot.add_complexity(cx, cy);
            assert_eq!(meter.diversity().to_bits(), oneshot.diversity().to_bits());
        }
        assert_eq!(meter.len(), oneshot.len());
        assert_eq!(meter.distinct(), oneshot.distinct());
    }

    #[test]
    fn running_entropy_tracks_exact_within_tolerance() {
        let mut meter = DiversityMeter::new();
        assert_eq!(meter.running_entropy(), 0.0);
        let mut x = 3u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            meter.add((x >> 33) as usize % 12, (x >> 47) as usize % 5);
            assert!(
                (meter.running_entropy() - meter.diversity()).abs() < 1e-9,
                "running {} vs exact {}",
                meter.running_entropy(),
                meter.diversity()
            );
        }
    }
}
