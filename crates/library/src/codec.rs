//! The on-disk record codec: length-prefixed, CRC32-checksummed frames
//! holding self-describing pattern records.
//!
//! Every fact the store needs — index, dedup state, complexity
//! histograms, counters — is derivable from the record stream alone, so
//! a library opens correctly even if its checkpoint file is missing
//! (the checkpoint is an accelerator and a durability marker, not the
//! source of truth).
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [payload_len: u32][crc32(payload): u32][payload]
//! ```
//!
//! Payload v1:
//!
//! ```text
//! version:u8  method_len:u8 method  ruleset_len:u8 ruleset
//! source_index:u64  dups_since_prev:u32  skips_since_prev:u32
//! flags:u8 (bit0 = legal)  cx:u16 cy:u16  width:u16 height:u16
//! topology bits (row-major, LSB-first, ceil(w*h/8) bytes)
//! dx: width × i32   dy: height × i32
//! ```
//!
//! `dups_since_prev` / `skips_since_prev` make dedup and shortfall
//! accounting durable without writing a record per dropped item: each
//! accepted record carries the number of duplicate and skipped source
//! indices since the previous accepted record in its bucket.

use crate::error::LibraryError;
use dp_geometry::BitGrid;
use dp_squish::SquishPattern;

/// Codec version written into every payload.
pub const RECORD_VERSION: u8 = 1;

/// Upper bound on a sane payload length; anything larger during a scan
/// is treated as a torn or corrupt frame.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Bytes of frame overhead preceding each payload.
pub const FRAME_HEADER: usize = 8;

// CRC-32 (IEEE 802.3, reflected) with a compile-time table.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // dp-lint: allow(truncating-cast-in-codec): const fn, TryFrom is not const; i < 256 by the loop bound
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        // Masked to 8 bits, so the index conversion is total.
        let idx = usize::try_from((c ^ u32::from(b)) & 0xFF).unwrap_or(0);
        c = CRC_TABLE[idx] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit seed.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Absorbs bytes into an FNV-1a 64-bit state.
pub fn fnv1a(mut state: u64, data: &[u8]) -> u64 {
    for &b in data {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x1000_0000_01b3);
    }
    state
}

/// Content hash of a topology: FNV-1a over `(width, height, packed bits)`.
pub fn topology_hash(grid: &BitGrid) -> u64 {
    // Grids are bounded far below u32::MAX per side; saturating keeps
    // the historical u32-LE hash input without a truncating cast.
    let w32 = u32::try_from(grid.width()).unwrap_or(u32::MAX);
    let h32 = u32::try_from(grid.height()).unwrap_or(u32::MAX);
    let mut h = fnv1a(FNV_OFFSET, &w32.to_le_bytes());
    h = fnv1a(h, &h32.to_le_bytes());
    fnv1a(h, &pack_bits(grid))
}

/// Content hash of a record's Δ vectors: FNV-1a over `dx ++ dy`.
pub fn variant_hash(dx: &[i64], dy: &[i64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &v in dx {
        h = fnv1a(h, &v.to_le_bytes());
    }
    h = fnv1a(h, &[0xFF]);
    for &v in dy {
        h = fnv1a(h, &v.to_le_bytes());
    }
    h
}

/// Packs a topology row-major, LSB-first, into `ceil(w*h/8)` bytes.
pub fn pack_bits(grid: &BitGrid) -> Vec<u8> {
    let cells = grid.cells();
    let mut out = vec![0u8; cells.len().div_ceil(8)];
    for (i, &bit) in cells.iter().enumerate() {
        if bit {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// A fully decoded record: one stored pattern plus its bucket identity
/// and the dedup/skip deltas that make the accounting durable.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Generator identity (e.g. `diffpattern`, `real`).
    pub method: String,
    /// Ruleset identity (e.g. a preset name).
    pub ruleset: String,
    /// Index of this pattern in its bucket's generation stream.
    pub source_index: u64,
    /// Duplicate items dropped since the previous record in this bucket.
    pub dups_since_prev: u32,
    /// Skipped (shortfall) indices since the previous record.
    pub skips_since_prev: u32,
    /// Whether the pattern passed DRC at ingest time.
    pub legal: bool,
    /// Complexity of the squished core (paper Definition 1 statistic).
    pub complexity: (u16, u16),
    /// The stored squish pattern.
    pub pattern: SquishPattern,
}

impl Record {
    /// Encodes the payload (no frame header).
    pub fn encode(&self) -> Result<Vec<u8>, LibraryError> {
        let topo = self.pattern.topology();
        let w = topo.width();
        let h = topo.height();
        let invalid = |d: &str| LibraryError::Invalid {
            detail: d.to_string(),
        };
        let method_len = u8::try_from(self.method.len())
            .map_err(|_| invalid("method/ruleset labels are limited to 255 bytes"))?;
        let ruleset_len = u8::try_from(self.ruleset.len())
            .map_err(|_| invalid("method/ruleset labels are limited to 255 bytes"))?;
        let (w16, h16) = (
            u16::try_from(w).map_err(|_| invalid("topology wider than u16"))?,
            u16::try_from(h).map_err(|_| invalid("topology taller than u16"))?,
        );
        let mut out = Vec::with_capacity(64 + w * h / 8 + 4 * (w + h));
        out.push(RECORD_VERSION);
        out.push(method_len);
        out.extend_from_slice(self.method.as_bytes());
        out.push(ruleset_len);
        out.extend_from_slice(self.ruleset.as_bytes());
        out.extend_from_slice(&self.source_index.to_le_bytes());
        out.extend_from_slice(&self.dups_since_prev.to_le_bytes());
        out.extend_from_slice(&self.skips_since_prev.to_le_bytes());
        out.push(u8::from(self.legal));
        out.extend_from_slice(&self.complexity.0.to_le_bytes());
        out.extend_from_slice(&self.complexity.1.to_le_bytes());
        out.extend_from_slice(&w16.to_le_bytes());
        out.extend_from_slice(&h16.to_le_bytes());
        out.extend_from_slice(&pack_bits(topo));
        for &d in self.pattern.dx().iter().chain(self.pattern.dy()) {
            let d32 = i32::try_from(d).map_err(|_| invalid("delta out of i32 range"))?;
            out.extend_from_slice(&d32.to_le_bytes());
        }
        Ok(out)
    }

    /// Encodes the payload and wraps it in a `[len][crc]` frame.
    pub fn frame(&self) -> Result<Vec<u8>, LibraryError> {
        let payload = self.encode()?;
        let len32 = u32::try_from(payload.len()).map_err(|_| LibraryError::Invalid {
            detail: "payload length exceeds the u32 frame field".to_string(),
        })?;
        let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
        out.extend_from_slice(&len32.to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Decodes a payload produced by [`Record::encode`].
    pub fn decode(payload: &[u8]) -> Result<Record, LibraryError> {
        let mut r = Cursor::new(payload);
        let version = r.u8()?;
        if version != RECORD_VERSION {
            return Err(corrupt(format!("unknown record version {version}")));
        }
        let method = r.label()?;
        let ruleset = r.label()?;
        let source_index = r.u64()?;
        let dups_since_prev = r.u32()?;
        let skips_since_prev = r.u32()?;
        let flags = r.u8()?;
        if flags & !1 != 0 {
            return Err(corrupt(format!("unknown record flags {flags:#x}")));
        }
        let cx = r.u16()?;
        let cy = r.u16()?;
        let w = usize::from(r.u16()?);
        let h = usize::from(r.u16()?);
        let bits = r.take((w * h).div_ceil(8))?;
        let cells: Vec<bool> = (0..w * h)
            .map(|i| bits[i / 8] >> (i % 8) & 1 != 0)
            .collect();
        let topology = BitGrid::from_cells(w, h, cells)
            .map_err(|e| corrupt(format!("stored topology invalid: {e}")))?;
        let dx: Vec<i64> = (0..w)
            .map(|_| r.i32().map(i64::from))
            .collect::<Result<_, _>>()?;
        let dy: Vec<i64> = (0..h)
            .map(|_| r.i32().map(i64::from))
            .collect::<Result<_, _>>()?;
        r.finish()?;
        let pattern = SquishPattern::new(topology, dx, dy)
            .map_err(|e| corrupt(format!("stored pattern invalid: {e}")))?;
        Ok(Record {
            method,
            ruleset,
            source_index,
            dups_since_prev,
            skips_since_prev,
            legal: flags & 1 != 0,
            complexity: (cx, cy),
            pattern,
        })
    }
}

fn corrupt(detail: String) -> LibraryError {
    LibraryError::Corrupt { detail }
}

/// A bounds-checked little-endian payload reader, shared by the record
/// and checkpoint decoders.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], LibraryError> {
        if self.buf.len() - self.at < n {
            return Err(corrupt("payload truncated".to_string()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, LibraryError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, LibraryError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, LibraryError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, LibraryError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, LibraryError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn label(&mut self) -> Result<String, LibraryError> {
        let n = usize::from(self.u8()?);
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("label is not UTF-8".to_string()))
    }

    pub(crate) fn finish(&self) -> Result<(), LibraryError> {
        if self.at != self.buf.len() {
            return Err(corrupt(format!(
                "payload has {} trailing bytes",
                self.buf.len() - self.at
            )));
        }
        Ok(())
    }
}

/// Outcome of scanning one frame at an offset inside a segment buffer.
#[derive(Debug)]
pub enum FrameScan {
    /// A frame whose checksum verified; `payload` borrows the buffer and
    /// `next` is the offset one past the frame.
    Valid {
        /// Payload byte range within the segment buffer.
        payload: std::ops::Range<usize>,
        /// Stored CRC32 of the payload.
        crc: u32,
        /// Offset of the byte after this frame.
        next: usize,
    },
    /// The bytes at this offset are not a valid frame (torn tail or
    /// corruption — the caller decides which based on the checkpoint).
    Invalid {
        /// Human-readable reason, for diagnostics.
        reason: String,
    },
    /// The offset is exactly at end-of-buffer: a clean boundary.
    End,
}

/// Scans one frame starting at `offset` in `buf`.
pub fn scan_frame(buf: &[u8], offset: usize) -> FrameScan {
    if offset == buf.len() {
        return FrameScan::End;
    }
    if buf.len() - offset < FRAME_HEADER {
        return FrameScan::Invalid {
            reason: "truncated frame header".to_string(),
        };
    }
    // u32 → usize is total on every supported (32/64-bit) target.
    let len32 = u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap());
    let len = usize::try_from(len32).unwrap_or(usize::MAX);
    let crc = u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().unwrap());
    if len == 0 || len > MAX_PAYLOAD {
        return FrameScan::Invalid {
            reason: format!("implausible payload length {len}"),
        };
    }
    let start = offset + FRAME_HEADER;
    if buf.len() - start < len {
        return FrameScan::Invalid {
            reason: "frame extends past end of segment".to_string(),
        };
    }
    let payload = start..start + len;
    if crc32(&buf[payload.clone()]) != crc {
        return FrameScan::Invalid {
            reason: "payload checksum mismatch".to_string(),
        };
    }
    FrameScan::Valid {
        payload,
        crc,
        next: start + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pattern() -> SquishPattern {
        let topo = BitGrid::from_ascii(".#.\n#.#\n.#.\n###").unwrap();
        SquishPattern::new(topo, vec![60, 70, 80], vec![60, 61, 62, 63]).unwrap()
    }

    fn sample_record() -> Record {
        let pattern = sample_pattern();
        let complexity = {
            let (cx, cy) = dp_squish::complexity_of_grid(pattern.topology());
            (cx as u16, cy as u16)
        };
        Record {
            method: "diffpattern".to_string(),
            ruleset: "standard".to_string(),
            source_index: 42,
            dups_since_prev: 3,
            skips_since_prev: 1,
            legal: true,
            complexity,
            pattern,
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let record = sample_record();
        let payload = record.encode().unwrap();
        let back = Record::decode(&payload).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_scan_accepts_valid_and_rejects_flipped_bit() {
        let record = sample_record();
        let mut bytes = record.frame().unwrap();
        match scan_frame(&bytes, 0) {
            FrameScan::Valid { payload, next, .. } => {
                assert_eq!(next, bytes.len());
                assert_eq!(Record::decode(&bytes[payload]).unwrap(), record);
            }
            other => panic!("expected valid frame, got {other:?}"),
        }
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(matches!(scan_frame(&bytes, 0), FrameScan::Invalid { .. }));
    }

    #[test]
    fn frame_scan_flags_torn_tails() {
        let record = sample_record();
        let bytes = record.frame().unwrap();
        for cut in 1..bytes.len() {
            assert!(
                matches!(scan_frame(&bytes[..cut], 0), FrameScan::Invalid { .. }),
                "cut at {cut} should be torn"
            );
        }
        assert!(matches!(scan_frame(&bytes, bytes.len()), FrameScan::End));
    }

    #[test]
    fn topology_hash_distinguishes_shape_from_content() {
        let a = BitGrid::from_ascii("##\n..").unwrap();
        let b = BitGrid::from_ascii("#.\n#.").unwrap();
        let c = BitGrid::from_ascii("##..").unwrap();
        assert_ne!(topology_hash(&a), topology_hash(&b));
        assert_ne!(topology_hash(&a), topology_hash(&c));
        assert_eq!(topology_hash(&a), topology_hash(&a.clone()));
    }

    #[test]
    fn variant_hash_separates_dx_dy_boundary() {
        assert_ne!(variant_hash(&[1, 2], &[3]), variant_hash(&[1], &[2, 3]));
        assert_eq!(variant_hash(&[1, 2], &[3]), variant_hash(&[1, 2], &[3]));
    }
}
