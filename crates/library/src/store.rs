//! The durable, append-only, content-addressed pattern store.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/segments/seg-000000.dpl   8-byte magic, then framed records
//! <dir>/segments/seg-000001.dpl   ...
//! <dir>/checkpoint.dpl            durability marker (tmp + rename)
//! <dir>/results.md                human-readable matrix (regenerated)
//! ```
//!
//! Records are keyed by topology hash; each topology bucket holds its
//! legal Δ-variants. Reads are buffered positional reads (`pread`) —
//! the workspace forbids `unsafe`, so no `mmap` — against long-lived
//! per-segment file handles.
//!
//! # Durability contract
//!
//! The durable state of a library is *the longest valid checksummed
//! record prefix of its segment chain*. [`LibraryWriter`] commits at
//! segment boundaries (fsync + checkpoint rename); the checkpoint
//! accelerates opening and marks which bytes are *committed* — losing
//! committed bytes is a hard [`LibraryError::DataLoss`], while torn or
//! truncated bytes past the committed length are silently discarded as
//! an ordinary crash tail. Every counter the store reports is derivable
//! from the record prefix (records carry their bucket, the source
//! index, and the dedup/skip deltas since the previous record), so a
//! killed build resumes from `next_index` and converges to content
//! identical to an uninterrupted run.

use crate::codec::{
    crc32, fnv1a, scan_frame, topology_hash, variant_hash, Cursor, FrameScan, Record, FNV_OFFSET,
};
use crate::diversity::DiversityMeter;
use crate::error::LibraryError;
use crate::matrix::{format_utc_timestamp, write_matrix, MatrixRow};
use dp_datagen::PatternLibrary;
use dp_squish::{complexity_of_grid, SquishPattern};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const SEG_MAGIC: &[u8; 8] = b"DPLSEG1\0";
const CKPT_MAGIC: &[u8; 8] = b"DPLCKPT1";
const CKPT_VERSION: u8 = 1;

/// Tuning knobs for [`LibraryWriter`].
#[derive(Debug, Clone)]
pub struct LibraryConfig {
    /// Segment size threshold: once the active segment reaches this many
    /// bytes it is sealed (fsync + checkpoint) and a new one is opened.
    pub segment_bytes: u64,
    /// Fixed timestamp string for the results matrix, used by tests and
    /// reproducible builds; `None` means wall-clock UTC.
    pub timestamp_override: Option<String>,
}

impl Default for LibraryConfig {
    fn default() -> Self {
        LibraryConfig {
            segment_bytes: 256 * 1024,
            timestamp_override: None,
        }
    }
}

/// Locator plus pre-decoded identity of one stored record.
#[derive(Debug, Clone, Copy)]
pub struct RecordRef {
    seg: u32,
    offset: u64,
    len: u32,
    crc: u32,
    variant_hash: u64,
    /// Index of this pattern in its bucket's generation stream.
    pub source_index: u64,
    /// Whether the pattern was DRC-clean at ingest.
    pub legal: bool,
    /// Complexity of the squished core.
    pub complexity: (u16, u16),
}

/// What happened to an ingested pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// First pattern with this topology in its bucket.
    NewTopology,
    /// New Δ-variant of an already-stored topology (Fig. 7's
    /// one-topology-many-patterns path).
    NewVariant,
    /// Byte-identical to a stored record; dropped, counted.
    Duplicate,
}

/// Snapshot of one `(method, ruleset)` bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketStats {
    /// First source index this bucket ever ingested.
    pub base: u64,
    /// Next source index the bucket expects (the resume cursor).
    pub next_index: u64,
    /// Stored (post-dedup) records.
    pub accepted: u64,
    /// Duplicates dropped at ingest.
    pub duplicates: u64,
    /// Source indices skipped (generator shortfall).
    pub skipped: u64,
    /// Stored records that were DRC-clean.
    pub legal: u64,
    /// Distinct stored topologies.
    pub topologies: u64,
    /// Distinct complexity pairs.
    pub distinct_complexities: u64,
    /// Exact diversity (paper Definition 1), bits.
    pub diversity: f64,
    /// O(1)-maintained running entropy, bits.
    pub running_entropy: f64,
    /// Timestamp of the last change, from the checkpoint.
    pub updated: String,
}

/// Lifetime-of-this-process writer counters, for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterTotals {
    /// Records appended by this writer instance.
    pub accepted: u64,
    /// Duplicates dropped by this writer instance.
    pub duplicates: u64,
    /// Bytes appended by this writer instance.
    pub bytes_written: u64,
}

#[derive(Debug, Default)]
struct TopoGroup {
    refs: Vec<RecordRef>,
}

#[derive(Debug, Default)]
struct BucketState {
    base: u64,
    cursor: u64,
    accepted: u64,
    duplicates: u64,
    skipped: u64,
    legal: u64,
    /// Σ `dups_since_prev` over stored records (the *attached* events).
    dup_delta_total: u64,
    /// Σ `skips_since_prev` over stored records.
    skip_delta_total: u64,
    /// Events since the last stored record, to be attached to the next.
    pending_dups: u64,
    pending_skips: u64,
    meter: DiversityMeter,
    /// Dedup groups keyed by topology hash; `BTreeMap` so stats that
    /// fold over groups visit them in one deterministic order.
    topos: BTreeMap<u64, Vec<TopoGroup>>,
    order: Vec<RecordRef>,
    updated: String,
    last_ckpt: (u64, u64, u64, u64),
}

impl BucketState {
    fn new_at(base: u64) -> Self {
        BucketState {
            base,
            cursor: base,
            // Force a timestamp refresh at the first checkpoint.
            last_ckpt: (u64::MAX, 0, 0, 0),
            ..Default::default()
        }
    }

    fn sig(&self) -> (u64, u64, u64, u64) {
        (self.cursor, self.accepted, self.duplicates, self.skipped)
    }

    fn stats(&self) -> BucketStats {
        BucketStats {
            base: self.base,
            next_index: self.cursor,
            accepted: self.accepted,
            duplicates: self.duplicates,
            skipped: self.skipped,
            legal: self.legal,
            topologies: self.topos.values().map(|g| g.len() as u64).sum(),
            distinct_complexities: self.meter.distinct() as u64,
            diversity: self.meter.diversity(),
            running_entropy: self.meter.running_entropy(),
            updated: self.updated.clone(),
        }
    }
}

struct CkptBucket {
    method: String,
    ruleset: String,
    base: u64,
    cursor: u64,
    accepted: u64,
    duplicates: u64,
    skipped: u64,
    legal: u64,
    updated: String,
}

struct Checkpoint {
    segments: Vec<u64>,
    buckets: Vec<CkptBucket>,
}

/// A read-only view of a pattern library on disk.
///
/// Opening scans every segment, validates checksums, truncates torn
/// tails (in the last segment only), rebuilds the content-addressed
/// index and the diversity accounting, and cross-checks the checkpoint.
/// The index is rebuildable from segments alone: a missing checkpoint
/// only costs the dedup/skip events that happened after the last
/// accepted record (which a resumed build replays deterministically).
pub struct Library {
    dir: PathBuf,
    segments: Vec<u64>,
    files: Vec<File>,
    buckets: BTreeMap<(String, String), BucketState>,
}

impl std::fmt::Debug for Library {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Library")
            .field("dir", &self.dir)
            .field("segments", &self.segments)
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

fn corrupt(detail: String) -> LibraryError {
    LibraryError::Corrupt { detail }
}

fn data_loss(detail: String) -> LibraryError {
    LibraryError::DataLoss { detail }
}

fn segment_name(i: usize) -> String {
    format!("seg-{i:06}.dpl")
}

fn pread_exact(file: &File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(windows)]
    {
        use std::os::windows::fs::FileExt;
        let mut done = 0;
        while done < buf.len() {
            let n = file.seek_read(&mut buf[done..], offset + done as u64)?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            done += n;
        }
        Ok(())
    }
}

fn pwrite_all(file: &File, offset: u64, buf: &[u8]) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, offset)
    }
    #[cfg(windows)]
    {
        use std::os::windows::fs::FileExt;
        let mut done = 0;
        while done < buf.len() {
            done += file.seek_write(&buf[done..], offset + done as u64)?;
        }
        Ok(())
    }
}

fn read_record(
    files: &[File],
    r: &RecordRef,
    scratch: &mut Vec<u8>,
) -> Result<Record, LibraryError> {
    let file = files
        .get(r.seg as usize)
        .ok_or_else(|| corrupt(format!("record reference to unknown segment {}", r.seg)))?;
    scratch.resize(r.len as usize, 0);
    pread_exact(file, r.offset, scratch)?;
    if crc32(scratch) != r.crc {
        return Err(corrupt(format!(
            "segment {} offset {}: payload no longer matches its checksum",
            r.seg, r.offset
        )));
    }
    Record::decode(scratch)
}

impl Library {
    /// Opens a library read-only. Fails with [`LibraryError::Invalid`]
    /// when `dir` does not hold a library.
    pub fn open(dir: impl AsRef<Path>) -> Result<Library, LibraryError> {
        let dir = dir.as_ref().to_path_buf();
        if !dir.join("segments").is_dir() {
            return Err(LibraryError::Invalid {
                detail: format!("{} is not a pattern library (no segments/)", dir.display()),
            });
        }
        let (lib, _) = load_state(dir)?;
        Ok(lib)
    }

    /// The library's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All `(method, ruleset)` buckets, in sorted order.
    pub fn buckets(&self) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.buckets.keys().map(|(m, r)| (m.as_str(), r.as_str()))
    }

    /// Snapshot of one bucket's accounting.
    pub fn stats(&self, method: &str, ruleset: &str) -> Option<BucketStats> {
        self.bucket(method, ruleset).map(BucketState::stats)
    }

    /// The complexity histogram of one bucket — the very
    /// [`PatternLibrary`] type the table1 harness aggregates into, so
    /// its `diversity()` is the paper's Definition 1 verbatim.
    pub fn histogram(&self, method: &str, ruleset: &str) -> Option<&PatternLibrary> {
        self.bucket(method, ruleset).map(|b| b.meter.histogram())
    }

    /// One bucket's records in ascending `source_index` order.
    pub fn records(&self, method: &str, ruleset: &str) -> Option<&[RecordRef]> {
        self.bucket(method, ruleset).map(|b| b.order.as_slice())
    }

    /// Reads one record back, verifying its checksum. `scratch` is the
    /// caller-provided read buffer, reused across calls so a scan over
    /// the library allocates nothing per record beyond the decode.
    pub fn read(&self, r: &RecordRef, scratch: &mut Vec<u8>) -> Result<Record, LibraryError> {
        read_record(&self.files, r, scratch)
    }

    /// Total stored records across all buckets.
    pub fn len(&self) -> u64 {
        self.buckets.values().map(|b| b.accepted).sum()
    }

    /// `true` when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Order-sensitive fingerprint of the full record set (bucket names,
    /// source indices, payload lengths and checksums, in canonical
    /// order). Two libraries with equal content hash and equal stats are
    /// content-identical for the durability contract's purposes.
    pub fn content_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for ((m, r), b) in &self.buckets {
            h = fnv1a(h, m.as_bytes());
            h = fnv1a(h, &[0]);
            h = fnv1a(h, r.as_bytes());
            h = fnv1a(h, &[0]);
            for rr in &b.order {
                h = fnv1a(h, &rr.source_index.to_le_bytes());
                h = fnv1a(h, &rr.len.to_le_bytes());
                h = fnv1a(h, &rr.crc.to_le_bytes());
            }
        }
        h
    }

    /// Rows for the results matrix, one per bucket.
    pub fn matrix_rows(&self) -> Vec<MatrixRow> {
        self.buckets
            .iter()
            .map(|((m, r), b)| {
                let s = b.stats();
                MatrixRow {
                    method: m.clone(),
                    ruleset: r.clone(),
                    updated: if s.updated.is_empty() {
                        "(uncheckpointed)".to_string()
                    } else {
                        s.updated.clone()
                    },
                    patterns: s.accepted,
                    topologies: s.topologies,
                    duplicates: s.duplicates,
                    skipped: s.skipped,
                    diversity: s.diversity,
                    legality: if s.accepted == 0 {
                        1.0
                    } else {
                        s.legal as f64 / s.accepted as f64
                    },
                }
            })
            .collect()
    }

    fn bucket(&self, method: &str, ruleset: &str) -> Option<&BucketState> {
        // BTreeMap<(String, String)> cannot be probed with (&str, &str);
        // a linear walk is fine at bucket counts (methods × rulesets).
        self.buckets
            .iter()
            .find(|((m, r), _)| m.as_str() == method && r.as_str() == ruleset)
            .map(|(_, b)| b)
    }
}

struct RefLoc {
    seg: u32,
    offset: u64,
    len: u32,
    crc: u32,
}

/// Folds one scanned record into the in-memory state, validating stream
/// continuity: each record's `source_index` must equal the bucket
/// cursor plus the dedup/skip events it attaches.
fn apply_record(
    buckets: &mut BTreeMap<(String, String), BucketState>,
    rec: Record,
    loc: RefLoc,
) -> Result<(), LibraryError> {
    let gap = rec.dups_since_prev as u64 + rec.skips_since_prev as u64;
    if rec.source_index < gap {
        return Err(corrupt(format!(
            "bucket {}/{}: record at index {} claims {} prior events",
            rec.method, rec.ruleset, rec.source_index, gap
        )));
    }
    let key = (rec.method.clone(), rec.ruleset.clone());
    let b = buckets
        .entry(key)
        .or_insert_with(|| BucketState::new_at(rec.source_index - gap));
    if rec.source_index != b.cursor + gap {
        return Err(corrupt(format!(
            "bucket {}/{}: record index {} breaks stream continuity (expected {})",
            rec.method,
            rec.ruleset,
            rec.source_index,
            b.cursor + gap
        )));
    }
    b.duplicates += rec.dups_since_prev as u64;
    b.skipped += rec.skips_since_prev as u64;
    b.dup_delta_total += rec.dups_since_prev as u64;
    b.skip_delta_total += rec.skips_since_prev as u64;
    b.accepted += 1;
    if rec.legal {
        b.legal += 1;
    }
    b.cursor = rec.source_index + 1;
    b.meter
        .add(rec.complexity.0 as usize, rec.complexity.1 as usize);
    let rr = RecordRef {
        seg: loc.seg,
        offset: loc.offset,
        len: loc.len,
        crc: loc.crc,
        variant_hash: variant_hash(rec.pattern.dx(), rec.pattern.dy()),
        source_index: rec.source_index,
        legal: rec.legal,
        complexity: rec.complexity,
    };
    b.order.push(rr);
    // Records were deduplicated at ingest by byte comparison, so within
    // one bucket a topology hash almost surely names one topology; a
    // colliding distinct topology landing in the same group is harmless
    // because every dedup probe re-verifies bytes before dropping.
    let groups = b
        .topos
        .entry(topology_hash(rec.pattern.topology()))
        .or_default();
    if let Some(g) = groups.first_mut() {
        g.refs.push(rr);
    } else {
        groups.push(TopoGroup { refs: vec![rr] });
    }
    Ok(())
}

/// Scans `dir`, returning the loaded library plus the valid byte length
/// of the last segment (what a writer must truncate to; `0` means the
/// segment header itself was torn and must be rewritten).
fn load_state(dir: PathBuf) -> Result<(Library, u64), LibraryError> {
    let seg_dir = dir.join("segments");
    let mut indices = Vec::new();
    for entry in std::fs::read_dir(&seg_dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        let Some(num) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".dpl"))
        else {
            continue;
        };
        let i: usize = num
            .parse()
            .map_err(|_| corrupt(format!("unparseable segment name {name}")))?;
        indices.push(i);
    }
    indices.sort_unstable();
    for (want, &got) in indices.iter().enumerate() {
        if want != got {
            return Err(corrupt(format!(
                "segment chain has a gap: expected {}, found {}",
                segment_name(want),
                segment_name(got)
            )));
        }
    }
    let ckpt = read_checkpoint(&dir)?;
    if let Some(ck) = &ckpt {
        if ck.segments.len() > indices.len() {
            return Err(data_loss(format!(
                "checkpoint lists {} segments but only {} exist",
                ck.segments.len(),
                indices.len()
            )));
        }
    }

    let mut segments = Vec::with_capacity(indices.len());
    let mut files = Vec::with_capacity(indices.len());
    let mut buckets: BTreeMap<(String, String), BucketState> = BTreeMap::new();
    let last = indices.len().saturating_sub(1);
    for &i in &indices {
        let path = seg_dir.join(segment_name(i));
        let bytes = std::fs::read(&path)?;
        let committed = ckpt
            .as_ref()
            .and_then(|c| c.segments.get(i))
            .copied()
            .unwrap_or(0);
        let is_last = i == last;
        let valid;
        if bytes.len() < SEG_MAGIC.len() || &bytes[..SEG_MAGIC.len()] != SEG_MAGIC {
            if committed > 0 {
                return Err(data_loss(format!(
                    "{}: committed header damaged",
                    path.display()
                )));
            }
            if !is_last || bytes.len() >= SEG_MAGIC.len() {
                return Err(corrupt(format!("{}: bad segment magic", path.display())));
            }
            // A crash between create and header write: recover as empty.
            valid = 0;
        } else {
            let mut offset = SEG_MAGIC.len();
            loop {
                match scan_frame(&bytes, offset) {
                    FrameScan::End => {
                        valid = offset;
                        break;
                    }
                    FrameScan::Valid { payload, crc, next } => {
                        match Record::decode(&bytes[payload.clone()]) {
                            Ok(rec) => {
                                apply_record(
                                    &mut buckets,
                                    rec,
                                    RefLoc {
                                        seg: i as u32,
                                        offset: payload.start as u64,
                                        len: payload.len() as u32,
                                        crc,
                                    },
                                )?;
                                offset = next;
                            }
                            Err(e) if (offset as u64) < committed => {
                                return Err(data_loss(format!(
                                    "{} offset {offset}: committed record undecodable: {e}",
                                    path.display()
                                )))
                            }
                            Err(_) if is_last => {
                                // Checksummed but undecodable uncommitted
                                // tail: treat like a torn frame.
                                valid = offset;
                                break;
                            }
                            Err(e) => {
                                return Err(corrupt(format!(
                                    "{} offset {offset}: sealed record undecodable: {e}",
                                    path.display()
                                )))
                            }
                        }
                    }
                    FrameScan::Invalid { reason } => {
                        if (offset as u64) < committed {
                            return Err(data_loss(format!(
                                "{} offset {offset}: committed bytes damaged: {reason}",
                                path.display()
                            )));
                        }
                        if !is_last {
                            return Err(corrupt(format!(
                                "{} offset {offset}: sealed segment has a torn tail: {reason}",
                                path.display()
                            )));
                        }
                        valid = offset;
                        break;
                    }
                }
            }
            if (valid as u64) < committed {
                return Err(data_loss(format!(
                    "{}: valid prefix {} is shorter than committed length {}",
                    path.display(),
                    valid,
                    committed
                )));
            }
        }
        segments.push(valid as u64);
        files.push(File::open(&path)?);
    }

    // Fold in the checkpoint: counters it saw that no record carries
    // (dedup/skip events after the last accepted record of a bucket).
    if let Some(ck) = &ckpt {
        for cb in &ck.buckets {
            let key = (cb.method.clone(), cb.ruleset.clone());
            let b = buckets
                .entry(key)
                .or_insert_with(|| BucketState::new_at(cb.base));
            if cb.accepted > b.accepted {
                return Err(data_loss(format!(
                    "bucket {}/{}: checkpoint committed {} records but only {} survive",
                    cb.method, cb.ruleset, cb.accepted, b.accepted
                )));
            }
            if cb.accepted == b.accepted && cb.legal != b.legal {
                return Err(corrupt(format!(
                    "bucket {}/{}: records count {} legal patterns but checkpoint says {}",
                    cb.method, cb.ruleset, b.legal, cb.legal
                )));
            }
            if b.accepted > 0 && b.base != cb.base {
                return Err(corrupt(format!(
                    "bucket {}/{}: records imply base {} but checkpoint says {}",
                    cb.method, cb.ruleset, b.base, cb.base
                )));
            }
            b.base = cb.base;
            b.cursor = b.cursor.max(cb.cursor);
            b.duplicates = b.duplicates.max(cb.duplicates);
            b.skipped = b.skipped.max(cb.skipped);
            b.updated = cb.updated.clone();
            b.last_ckpt = b.sig();
        }
    }
    // Tail events (between the last record and the cursor) have no
    // record of their own; re-arm the pending counters so the *next*
    // accepted record's deltas keep Σ deltas + pending == totals.
    for b in buckets.values_mut() {
        b.pending_dups = b.duplicates - b.dup_delta_total;
        b.pending_skips = b.skipped - b.skip_delta_total;
        let counted = b.order.last().map(|r| r.source_index + 1).unwrap_or(b.base);
        debug_assert_eq!(b.pending_dups + b.pending_skips, b.cursor - counted);
    }

    let last_valid = segments.last().copied().unwrap_or(0);
    let lib = Library {
        dir,
        segments,
        files,
        buckets,
    };
    Ok((lib, last_valid))
}

fn read_checkpoint(dir: &Path) -> Result<Option<Checkpoint>, LibraryError> {
    let path = dir.join("checkpoint.dpl");
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 8 || &bytes[..8] != CKPT_MAGIC {
        return Err(corrupt("checkpoint file has bad magic".to_string()));
    }
    let payload = match scan_frame(&bytes, 8) {
        FrameScan::Valid { payload, next, .. } => {
            if next != bytes.len() {
                return Err(corrupt("checkpoint has trailing bytes".to_string()));
            }
            &bytes[payload]
        }
        _ => return Err(corrupt("checkpoint frame damaged".to_string())),
    };
    parse_checkpoint(payload).map(Some)
}

fn parse_checkpoint(p: &[u8]) -> Result<Checkpoint, LibraryError> {
    let mut r = Cursor::new(p);
    if r.u8()? != CKPT_VERSION {
        return Err(corrupt("unknown checkpoint version".to_string()));
    }
    let nseg = r.u32()? as usize;
    let mut segments = Vec::with_capacity(nseg);
    for _ in 0..nseg {
        segments.push(r.u64()?);
    }
    let nb = r.u32()? as usize;
    let mut bucket_entries = Vec::with_capacity(nb);
    for _ in 0..nb {
        bucket_entries.push(CkptBucket {
            method: r.label()?,
            ruleset: r.label()?,
            base: r.u64()?,
            cursor: r.u64()?,
            accepted: r.u64()?,
            duplicates: r.u64()?,
            skipped: r.u64()?,
            legal: r.u64()?,
            updated: r.label()?,
        });
    }
    r.finish()?;
    Ok(Checkpoint {
        segments,
        buckets: bucket_entries,
    })
}

fn encode_checkpoint(
    segments: &[u64],
    buckets: &BTreeMap<(String, String), BucketState>,
) -> Vec<u8> {
    let mut p = Vec::new();
    p.push(CKPT_VERSION);
    p.extend_from_slice(&(segments.len() as u32).to_le_bytes());
    for &len in segments {
        p.extend_from_slice(&len.to_le_bytes());
    }
    p.extend_from_slice(&(buckets.len() as u32).to_le_bytes());
    for ((m, r), b) in buckets {
        for label in [m.as_str(), r.as_str()] {
            p.push(label.len() as u8);
            p.extend_from_slice(label.as_bytes());
        }
        for v in [
            b.base,
            b.cursor,
            b.accepted,
            b.duplicates,
            b.skipped,
            b.legal,
        ] {
            p.extend_from_slice(&v.to_le_bytes());
        }
        p.push(b.updated.len() as u8);
        p.extend_from_slice(b.updated.as_bytes());
    }
    let mut out = Vec::with_capacity(16 + p.len());
    out.extend_from_slice(CKPT_MAGIC);
    out.extend_from_slice(&(p.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&p).to_le_bytes());
    out.extend_from_slice(&p);
    out
}

/// An append handle over a [`Library`].
///
/// Ingest order per bucket is strictly ascending `source_index` — that
/// is what makes first-occurrence-wins dedup, and therefore the whole
/// store, deterministic under resume and shard-merge.
pub struct LibraryWriter {
    lib: Library,
    active: File,
    config: LibraryConfig,
    totals: WriterTotals,
    scratch: Vec<u8>,
}

impl std::fmt::Debug for LibraryWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LibraryWriter")
            .field("lib", &self.lib)
            .field("totals", &self.totals)
            .finish()
    }
}

impl LibraryWriter {
    /// Opens a library for appending, creating it if absent, resuming
    /// (with torn-tail truncation) if present.
    pub fn open(dir: impl AsRef<Path>, config: LibraryConfig) -> Result<Self, LibraryError> {
        let dir = dir.as_ref().to_path_buf();
        let seg_dir = dir.join("segments");
        std::fs::create_dir_all(&seg_dir)?;
        if std::fs::read_dir(&seg_dir)?.next().is_none() {
            let mut f = File::create(seg_dir.join(segment_name(0)))?;
            f.write_all(SEG_MAGIC)?;
            f.sync_all()?;
        }
        let (lib, valid) = load_state(dir)?;
        let last = lib.segments.len() - 1;
        let path = lib.dir.join("segments").join(segment_name(last));
        let active = OpenOptions::new().read(true).write(true).open(&path)?;
        let mut writer = LibraryWriter {
            lib,
            active,
            config,
            totals: WriterTotals::default(),
            scratch: Vec::new(),
        };
        if valid == 0 {
            // Torn segment header: rewrite it.
            writer.active.set_len(0)?;
            pwrite_all(&writer.active, 0, SEG_MAGIC)?;
            *writer.lib.segments.last_mut().unwrap() = SEG_MAGIC.len() as u64;
        } else {
            writer.active.set_len(valid)?;
        }
        Ok(writer)
    }

    /// Like [`LibraryWriter::open`] but fails if a library already
    /// exists at `dir` (used by `merge`, whose output must be fresh).
    pub fn create_new(dir: impl AsRef<Path>, config: LibraryConfig) -> Result<Self, LibraryError> {
        let dir = dir.as_ref();
        if dir.join("segments").is_dir() || dir.join("checkpoint.dpl").exists() {
            return Err(LibraryError::Invalid {
                detail: format!("{} already holds a library", dir.display()),
            });
        }
        Self::open(dir, config)
    }

    /// Read-only view of the store being written. Reflects everything
    /// appended so far (appends are write-through).
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// Lifetime-of-this-writer counters for `/metrics`.
    pub fn totals(&self) -> WriterTotals {
        self.totals
    }

    /// Ensures a bucket exists with the given base index and returns its
    /// resume cursor (the next source index it expects). Fails if the
    /// bucket exists with a different base — shards must agree on their
    /// index ranges.
    pub fn open_bucket(
        &mut self,
        method: &str,
        ruleset: &str,
        base: u64,
    ) -> Result<u64, LibraryError> {
        let key = (method.to_string(), ruleset.to_string());
        let b = self
            .lib
            .buckets
            .entry(key)
            .or_insert_with(|| BucketState::new_at(base));
        if b.base != base {
            return Err(LibraryError::Invalid {
                detail: format!(
                    "bucket {method}/{ruleset} exists with base {}, requested {base}",
                    b.base
                ),
            });
        }
        Ok(b.cursor)
    }

    /// The next source index a bucket expects, if it exists.
    pub fn next_index(&self, method: &str, ruleset: &str) -> Option<u64> {
        self.lib.bucket(method, ruleset).map(|b| b.cursor)
    }

    /// Ingests one pattern at `source_index` (which must equal the
    /// bucket's cursor). Duplicates — byte-identical topology *and*
    /// Δ vectors, verified by read-back, never by hash alone — are
    /// dropped and counted. Creates the bucket (based at
    /// `source_index`) on first use.
    pub fn ingest(
        &mut self,
        method: &str,
        ruleset: &str,
        source_index: u64,
        pattern: &SquishPattern,
        legal: bool,
    ) -> Result<IngestOutcome, LibraryError> {
        let key = (method.to_string(), ruleset.to_string());
        if !self.lib.buckets.contains_key(&key) {
            self.lib
                .buckets
                .insert(key.clone(), BucketState::new_at(source_index));
        }
        let th = topology_hash(pattern.topology());
        let vh = variant_hash(pattern.dx(), pattern.dy());

        // Split-borrow: dedup probes read records (files) while the
        // bucket (buckets) is held mutably.
        let scratch = &mut self.scratch;
        let Library { buckets, files, .. } = &mut self.lib;
        let b = buckets.get_mut(&key).unwrap();
        if source_index != b.cursor {
            return Err(LibraryError::OutOfOrder {
                method: method.to_string(),
                ruleset: ruleset.to_string(),
                expected: b.cursor,
                got: source_index,
            });
        }
        let mut group_index = None;
        if let Some(groups) = b.topos.get(&th) {
            'groups: for (gi, g) in groups.iter().enumerate() {
                let rep = read_record(files, &g.refs[0], scratch)?;
                if rep.pattern.topology() != pattern.topology() {
                    continue; // topology-hash collision: different shape
                }
                for r in &g.refs {
                    if r.variant_hash == vh {
                        let cand = if r.offset == g.refs[0].offset && r.seg == g.refs[0].seg {
                            rep.clone()
                        } else {
                            read_record(files, r, scratch)?
                        };
                        if cand.pattern == *pattern {
                            b.duplicates += 1;
                            b.pending_dups += 1;
                            b.cursor += 1;
                            self.totals.duplicates += 1;
                            return Ok(IngestOutcome::Duplicate);
                        }
                    }
                }
                group_index = Some(gi);
                break 'groups;
            }
        }

        let (cx, cy) = complexity_of_grid(pattern.topology());
        let to_u16 = |v: usize| {
            u16::try_from(v).map_err(|_| LibraryError::Invalid {
                detail: "complexity out of u16 range".to_string(),
            })
        };
        let complexity = (to_u16(cx)?, to_u16(cy)?);
        let to_u32 = |v: u64, what: &str| {
            u32::try_from(v).map_err(|_| LibraryError::Invalid {
                detail: format!("more than u32::MAX {what} between records"),
            })
        };
        let dups32 = to_u32(b.pending_dups, "duplicates")?;
        let skips32 = to_u32(b.pending_skips, "skips")?;
        let record = Record {
            method: method.to_string(),
            ruleset: ruleset.to_string(),
            source_index,
            dups_since_prev: dups32,
            skips_since_prev: skips32,
            legal,
            complexity,
            pattern: pattern.clone(),
        };
        let frame = record.frame()?;
        let payload_crc = crc32(&frame[8..]);
        let seg = (self.lib.segments.len() - 1) as u32;
        let offset = *self.lib.segments.last().unwrap();
        pwrite_all(&self.active, offset, &frame)?;
        *self.lib.segments.last_mut().unwrap() = offset + frame.len() as u64;
        self.totals.bytes_written += frame.len() as u64;
        self.totals.accepted += 1;

        let b = self.lib.buckets.get_mut(&key).unwrap();
        let rr = RecordRef {
            seg,
            offset: offset + 8,
            len: (frame.len() - 8) as u32,
            crc: payload_crc,
            variant_hash: vh,
            source_index,
            legal,
            complexity,
        };
        b.accepted += 1;
        if legal {
            b.legal += 1;
        }
        b.dup_delta_total += dups32 as u64;
        b.skip_delta_total += skips32 as u64;
        b.pending_dups = 0;
        b.pending_skips = 0;
        b.cursor += 1;
        b.meter.add(cx, cy);
        b.order.push(rr);
        let groups = b.topos.entry(th).or_default();
        let outcome = match group_index {
            Some(gi) => {
                groups[gi].refs.push(rr);
                IngestOutcome::NewVariant
            }
            None => {
                groups.push(TopoGroup { refs: vec![rr] });
                IngestOutcome::NewTopology
            }
        };
        if *self.lib.segments.last().unwrap() >= self.config.segment_bytes {
            self.seal()?;
        }
        Ok(outcome)
    }

    /// Convenience for arrival-ordered feeds (the network server): the
    /// bucket cursor itself is the source index.
    pub fn ingest_arrival(
        &mut self,
        method: &str,
        ruleset: &str,
        pattern: &SquishPattern,
        legal: bool,
    ) -> Result<IngestOutcome, LibraryError> {
        let at = self.next_index(method, ruleset).unwrap_or(0);
        self.ingest(method, ruleset, at, pattern, legal)
    }

    /// Records that the bucket's cursor index produced no pattern
    /// (generator shortfall). The bucket must exist.
    pub fn record_skip(&mut self, method: &str, ruleset: &str) -> Result<(), LibraryError> {
        let b = self.bucket_mut(method, ruleset)?;
        b.skipped += 1;
        b.pending_skips += 1;
        b.cursor += 1;
        Ok(())
    }

    /// Replays `dups` duplicate events and `skips` skip events without
    /// content — the merge path's way of carrying a shard's accounting
    /// for items whose bytes were (correctly) never stored.
    pub fn replay_gap(
        &mut self,
        method: &str,
        ruleset: &str,
        dups: u64,
        skips: u64,
    ) -> Result<(), LibraryError> {
        let b = self.bucket_mut(method, ruleset)?;
        b.duplicates += dups;
        b.pending_dups += dups;
        b.skipped += skips;
        b.pending_skips += skips;
        b.cursor += dups + skips;
        Ok(())
    }

    /// Forces a durability point: fsync the active segment, stamp and
    /// persist the checkpoint (tmp + rename + dir sync), regenerate
    /// `results.md`.
    pub fn checkpoint(&mut self) -> Result<(), LibraryError> {
        self.active.sync_all()?;
        let now = match &self.config.timestamp_override {
            Some(t) => t.clone(),
            None => {
                // dp-lint: allow(nondeterministic-time): checkpoint timestamps are metadata; tests pin bytes via timestamp_override
                let secs = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0);
                format_utc_timestamp(secs)
            }
        };
        for b in self.lib.buckets.values_mut() {
            if b.sig() != b.last_ckpt {
                b.updated = now.clone();
                b.last_ckpt = b.sig();
            }
        }
        let bytes = encode_checkpoint(&self.lib.segments, &self.lib.buckets);
        let tmp = self.lib.dir.join("checkpoint.tmp");
        let path = self.lib.dir.join("checkpoint.dpl");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        if let Ok(d) = File::open(&self.lib.dir) {
            let _ = d.sync_all();
        }
        write_matrix(&self.lib.dir, &self.lib.matrix_rows())?;
        Ok(())
    }

    /// Seals the active segment (checkpointing first, so its final
    /// length is committed) and opens the next one.
    fn seal(&mut self) -> Result<(), LibraryError> {
        self.checkpoint()?;
        let next = self.lib.segments.len();
        let path = self.lib.dir.join("segments").join(segment_name(next));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        pwrite_all(&file, 0, SEG_MAGIC)?;
        self.lib.files.push(file.try_clone()?);
        self.active = file;
        self.lib.segments.push(SEG_MAGIC.len() as u64);
        Ok(())
    }

    /// Final durability point; consumes the writer and returns the
    /// read-only library.
    pub fn finish(mut self) -> Result<Library, LibraryError> {
        self.checkpoint()?;
        Ok(self.lib)
    }

    fn bucket_mut(
        &mut self,
        method: &str,
        ruleset: &str,
    ) -> Result<&mut BucketState, LibraryError> {
        self.lib
            .buckets
            .iter_mut()
            .find(|((m, r), _)| m.as_str() == method && r.as_str() == ruleset)
            .map(|(_, b)| b)
            .ok_or_else(|| LibraryError::Invalid {
                detail: format!("bucket {method}/{ruleset} does not exist"),
            })
    }
}

/// Merges `shards` into a fresh library at `out`. Per bucket, shard
/// record streams are re-ingested in ascending global source order with
/// full dedup, and each shard's recordless accounting (duplicates,
/// skips) is replayed, so merging seed-space shards reproduces the
/// single-process library — same record set, same counters, same
/// entropy. Shard index ranges must tile without overlap.
pub fn merge_libraries(
    out: impl AsRef<Path>,
    shards: &[Library],
    config: LibraryConfig,
) -> Result<Library, LibraryError> {
    let mut writer = LibraryWriter::create_new(out, config)?;
    let mut keys: Vec<(String, String)> = Vec::new();
    for s in shards {
        for (m, r) in s.buckets() {
            let k = (m.to_string(), r.to_string());
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    keys.sort();
    let mut scratch = Vec::new();
    for (m, r) in &keys {
        let mut parts: Vec<(&Library, BucketStats)> = shards
            .iter()
            .filter_map(|s| s.stats(m, r).map(|st| (s, st)))
            .collect();
        parts.sort_by_key(|(_, st)| st.base);
        for window in parts.windows(2) {
            if window[1].1.base < window[0].1.next_index {
                return Err(LibraryError::Invalid {
                    detail: format!(
                        "bucket {m}/{r}: shard ranges overlap ({}..{} vs {}..)",
                        window[0].1.base, window[0].1.next_index, window[1].1.base
                    ),
                });
            }
        }
        writer.open_bucket(m, r, parts.first().map(|(_, st)| st.base).unwrap_or(0))?;
        for (shard, st) in parts {
            let refs = shard.records(m, r).unwrap_or(&[]);
            let (mut rec_dups, mut rec_skips) = (0u64, 0u64);
            for rr in refs {
                let rec = shard.read(rr, &mut scratch)?;
                rec_dups += rec.dups_since_prev as u64;
                rec_skips += rec.skips_since_prev as u64;
                writer.replay_gap(
                    m,
                    r,
                    rec.dups_since_prev as u64,
                    rec.skips_since_prev as u64,
                )?;
                writer.ingest(m, r, rec.source_index, &rec.pattern, rec.legal)?;
            }
            // The shard's tail: events after its last record, durable
            // only through its checkpoint totals.
            let tail_dups = st.duplicates.checked_sub(rec_dups).ok_or_else(|| {
                corrupt(format!("bucket {m}/{r}: shard deltas exceed its totals"))
            })?;
            let tail_skips = st.skipped.checked_sub(rec_skips).ok_or_else(|| {
                corrupt(format!("bucket {m}/{r}: shard deltas exceed its totals"))
            })?;
            writer.replay_gap(m, r, tail_dups, tail_skips)?;
        }
    }
    writer.finish()
}
