//! Error type for the pattern library store.

use std::fmt;

/// Everything that can go wrong opening, reading or appending to a
/// pattern library.
#[derive(Debug)]
#[non_exhaustive]
pub enum LibraryError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// Bytes that should never be damaged (sealed segments, committed
    /// prefixes, record payloads that passed their checksum) failed to
    /// parse — the store is corrupt beyond safe tail truncation.
    Corrupt {
        /// Human-readable diagnosis.
        detail: String,
    },
    /// Data the checkpoint recorded as durably committed is missing or
    /// damaged. Unlike a torn tail (which is silently discarded), loss
    /// of committed data is never recovered from automatically.
    DataLoss {
        /// Human-readable diagnosis.
        detail: String,
    },
    /// An ingest arrived out of stream order for its bucket. Builds and
    /// merges feed each bucket in ascending `source_index` order so that
    /// first-occurrence-wins dedup is deterministic.
    OutOfOrder {
        /// Bucket method label.
        method: String,
        /// Bucket ruleset label.
        ruleset: String,
        /// The next index the bucket cursor expected.
        expected: u64,
        /// The index that actually arrived.
        got: u64,
    },
    /// The caller passed something unencodable or inconsistent.
    Invalid {
        /// Human-readable diagnosis.
        detail: String,
    },
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::Io(e) => write!(f, "library I/O error: {e}"),
            LibraryError::Corrupt { detail } => write!(f, "library corrupt: {detail}"),
            LibraryError::DataLoss { detail } => {
                write!(f, "library lost committed data: {detail}")
            }
            LibraryError::OutOfOrder {
                method,
                ruleset,
                expected,
                got,
            } => write!(
                f,
                "out-of-order ingest into {method}/{ruleset}: expected index {expected}, got {got}"
            ),
            LibraryError::Invalid { detail } => write!(f, "invalid library input: {detail}"),
        }
    }
}

impl std::error::Error for LibraryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LibraryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LibraryError {
    fn from(e: std::io::Error) -> Self {
        LibraryError::Io(e)
    }
}
