//! The persistent timestamped results matrix (`results.md`).
//!
//! Every checkpoint regenerates a human-readable matrix of
//! method × ruleset rows — count, dedup rate, diversity, legality —
//! in the timestamped `results.md` idiom of long-running benchmark
//! repositories: each row keeps the timestamp of the last run that
//! *changed* it, so a reader can tell fresh figures from stale ones at
//! a glance. The matrix is derived entirely from the store (the store
//! is the source of truth); rewriting it is idempotent.

use std::io;
use std::path::{Path, PathBuf};

/// One row of the results matrix.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// Generator identity.
    pub method: String,
    /// Ruleset identity (rows are grouped into one table per ruleset).
    pub ruleset: String,
    /// Timestamp of the last change to this bucket (UTC).
    pub updated: String,
    /// Stored (post-dedup) pattern count.
    pub patterns: u64,
    /// Distinct stored topologies.
    pub topologies: u64,
    /// Duplicates dropped at ingest.
    pub duplicates: u64,
    /// Items the generator never delivered (shortfall).
    pub skipped: u64,
    /// Diversity (Shannon entropy of the complexity distribution), bits.
    pub diversity: f64,
    /// Fraction of stored patterns that passed DRC, in `[0, 1]`.
    pub legality: f64,
}

impl MatrixRow {
    fn dedup_rate(&self) -> f64 {
        let seen = self.patterns + self.duplicates;
        if seen == 0 {
            0.0
        } else {
            self.duplicates as f64 / seen as f64
        }
    }
}

/// Renders the matrix to a string (exposed for tests).
pub fn render_matrix(rows: &[MatrixRow]) -> String {
    let mut out = String::new();
    out.push_str("# Pattern library results\n\n");
    out.push_str(
        "Diversity is the Shannon entropy of the complexity distribution\n\
         (paper Definition 1), in bits, over the *stored* (post-dedup)\n\
         patterns. A row's timestamp is the last run that changed its\n\
         bucket; untouched rows keep their old timestamp. This file is\n\
         regenerated from the store at every checkpoint — the store is\n\
         the source of truth.\n",
    );
    let mut rulesets: Vec<&str> = rows.iter().map(|r| r.ruleset.as_str()).collect();
    rulesets.sort_unstable();
    rulesets.dedup();
    for ruleset in rulesets {
        out.push_str(&format!("\n## Ruleset `{ruleset}`\n\n"));
        out.push_str(
            "| Time (UTC+00:00) | Method | Patterns | Topologies | Dedup rate | \
             Skipped | Diversity (bits) | Legality |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        let mut section: Vec<&MatrixRow> = rows.iter().filter(|r| r.ruleset == ruleset).collect();
        section.sort_by(|a, b| a.method.cmp(&b.method));
        for r in section {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.2}% | {} | {:.6} | {:.2}% |\n",
                r.updated,
                r.method,
                r.patterns,
                r.topologies,
                r.dedup_rate() * 100.0,
                r.skipped,
                r.diversity,
                r.legality * 100.0,
            ));
        }
    }
    out
}

/// Writes the matrix to `<dir>/results.md` atomically (tmp + rename).
pub fn write_matrix(dir: &Path, rows: &[MatrixRow]) -> io::Result<PathBuf> {
    let path = dir.join("results.md");
    let tmp = dir.join("results.md.tmp");
    std::fs::write(&tmp, render_matrix(rows))?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Formats seconds-since-Unix-epoch as `YYYY-MM-DD - HH:MM:SS` (UTC).
pub fn format_utc_timestamp(secs: u64) -> String {
    let days = secs / 86_400;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, rem % 3600 / 60, rem % 60);
    // Civil-from-days (Howard Hinnant's algorithm), valid for the whole
    // u64 range we care about.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02} - {h:02}:{m:02}:{s:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_formatting_matches_known_dates() {
        assert_eq!(format_utc_timestamp(0), "1970-01-01 - 00:00:00");
        // 2000-03-01 00:00:00 UTC (leap-century boundary).
        assert_eq!(format_utc_timestamp(951_868_800), "2000-03-01 - 00:00:00");
        // 2023-07-09 12:34:56 UTC.
        assert_eq!(format_utc_timestamp(1_688_906_096), "2023-07-09 - 12:34:56");
    }

    #[test]
    fn matrix_groups_by_ruleset_and_sorts_methods() {
        let row = |method: &str, ruleset: &str| MatrixRow {
            method: method.to_string(),
            ruleset: ruleset.to_string(),
            updated: "2026-01-01 - 00:00:00".to_string(),
            patterns: 10,
            topologies: 8,
            duplicates: 2,
            skipped: 1,
            diversity: 2.5,
            legality: 1.0,
        };
        let text = render_matrix(&[row("b", "s2"), row("a", "s1"), row("c", "s1")]);
        let s1 = text.find("## Ruleset `s1`").unwrap();
        let s2 = text.find("## Ruleset `s2`").unwrap();
        assert!(s1 < s2);
        let a = text.find("| a |").unwrap();
        let c = text.find("| c |").unwrap();
        assert!(s1 < a && a < c && c < s2);
        assert!(text.contains("16.67%"), "2 dups of 12 seen:\n{text}");
    }

    #[test]
    fn write_is_atomic_and_idempotent() {
        let dir = std::env::temp_dir().join(format!("dp_library_matrix_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rows = [MatrixRow {
            method: "m".to_string(),
            ruleset: "r".to_string(),
            updated: "2026-01-01 - 00:00:00".to_string(),
            patterns: 1,
            topologies: 1,
            duplicates: 0,
            skipped: 0,
            diversity: 0.0,
            legality: 1.0,
        }];
        let p1 = write_matrix(&dir, &rows).unwrap();
        let first = std::fs::read_to_string(&p1).unwrap();
        let p2 = write_matrix(&dir, &rows).unwrap();
        assert_eq!(first, std::fs::read_to_string(&p2).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
