//! Durability-contract tests: codec round-trips under proptest,
//! fault-injected torn tails, committed-byte damage, kill/resume
//! convergence, and shard merge.

use dp_datagen::PatternLibrary;
use dp_library::{
    merge_libraries, scan_frame, FrameScan, IngestOutcome, Library, LibraryConfig, LibraryError,
    LibraryWriter, Record,
};
use dp_squish::{BitGrid, SquishPattern};
use proptest::prelude::*;
use std::fs;
use std::ops::Range;
use std::path::{Path, PathBuf};

const METHOD: &str = "diffpattern";
const RULESET: &str = "standard";

/// Fresh unique temp directory (removed by each test on success; leaks
/// on failure are intentional debugging aids in `$TMPDIR`).
fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dp_library_{tag}_{}_{}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "_")
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg(segment_bytes: u64) -> LibraryConfig {
    LibraryConfig {
        segment_bytes,
        // Fixed stamp so interrupted and uninterrupted runs produce
        // byte-identical results.md files.
        timestamp_override: Some("2026-08-08 - 00:00:00".to_string()),
    }
}

/// Deterministic small pattern from a seed (splitmix-style scatter).
fn pattern(seed: u64) -> SquishPattern {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xA5A5);
    let mut next = move || {
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        x
    };
    let w = (next() % 4 + 1) as usize;
    let h = (next() % 4 + 1) as usize;
    let cells: Vec<bool> = (0..w * h).map(|_| next() % 2 == 0).collect();
    let topology = BitGrid::from_cells(w, h, cells).unwrap();
    let dx: Vec<i64> = (0..w).map(|_| (next() % 8 + 1) as i64).collect();
    let dy: Vec<i64> = (0..h).map(|_| (next() % 8 + 1) as i64).collect();
    SquishPattern::new(topology, dx, dy).unwrap()
}

/// The reference generation stream: `None` is a generator shortfall
/// (skip); seeds cycle with period 23 so indices past the first cycle
/// produce duplicates, both near and far apart.
fn item(i: u64) -> Option<(SquishPattern, bool)> {
    if i % 13 == 5 {
        return None;
    }
    let seed = i * 7 % 23;
    Some((pattern(seed), !seed.is_multiple_of(3)))
}

fn feed(w: &mut LibraryWriter, range: Range<u64>) {
    for i in range {
        match item(i) {
            Some((p, legal)) => {
                w.ingest(METHOD, RULESET, i, &p, legal).unwrap();
            }
            None => w.record_skip(METHOD, RULESET).unwrap(),
        }
    }
}

fn build(dir: &Path, count: u64, segment_bytes: u64) -> Library {
    let mut w = LibraryWriter::open(dir, cfg(segment_bytes)).unwrap();
    w.open_bucket(METHOD, RULESET, 0).unwrap();
    feed(&mut w, 0..count);
    w.finish().unwrap()
}

fn last_segment(dir: &Path) -> PathBuf {
    let mut v: Vec<PathBuf> = fs::read_dir(dir.join("segments"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    v.sort();
    v.pop().unwrap()
}

/// Byte offsets of every frame boundary in a segment (starting after
/// the 8-byte magic).
fn frame_boundaries(path: &Path) -> Vec<usize> {
    let bytes = fs::read(path).unwrap();
    let mut offs = vec![8usize];
    while let FrameScan::Valid { next, .. } = scan_frame(&bytes, *offs.last().unwrap()) {
        offs.push(next);
    }
    offs
}

fn assert_same_content(a: &Library, b: &Library) {
    assert_eq!(a.content_hash(), b.content_hash(), "record sets differ");
    let (sa, sb) = (
        a.stats(METHOD, RULESET).unwrap(),
        b.stats(METHOD, RULESET).unwrap(),
    );
    assert_eq!(sa, sb, "bucket accounting differs");
    assert_eq!(
        sa.diversity.to_bits(),
        sb.diversity.to_bits(),
        "diversity not bit-identical"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any representable record survives encode → frame → scan → decode
    /// byte-for-byte.
    fn record_codec_round_trips(
        w in 1usize..=6,
        h in 1usize..=6,
        fill in proptest::collection::vec(proptest::strategy::any::<bool>(), 36),
        deltas in proptest::collection::vec(1i64..=1_000_000, 12),
        source_index in proptest::strategy::any::<u64>(),
        dups in proptest::strategy::any::<u32>(),
        skips in proptest::strategy::any::<u32>(),
        legal in proptest::strategy::any::<bool>(),
        cx in proptest::strategy::any::<u16>(),
        cy in proptest::strategy::any::<u16>(),
    ) {
        let cells: Vec<bool> = (0..w * h).map(|i| fill[i % fill.len()]).collect();
        let topology = BitGrid::from_cells(w, h, cells).unwrap();
        let dx: Vec<i64> = (0..w).map(|i| deltas[i % deltas.len()]).collect();
        let dy: Vec<i64> = (0..h).map(|i| deltas[(i + w) % deltas.len()]).collect();
        let rec = Record {
            method: "m".to_string(),
            ruleset: "standard-α".to_string(),
            source_index,
            dups_since_prev: dups,
            skips_since_prev: skips,
            legal,
            complexity: (cx, cy),
            pattern: SquishPattern::new(topology, dx, dy).unwrap(),
        };
        let payload = rec.encode().unwrap();
        prop_assert_eq!(&Record::decode(&payload).unwrap(), &rec);
        // And through the frame layer.
        let frame = rec.frame().unwrap();
        match scan_frame(&frame, 0) {
            FrameScan::Valid { payload: range, next, .. } => {
                prop_assert_eq!(next, frame.len());
                prop_assert_eq!(&Record::decode(&frame[range]).unwrap(), &rec);
            }
            other => return Err(TestCaseError::Fail(format!("scan failed: {other:?}"))),
        }
    }
}

#[test]
fn reopen_matches_writer_state_across_segments() {
    let dir = tmp("reopen");
    let built = build(&dir, 60, 1024);
    assert!(built.segment_count() > 1, "want a multi-segment library");
    let reopened = Library::open(&dir).unwrap();
    assert_same_content(&built, &reopened);

    // Every stored record reads back equal to what the stream produced.
    let mut scratch = Vec::new();
    for rr in reopened.records(METHOD, RULESET).unwrap() {
        let rec = reopened.read(rr, &mut scratch).unwrap();
        let (expect, legal) = item(rr.source_index).unwrap();
        assert_eq!(rec.pattern, expect);
        assert_eq!(rec.legal, legal);
        assert_eq!(rec.source_index, rr.source_index);
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dedup_outcomes_distinguish_topology_variant_duplicate() {
    let dir = tmp("outcomes");
    let mut w = LibraryWriter::open(&dir, cfg(1 << 20)).unwrap();
    let p = pattern(1);
    assert_eq!(
        w.ingest(METHOD, RULESET, 0, &p, true).unwrap(),
        IngestOutcome::NewTopology
    );
    // Same topology, different Δs: a new variant, not a duplicate.
    let dx: Vec<i64> = p.dx().iter().map(|d| d + 1).collect();
    let variant = SquishPattern::new(p.topology().clone(), dx, p.dy().to_vec()).unwrap();
    assert_eq!(
        w.ingest(METHOD, RULESET, 1, &variant, true).unwrap(),
        IngestOutcome::NewVariant
    );
    assert_eq!(
        w.ingest(METHOD, RULESET, 2, &p, true).unwrap(),
        IngestOutcome::Duplicate
    );
    // Out-of-order ingest is rejected: dedup determinism depends on it.
    match w.ingest(METHOD, RULESET, 2, &p, true) {
        Err(LibraryError::OutOfOrder {
            expected: 3,
            got: 2,
            ..
        }) => {}
        other => panic!("expected OutOfOrder, got {other:?}"),
    }
    let lib = w.finish().unwrap();
    let s = lib.stats(METHOD, RULESET).unwrap();
    assert_eq!((s.accepted, s.duplicates, s.topologies), (2, 1, 1));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_truncates_to_last_good_record_with_closed_accounting() {
    for cut_into_record in [true, false] {
        let dir = tmp(if cut_into_record {
            "torn_mid"
        } else {
            "torn_bound"
        });
        // Build without ever checkpointing, then drop: everything is an
        // uncommitted tail.
        let mut w = LibraryWriter::open(&dir, cfg(1 << 20)).unwrap();
        w.open_bucket(METHOD, RULESET, 0).unwrap();
        feed(&mut w, 0..30);
        drop(w);

        let seg = last_segment(&dir);
        let bounds = frame_boundaries(&seg);
        assert!(bounds.len() > 3, "want several records to cut between");
        let keep = bounds.len() - 2; // drop the final record...
        let cut = bounds[keep] + if cut_into_record { 5 } else { 0 }; // ...cleanly or mid-frame
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);

        let lib = Library::open(&dir).unwrap();
        let survivors = lib.records(METHOD, RULESET).unwrap();
        assert_eq!(survivors.len(), keep, "one frame per boundary gap");
        let s = lib.stats(METHOD, RULESET).unwrap();
        // Accounting is closed over the surviving prefix: counters are
        // exactly what replaying the stream up to the last survivor gives.
        assert_eq!(s.accepted, survivors.len() as u64);
        assert_eq!(s.next_index, survivors.last().unwrap().source_index + 1);
        let mut dups = 0;
        let mut skips = 0;
        let mut seen: Vec<SquishPattern> = Vec::new();
        for i in 0..s.next_index {
            match item(i) {
                None => skips += 1,
                Some((p, _)) if seen.contains(&p) => dups += 1,
                Some((p, _)) => seen.push(p),
            }
        }
        assert_eq!((s.duplicates, s.skipped), (dups, skips));
        assert_eq!(s.accepted, seen.len() as u64);
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn interrupted_then_resumed_build_is_content_identical() {
    let straight_dir = tmp("straight");
    let straight = build(&straight_dir, 80, 1 << 20);

    let crashed_dir = tmp("crashed");
    let mut w = LibraryWriter::open(&crashed_dir, cfg(1 << 20)).unwrap();
    w.open_bucket(METHOD, RULESET, 0).unwrap();
    // Stop mid-first-cycle so the post-checkpoint range still produces
    // fresh records (past one full seed cycle everything is a dup).
    feed(&mut w, 0..20);
    w.checkpoint().unwrap();
    let committed = fs::metadata(last_segment(&crashed_dir)).unwrap().len();
    feed(&mut w, 20..35);
    drop(w); // kill without flushing the checkpoint

    // Tear the uncommitted tail mid-record.
    let seg = last_segment(&crashed_dir);
    let cut = frame_boundaries(&seg)
        .into_iter()
        .map(|b| b as u64)
        .filter(|&b| b > committed)
        .nth(2)
        .unwrap()
        + 3;
    fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(cut)
        .unwrap();

    // Resume from whatever survived and run to completion.
    let mut w = LibraryWriter::open(&crashed_dir, cfg(1 << 20)).unwrap();
    let cursor = w.open_bucket(METHOD, RULESET, 0).unwrap();
    assert!(
        (20..35).contains(&cursor),
        "cursor {cursor} should be in the torn range"
    );
    feed(&mut w, cursor..80);
    let resumed = w.finish().unwrap();

    assert_same_content(&straight, &resumed);
    // With pinned timestamps the human-readable matrices agree too.
    assert_eq!(
        fs::read_to_string(straight_dir.join("results.md")).unwrap(),
        fs::read_to_string(crashed_dir.join("results.md")).unwrap()
    );
    fs::remove_dir_all(&straight_dir).unwrap();
    fs::remove_dir_all(&crashed_dir).unwrap();
}

#[test]
fn kill_and_resume_with_multi_segment_store_converges() {
    let straight_dir = tmp("ms_straight");
    let straight = build(&straight_dir, 80, 1024);

    let crashed_dir = tmp("ms_crashed");
    let mut w = LibraryWriter::open(&crashed_dir, cfg(1024)).unwrap();
    w.open_bucket(METHOD, RULESET, 0).unwrap();
    feed(&mut w, 0..63);
    drop(w); // kill; intact-but-uncommitted tail stays valid on reopen

    let mut w = LibraryWriter::open(&crashed_dir, cfg(1024)).unwrap();
    let cursor = w.open_bucket(METHOD, RULESET, 0).unwrap();
    // The cursor resumes after the last *record*; trailing dup/skip
    // events had no record to ride on and replay deterministically.
    assert!(cursor <= 63, "cursor {cursor} past the kill point");
    feed(&mut w, cursor..80);
    let resumed = w.finish().unwrap();

    assert!(resumed.segment_count() > 1);
    assert_same_content(&straight, &resumed);
    fs::remove_dir_all(&straight_dir).unwrap();
    fs::remove_dir_all(&crashed_dir).unwrap();
}

#[test]
fn damage_to_committed_bytes_is_data_loss_not_silent_truncation() {
    let dir = tmp("dataloss");
    build(&dir, 40, 1 << 20);
    let seg = last_segment(&dir);
    let mut bytes = fs::read(&seg).unwrap();
    bytes[12] ^= 0x40; // inside the first (committed) record
    fs::write(&seg, &bytes).unwrap();
    match Library::open(&dir) {
        Err(LibraryError::DataLoss { .. }) => {}
        other => panic!("expected DataLoss, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sealed_segment_damage_is_corrupt_even_without_checkpoint() {
    let dir = tmp("sealed");
    let built = build(&dir, 60, 1024);
    assert!(built.segment_count() > 1);
    fs::remove_file(dir.join("checkpoint.dpl")).unwrap();
    let first = dir.join("segments").join("seg-000000.dpl");
    let mut bytes = fs::read(&first).unwrap();
    let last = bytes.len() - 4;
    bytes[last] ^= 0xFF;
    fs::write(&first, &bytes).unwrap();
    match Library::open(&dir) {
        Err(LibraryError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn index_rebuilds_from_segments_alone() {
    let dir = tmp("nockpt");
    let built = build(&dir, 60, 1024);
    fs::remove_file(dir.join("checkpoint.dpl")).unwrap();
    let rebuilt = Library::open(&dir).unwrap();
    // Without the checkpoint only recordless tail events could be lost;
    // the record set and everything derived from it is identical.
    assert_eq!(built.content_hash(), rebuilt.content_hash());
    let (a, b) = (
        built.stats(METHOD, RULESET).unwrap(),
        rebuilt.stats(METHOD, RULESET).unwrap(),
    );
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(a.legal, b.legal);
    assert_eq!(a.topologies, b.topologies);
    assert_eq!(a.diversity.to_bits(), b.diversity.to_bits());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_of_seed_space_shards_equals_single_build() {
    let single_dir = tmp("merge_single");
    let single = build(&single_dir, 60, 1024);

    let s1_dir = tmp("merge_s1");
    let s1 = build(&s1_dir, 35, 1024);
    let s2_dir = tmp("merge_s2");
    let mut w = LibraryWriter::open(&s2_dir, cfg(1024)).unwrap();
    w.open_bucket(METHOD, RULESET, 35).unwrap();
    feed(&mut w, 35..60);
    let s2 = w.finish().unwrap();

    let out_dir = tmp("merge_out");
    // Shard order must not matter: merge sorts by base index.
    let merged = merge_libraries(&out_dir, &[s2, s1], cfg(1024)).unwrap();
    assert_same_content(&single, &merged);

    for d in [single_dir, s1_dir, s2_dir, out_dir] {
        fs::remove_dir_all(&d).unwrap();
    }
}

#[test]
fn incremental_entropy_matches_one_shot_bit_for_bit() {
    let dir = tmp("entropy");
    let lib = build(&dir, 80, 1 << 20);
    let mut oneshot = PatternLibrary::new();
    for rr in lib.records(METHOD, RULESET).unwrap() {
        oneshot.add_complexity(rr.complexity.0 as usize, rr.complexity.1 as usize);
    }
    let s = lib.stats(METHOD, RULESET).unwrap();
    assert_eq!(s.diversity.to_bits(), oneshot.diversity().to_bits());
    assert_eq!(
        lib.histogram(METHOD, RULESET)
            .unwrap()
            .diversity()
            .to_bits(),
        oneshot.diversity().to_bits()
    );
    assert!((s.running_entropy - s.diversity).abs() < 1e-9);
    fs::remove_dir_all(&dir).unwrap();
}
