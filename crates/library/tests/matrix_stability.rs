//! Regression test for the results-matrix byte-stability contract:
//! two identical builds (same config, same ingest stream, pinned
//! `timestamp_override`) must emit byte-identical `results.md` files.
//!
//! This is the test half of the `HashMap` → `BTreeMap` switch in the
//! store and diversity meter: `std::collections::HashMap` seeds its
//! hasher per *instance*, so with a hashed container anywhere on the
//! path from ingest to matrix rendering, two writers in the same
//! process can legitimately disagree on iteration order and the bytes
//! diverge. The BTree containers make the order a property of the
//! data, which is what `results.md` — a committed artifact — requires.

use dp_library::{render_matrix, Library, LibraryConfig, LibraryWriter};
use dp_squish::{BitGrid, SquishPattern};
use std::fs;
use std::path::{Path, PathBuf};

const BUCKETS: &[(&str, &str)] = &[
    ("diffpattern", "standard"),
    ("diffpattern", "strict"),
    ("lhs", "standard"),
    ("random", "strict"),
];

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dp_matrix_{tag}_{}_{}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "_")
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> LibraryConfig {
    LibraryConfig {
        segment_bytes: 1 << 16,
        timestamp_override: Some("2026-08-08 - 00:00:00".to_string()),
    }
}

/// Deterministic small pattern from a seed (splitmix-style scatter).
fn pattern(seed: u64) -> SquishPattern {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xA5A5);
    let mut next = move || {
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        x
    };
    let w = (next() % 4 + 1) as usize;
    let h = (next() % 4 + 1) as usize;
    let cells: Vec<bool> = (0..w * h).map(|_| next() % 2 == 0).collect();
    let topology = BitGrid::from_cells(w, h, cells).unwrap();
    let dx: Vec<i64> = (0..w).map(|_| (next() % 8 + 1) as i64).collect();
    let dy: Vec<i64> = (0..h).map(|_| (next() % 8 + 1) as i64).collect();
    SquishPattern::new(topology, dx, dy).unwrap()
}

/// Builds the same four-bucket library every time: seeds cycle with a
/// short period so duplicates and topology-group collisions exercise
/// the ordered containers, and every thirteenth item is a skip.
fn build(dir: &Path) -> Library {
    let mut w = LibraryWriter::open(dir, cfg()).unwrap();
    for &(method, ruleset) in BUCKETS {
        w.open_bucket(method, ruleset, 0).unwrap();
    }
    for i in 0..200u64 {
        let (method, ruleset) = BUCKETS[usize::try_from(i).unwrap() % BUCKETS.len()];
        if i % 13 == 5 {
            w.record_skip(method, ruleset).unwrap();
            continue;
        }
        let index = w.next_index(method, ruleset).unwrap();
        let p = pattern(i * 7 % 23);
        w.ingest(method, ruleset, index, &p, i % 3 != 0).unwrap();
    }
    w.finish().unwrap()
}

#[test]
fn identical_builds_emit_identical_matrix_bytes() {
    let (da, db) = (tmp("a"), tmp("b"));
    let la = build(&da);
    let lb = build(&db);

    let file_a = fs::read(da.join("results.md")).unwrap();
    let file_b = fs::read(db.join("results.md")).unwrap();
    assert!(!file_a.is_empty(), "results.md must not be empty");
    assert_eq!(
        file_a, file_b,
        "two identical builds produced different results.md bytes"
    );

    // The in-memory rendering path must agree with what hit the disk.
    let rendered = render_matrix(&la.matrix_rows());
    assert_eq!(rendered.into_bytes(), file_a);
    assert_eq!(la.content_hash(), lb.content_hash());

    let _ = fs::remove_dir_all(&da);
    let _ = fs::remove_dir_all(&db);
}
