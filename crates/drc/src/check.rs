use crate::violation::Axis;
use crate::{DesignRules, Violation};
use dp_geometry::runs::{filled_runs, interior_space_runs};
use dp_geometry::{BitGrid, ComponentLabels, Coord, Layout};
use dp_squish::SquishPattern;
use std::ops::Range;

/// Result of a DRC run: every violation found plus coverage statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DrcReport {
    violations: Vec<Violation>,
    polygons_checked: usize,
    runs_checked: usize,
}

impl DrcReport {
    /// All violations found, in scan order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `true` when the pattern is DRC-clean (paper Definition 2).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of polygons whose area was checked.
    pub fn polygons_checked(&self) -> usize {
        self.polygons_checked
    }

    /// Number of width/space runs measured.
    pub fn runs_checked(&self) -> usize {
        self.runs_checked
    }

    /// Violation count for one rule family (`"space"`, `"width"`, `"area"`).
    pub fn count_of(&self, rule: &str) -> usize {
        self.violations
            .iter()
            .filter(|v| v.rule_name() == rule)
            .count()
    }
}

/// Checks a squish pattern against `rules`, measuring physical extents
/// through the pattern's Δ vectors.
///
/// The check is exhaustive: every filled run (width), every interior empty
/// run (space) along both axes, and every 4-connected polygon (area) is
/// measured. With `rules.exempt_border()`, geometry touching the tile
/// boundary is skipped, matching tile-mode sign-off practice.
pub fn check_pattern(pattern: &SquishPattern, rules: &DesignRules) -> DrcReport {
    let topo = pattern.topology();
    let xs = pattern.x_scan_lines();
    let ys = pattern.y_scan_lines();
    let mut report = DrcReport::default();

    // Rows: width and space along x (`row` indexes both the topology and
    // the `ys` scan lines, so a range loop is the clear form).
    #[allow(clippy::needless_range_loop)]
    for row in 0..topo.height() {
        let cross = ys[row];
        check_line(
            topo.row(row),
            topo.width(),
            &xs,
            Axis::X,
            cross,
            rules,
            &mut report,
        );
    }
    // Columns: width and space along y.
    #[allow(clippy::needless_range_loop)]
    for col in 0..topo.width() {
        let cross = xs[col];
        check_line(
            topo.column(col),
            topo.height(),
            &ys,
            Axis::Y,
            cross,
            rules,
            &mut report,
        );
    }

    // Areas per connected polygon.
    let labels = ComponentLabels::label(topo);
    let boxes = labels.bounding_boxes();
    for label in 0..labels.count() {
        let (c0, r0, c1, r1) = boxes[label as usize];
        let touches_border = c0 == 0 || r0 == 0 || c1 == topo.width() || r1 == topo.height();
        if touches_border && rules.exempt_border() {
            continue;
        }
        report.polygons_checked += 1;
        let area: i128 = labels
            .cells_of(label)
            .into_iter()
            .map(|(c, r)| pattern.dx()[c] as i128 * pattern.dy()[r] as i128)
            .sum();
        if area < rules.area_min() || area > rules.area_max() {
            report.violations.push(Violation::Area {
                polygon: label,
                area,
                min: rules.area_min(),
                max: rules.area_max(),
            });
        }
    }

    report
}

/// Checks one row or column worth of cells.
#[allow(clippy::too_many_arguments)]
fn check_line(
    cells: impl Iterator<Item = bool>,
    len: usize,
    scan: &[Coord],
    axis: Axis,
    cross: Coord,
    rules: &DesignRules,
    report: &mut DrcReport,
) {
    let cells: Vec<bool> = cells.collect();
    for run in filled_runs(cells.iter().copied()) {
        if run.touches_border(len) && rules.exempt_border() {
            continue;
        }
        report.runs_checked += 1;
        let extent = scan[run.end] - scan[run.start];
        if extent < rules.width_min() {
            report.violations.push(Violation::Width {
                axis,
                at: scan[run.start],
                cross,
                extent,
                required: rules.width_min(),
            });
        }
    }
    for run in interior_space_runs(cells.iter().copied(), len) {
        report.runs_checked += 1;
        let extent = scan[run.end] - scan[run.start];
        if extent < rules.space_min() {
            report.violations.push(Violation::Space {
                axis,
                at: scan[run.start],
                cross,
                extent,
                required: rules.space_min(),
            });
        }
    }
}

/// Encodes a layout to its squish pattern and checks it.
pub fn check_layout(layout: &Layout, rules: &DesignRules) -> DrcReport {
    check_pattern(&SquishPattern::encode(layout), rules)
}

/// Marks every topology cell implicated in a violation of `rules`: the
/// cells of too-narrow filled runs (width), of too-tight interior empty
/// runs (space), and of polygons with out-of-range area. The same scan as
/// [`check_pattern`], so the mask is non-empty exactly when the report is
/// dirty.
///
/// This is the "thaw set" of the conditioned repair workload: a repair
/// lane resamples the flagged cells (plus whatever dilation the caller
/// adds) while freezing the already-legal remainder of the pattern.
pub fn flagged_cells(pattern: &SquishPattern, rules: &DesignRules) -> BitGrid {
    let topo = pattern.topology();
    let xs = pattern.x_scan_lines();
    let ys = pattern.y_scan_lines();
    let mut mask = BitGrid::new(topo.width(), topo.height()).expect("topology is non-empty");

    for row in 0..topo.height() {
        let cells: Vec<bool> = topo.row(row).collect();
        for span in violating_spans(&cells, topo.width(), &xs, rules) {
            for col in span {
                mask.set(col, row, true);
            }
        }
    }
    for col in 0..topo.width() {
        let cells: Vec<bool> = topo.column(col).collect();
        for span in violating_spans(&cells, topo.height(), &ys, rules) {
            for row in span {
                mask.set(col, row, true);
            }
        }
    }

    let labels = ComponentLabels::label(topo);
    let boxes = labels.bounding_boxes();
    for label in 0..labels.count() {
        let (c0, r0, c1, r1) = boxes[label as usize];
        let touches_border = c0 == 0 || r0 == 0 || c1 == topo.width() || r1 == topo.height();
        if touches_border && rules.exempt_border() {
            continue;
        }
        let cells = labels.cells_of(label);
        let area: i128 = cells
            .iter()
            .map(|&(c, r)| pattern.dx()[c] as i128 * pattern.dy()[r] as i128)
            .sum();
        if area < rules.area_min() || area > rules.area_max() {
            for (c, r) in cells {
                mask.set(c, r, true);
            }
        }
    }
    mask
}

/// Cell-index spans of the width/space violations along one row or column
/// — [`check_line`]'s scan with locations instead of reports.
fn violating_spans(
    cells: &[bool],
    len: usize,
    scan: &[Coord],
    rules: &DesignRules,
) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    for run in filled_runs(cells.iter().copied()) {
        if run.touches_border(len) && rules.exempt_border() {
            continue;
        }
        if scan[run.end] - scan[run.start] < rules.width_min() {
            out.push(run.start..run.end);
        }
    }
    for run in interior_space_runs(cells.iter().copied(), len) {
        if scan[run.end] - scan[run.start] < rules.space_min() {
            out.push(run.start..run.end);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geometry::Rect;

    fn tile() -> Layout {
        Layout::new(Rect::new(0, 0, 2048, 2048).unwrap())
    }

    fn rules() -> DesignRules {
        DesignRules::builder()
            .space_min(60)
            .width_min(60)
            .area_range(4_000, 1_500_000)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_pattern_is_clean() {
        let report = check_layout(&tile(), &rules());
        assert!(report.is_clean());
        assert_eq!(report.polygons_checked(), 0);
    }

    #[test]
    fn legal_two_bar_pattern() {
        let mut l = tile();
        l.push(Rect::new(100, 100, 400, 1000).unwrap());
        l.push(Rect::new(600, 100, 900, 1000).unwrap());
        let report = check_layout(&l, &rules());
        assert!(report.is_clean(), "{:?}", report.violations());
        assert_eq!(report.polygons_checked(), 2);
    }

    #[test]
    fn space_violation_detected() {
        let mut l = tile();
        l.push(Rect::new(100, 100, 400, 1000).unwrap());
        l.push(Rect::new(420, 100, 700, 1000).unwrap()); // 20 nm gap
        let report = check_layout(&l, &rules());
        assert_eq!(report.count_of("space"), 1);
        match &report.violations()[0] {
            Violation::Space {
                extent, required, ..
            } => {
                assert_eq!(*extent, 20);
                assert_eq!(*required, 60);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn width_violation_detected_on_both_axes() {
        let mut l = tile();
        // 30 nm wide vertical sliver.
        l.push(Rect::new(500, 100, 530, 1000).unwrap());
        // 30 nm tall horizontal sliver.
        l.push(Rect::new(1000, 500, 1900, 530).unwrap());
        let report = check_layout(&l, &rules());
        // Each sliver is reported once per scan row/column it spans (the
        // cross scan lines of the other sliver split its rows), so expect
        // at least one violation per axis.
        assert!(report.count_of("width") >= 2);
        let axes: Vec<Axis> = report
            .violations()
            .iter()
            .filter_map(|v| match v {
                Violation::Width { axis, .. } => Some(*axis),
                _ => None,
            })
            .collect();
        assert!(axes.contains(&Axis::X) && axes.contains(&Axis::Y));
    }

    #[test]
    fn area_violations_detected() {
        let mut l = tile();
        // 50x60 = 3000 nm^2 < 4000 minimum.
        l.push(Rect::new(100, 100, 160, 150).unwrap());
        // 1300x1300 = 1.69e6 > 1.5e6 maximum.
        l.push(Rect::new(400, 400, 1700, 1700).unwrap());
        let report = check_layout(&l, &rules());
        assert_eq!(report.count_of("area"), 2);
    }

    #[test]
    fn border_exemption() {
        let mut l = tile();
        // Cut shape at the border: 30 nm wide but touching x=0.
        l.push(Rect::new(0, 100, 30, 1000).unwrap());
        let exempt = check_layout(&l, &rules());
        assert!(exempt.is_clean());

        let strict_rules = DesignRules::builder()
            .space_min(60)
            .width_min(60)
            .area_range(4_000, 1_500_000)
            .exempt_border(false)
            .build()
            .unwrap();
        let strict = check_layout(&l, &strict_rules);
        assert!(!strict.is_clean());
        assert!(strict.count_of("width") >= 1);
    }

    #[test]
    fn diagonal_neighbours_have_no_space_violation() {
        // Space is measured along rows/columns only (Manhattan), matching
        // the paper's Fig. 3; diagonal proximity is allowed by this rule
        // family (and excluded anyway by the bow-tie pre-filter when the
        // shapes share a corner).
        let mut l = tile();
        l.push(Rect::new(100, 100, 400, 400).unwrap());
        l.push(Rect::new(420, 420, 700, 700).unwrap());
        let report = check_layout(&l, &rules());
        assert!(report.is_clean());
    }

    #[test]
    fn report_counts_runs() {
        let mut l = tile();
        l.push(Rect::new(100, 100, 400, 1000).unwrap());
        let report = check_layout(&l, &rules());
        assert!(report.runs_checked() > 0);
    }

    #[test]
    fn flagged_cells_empty_iff_clean() {
        let mut clean = tile();
        clean.push(Rect::new(100, 100, 400, 1000).unwrap());
        clean.push(Rect::new(600, 100, 900, 1000).unwrap());
        let p = SquishPattern::encode(&clean);
        assert!(check_pattern(&p, &rules()).is_clean());
        assert!(flagged_cells(&p, &rules()).is_empty());

        let mut dirty = tile();
        dirty.push(Rect::new(100, 100, 400, 1000).unwrap());
        dirty.push(Rect::new(420, 100, 700, 1000).unwrap()); // 20 nm gap
        let p = SquishPattern::encode(&dirty);
        assert!(!check_pattern(&p, &rules()).is_clean());
        assert!(!flagged_cells(&p, &rules()).is_empty());
    }

    #[test]
    fn flagged_cells_locate_the_violating_gap() {
        // The 20 nm gap between the bars is one empty column; only its
        // cells (per violating row) may be flagged — the bars themselves
        // are legal and must stay unflagged so a repair can freeze them.
        let mut l = tile();
        l.push(Rect::new(100, 100, 400, 1000).unwrap());
        l.push(Rect::new(420, 100, 700, 1000).unwrap());
        let p = SquishPattern::encode(&l);
        let mask = flagged_cells(&p, &rules());
        let topo = p.topology();
        assert!(!mask.is_empty());
        for row in 0..topo.height() {
            for col in 0..topo.width() {
                if mask.get(col, row) {
                    assert!(!topo.get(col, row), "filled cell flagged at ({col},{row})");
                }
            }
        }
    }

    #[test]
    fn flagged_cells_cover_bad_area_polygons() {
        let mut l = tile();
        // 50x60 = 3000 nm^2 < 4000 minimum: the whole polygon is flagged.
        l.push(Rect::new(100, 100, 160, 150).unwrap());
        let p = SquishPattern::encode(&l);
        let mask = flagged_cells(&p, &rules());
        let topo = p.topology();
        for row in 0..topo.height() {
            for col in 0..topo.width() {
                if topo.get(col, row) {
                    assert!(mask.get(col, row), "polygon cell ({col},{row}) unflagged");
                }
            }
        }
    }

    #[test]
    fn pattern_level_matches_layout_level() {
        let mut l = tile();
        l.push(Rect::new(100, 100, 400, 1000).unwrap());
        l.push(Rect::new(420, 100, 700, 1000).unwrap());
        let p = SquishPattern::encode(&l);
        assert_eq!(check_pattern(&p, &rules()), check_layout(&l, &rules()));
    }

    #[test]
    fn extended_pattern_checks_identically() {
        // Extension splits deltas but physical extents are unchanged, so a
        // clean pattern stays clean and a dirty one stays dirty.
        let mut l = tile();
        l.push(Rect::new(100, 100, 400, 1000).unwrap());
        l.push(Rect::new(420, 100, 700, 1000).unwrap());
        let p = SquishPattern::encode(&l);
        let (ext, _) = dp_squish::extend_to_side(&p, 16).unwrap();
        let a = check_pattern(&p, &rules());
        let b = check_pattern(&ext, &rules());
        // Row duplication can repeat a violating run, so only cleanliness
        // and the presence of the space violation are invariant.
        assert_eq!(a.is_clean(), b.is_clean());
        assert!(a.count_of("space") >= 1 && b.count_of("space") >= 1);
    }
}
