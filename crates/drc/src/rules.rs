use std::fmt;

use dp_geometry::Coord;

/// A set of design rules (paper Fig. 3).
///
/// All distances are in nanometres, areas in nm². Runs and polygons that
/// touch the tile border can be exempted (`exempt_border`, default `true`)
/// because the neighbouring geometry in the adjacent tile is unknown — the
/// same convention a tile-mode KLayout deck uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DesignRules {
    space_min: Coord,
    width_min: Coord,
    area_min: i128,
    area_max: i128,
    exempt_border: bool,
}

/// Error produced when a rule set is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RulesError {
    /// A minimum distance is not positive.
    NonPositiveDistance {
        /// Rule name.
        rule: &'static str,
        /// Offending value.
        value: Coord,
    },
    /// The area interval is empty or starts below zero.
    BadAreaRange {
        /// Lower bound supplied.
        min: i128,
        /// Upper bound supplied.
        max: i128,
    },
}

impl fmt::Display for RulesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RulesError::NonPositiveDistance { rule, value } => {
                write!(f, "{rule} = {value} must be positive")
            }
            RulesError::BadAreaRange { min, max } => {
                write!(f, "area range [{min}, {max}] is empty or negative")
            }
        }
    }
}

impl std::error::Error for RulesError {}

impl DesignRules {
    /// Starts building a rule set.
    pub fn builder() -> DesignRulesBuilder {
        DesignRulesBuilder::default()
    }

    /// The default rule set used throughout the reproduction's experiments:
    /// `space_min = width_min = 60 nm`, polygon area within
    /// `[4 000, 1 500 000] nm²`, border shapes exempt. These values are in
    /// proportion to a 2048 nm tile roughly as a 14 nm-node metal layer's
    /// rules are to its clip size.
    pub fn standard() -> Self {
        DesignRules {
            space_min: 60,
            width_min: 60,
            area_min: 4_000,
            area_max: 1_500_000,
            exempt_border: true,
        }
    }

    /// The "larger `space_min`" variant of paper Fig. 8(b).
    pub fn larger_space() -> Self {
        DesignRules {
            space_min: 180,
            ..Self::standard()
        }
    }

    /// The "smaller `area_max`" variant of paper Fig. 8(c).
    pub fn smaller_area() -> Self {
        DesignRules {
            area_max: 200_000,
            ..Self::standard()
        }
    }

    /// Minimum polygon-to-polygon spacing.
    pub fn space_min(&self) -> Coord {
        self.space_min
    }

    /// Minimum shape width.
    pub fn width_min(&self) -> Coord {
        self.width_min
    }

    /// Minimum polygon area.
    pub fn area_min(&self) -> i128 {
        self.area_min
    }

    /// Maximum polygon area.
    pub fn area_max(&self) -> i128 {
        self.area_max
    }

    /// Whether border-touching runs/polygons are exempt from checks.
    pub fn exempt_border(&self) -> bool {
        self.exempt_border
    }
}

impl Default for DesignRules {
    fn default() -> Self {
        Self::standard()
    }
}

impl fmt::Display for DesignRules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "space>={} width>={} area in [{}, {}]{}",
            self.space_min,
            self.width_min,
            self.area_min,
            self.area_max,
            if self.exempt_border {
                " (border exempt)"
            } else {
                ""
            }
        )
    }
}

/// Builder for [`DesignRules`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct DesignRulesBuilder {
    space_min: Coord,
    width_min: Coord,
    area_min: i128,
    area_max: i128,
    exempt_border: bool,
}

impl Default for DesignRulesBuilder {
    fn default() -> Self {
        let std = DesignRules::standard();
        DesignRulesBuilder {
            space_min: std.space_min,
            width_min: std.width_min,
            area_min: std.area_min,
            area_max: std.area_max,
            exempt_border: std.exempt_border,
        }
    }
}

impl DesignRulesBuilder {
    /// Sets the minimum spacing rule.
    pub fn space_min(mut self, v: Coord) -> Self {
        self.space_min = v;
        self
    }

    /// Sets the minimum width rule.
    pub fn width_min(mut self, v: Coord) -> Self {
        self.width_min = v;
        self
    }

    /// Sets the polygon area range `[min, max]`.
    pub fn area_range(mut self, min: i128, max: i128) -> Self {
        self.area_min = min;
        self.area_max = max;
        self
    }

    /// Sets whether border-touching geometry is exempt.
    pub fn exempt_border(mut self, v: bool) -> Self {
        self.exempt_border = v;
        self
    }

    /// Validates and builds the rule set.
    ///
    /// # Errors
    ///
    /// Returns [`RulesError`] when a distance is non-positive or the area
    /// range is empty.
    pub fn build(self) -> Result<DesignRules, RulesError> {
        if self.space_min <= 0 {
            return Err(RulesError::NonPositiveDistance {
                rule: "space_min",
                value: self.space_min,
            });
        }
        if self.width_min <= 0 {
            return Err(RulesError::NonPositiveDistance {
                rule: "width_min",
                value: self.width_min,
            });
        }
        if self.area_min < 0 || self.area_max < self.area_min {
            return Err(RulesError::BadAreaRange {
                min: self.area_min,
                max: self.area_max,
            });
        }
        Ok(DesignRules {
            space_min: self.space_min,
            width_min: self.width_min,
            area_min: self.area_min,
            area_max: self.area_max,
            exempt_border: self.exempt_border,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_standard() {
        let built = DesignRules::builder().build().unwrap();
        assert_eq!(built, DesignRules::standard());
        assert_eq!(DesignRules::default(), DesignRules::standard());
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            DesignRules::builder().space_min(0).build(),
            Err(RulesError::NonPositiveDistance {
                rule: "space_min",
                ..
            })
        ));
        assert!(matches!(
            DesignRules::builder().width_min(-5).build(),
            Err(RulesError::NonPositiveDistance {
                rule: "width_min",
                ..
            })
        ));
        assert!(matches!(
            DesignRules::builder().area_range(100, 50).build(),
            Err(RulesError::BadAreaRange { .. })
        ));
    }

    #[test]
    fn presets_differ_as_figure_8_describes() {
        let normal = DesignRules::standard();
        assert!(DesignRules::larger_space().space_min() > normal.space_min());
        assert!(DesignRules::smaller_area().area_max() < normal.area_max());
    }

    #[test]
    fn display_mentions_all_rules() {
        let s = DesignRules::standard().to_string();
        assert!(s.contains("space") && s.contains("width") && s.contains("area"));
    }
}
