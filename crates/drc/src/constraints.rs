//! Extraction of the nonlinear-system ingredients (paper Eq. 14).
//!
//! The legal-pattern-assessment phase needs, for a *fixed* topology matrix,
//! the pattern-dependent index sets over the unknown Δ vectors:
//!
//! * `Set_W` — delta ranges spanned by a filled run (a shape crossing),
//!   whose physical sum must be at least `width_min`,
//! * `Set_S` — delta ranges spanned by an interior empty run between two
//!   shapes, whose sum must be at least `space_min`,
//! * per-polygon cell sets, whose bilinear sum `Σ δx_i · δy_j` must lie in
//!   `[area_min, area_max]`.
//!
//! [`ConstraintSet::extract`] computes these once per topology; the
//! legalizer in `dp-legalize` then solves for Δx, Δy. Because the same
//! run/polygon definitions drive [`crate::check_pattern`], a solution that
//! satisfies the constraint set is DRC-clean by construction (see the
//! cross-validation property test in `dp-legalize`).

use std::collections::BTreeSet;

use crate::DesignRules;
use dp_geometry::runs::{filled_runs, interior_space_runs};
use dp_geometry::{BitGrid, ComponentLabels, Coord};

/// The pattern-dependent constraint data for one topology matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintSet {
    cols: usize,
    rows: usize,
    x_width: Vec<(usize, usize)>,
    x_space: Vec<(usize, usize)>,
    y_width: Vec<(usize, usize)>,
    y_space: Vec<(usize, usize)>,
    polygons: Vec<Vec<(usize, usize)>>,
}

impl ConstraintSet {
    /// Extracts all constraint index sets from a topology under `rules`
    /// (border exemption is honoured here, consistently with the checker).
    pub fn extract(topology: &BitGrid, rules: &DesignRules) -> Self {
        let w = topology.width();
        let h = topology.height();

        let mut x_width: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut x_space: BTreeSet<(usize, usize)> = BTreeSet::new();
        for row in 0..h {
            let cells: Vec<bool> = topology.row(row).collect();
            for run in filled_runs(cells.iter().copied()) {
                if run.touches_border(w) && rules.exempt_border() {
                    continue;
                }
                x_width.insert((run.start, run.end));
            }
            for run in interior_space_runs(cells.iter().copied(), w) {
                x_space.insert((run.start, run.end));
            }
        }

        let mut y_width: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut y_space: BTreeSet<(usize, usize)> = BTreeSet::new();
        for col in 0..w {
            let cells: Vec<bool> = topology.column(col).collect();
            for run in filled_runs(cells.iter().copied()) {
                if run.touches_border(h) && rules.exempt_border() {
                    continue;
                }
                y_width.insert((run.start, run.end));
            }
            for run in interior_space_runs(cells.iter().copied(), h) {
                y_space.insert((run.start, run.end));
            }
        }

        let labels = ComponentLabels::label(topology);
        let boxes = labels.bounding_boxes();
        let mut polygons = Vec::new();
        for label in 0..labels.count() {
            let (c0, r0, c1, r1) = boxes[label as usize];
            let touches = c0 == 0 || r0 == 0 || c1 == w || r1 == h;
            if touches && rules.exempt_border() {
                continue;
            }
            polygons.push(labels.cells_of(label));
        }

        ConstraintSet {
            cols: w,
            rows: h,
            x_width: x_width.into_iter().collect(),
            x_space: x_space.into_iter().collect(),
            y_width: y_width.into_iter().collect(),
            y_space: y_space.into_iter().collect(),
            polygons,
        }
    }

    /// Number of Δx variables (topology columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of Δy variables (topology rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Width ranges over Δx (half-open index ranges).
    pub fn x_width(&self) -> &[(usize, usize)] {
        &self.x_width
    }

    /// Space ranges over Δx.
    pub fn x_space(&self) -> &[(usize, usize)] {
        &self.x_space
    }

    /// Width ranges over Δy.
    pub fn y_width(&self) -> &[(usize, usize)] {
        &self.y_width
    }

    /// Space ranges over Δy.
    pub fn y_space(&self) -> &[(usize, usize)] {
        &self.y_space
    }

    /// Cell lists per area-constrained polygon.
    pub fn polygons(&self) -> &[Vec<(usize, usize)>] {
        &self.polygons
    }

    /// Total number of scalar constraints (paper Eq. 14 rows, excluding
    /// positivity and the two sum-pinning equalities).
    pub fn len(&self) -> usize {
        self.x_width.len()
            + self.x_space.len()
            + self.y_width.len()
            + self.y_space.len()
            + self.polygons.len()
    }

    /// `true` when the topology induces no constraints at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks whether concrete Δ vectors satisfy every constraint under
    /// `rules`. This is the reference oracle the solver is validated
    /// against.
    ///
    /// # Panics
    ///
    /// Panics when `dx`/`dy` lengths do not match the topology shape.
    pub fn is_satisfied(&self, dx: &[Coord], dy: &[Coord], rules: &DesignRules) -> bool {
        assert_eq!(dx.len(), self.cols, "dx length mismatch");
        assert_eq!(dy.len(), self.rows, "dy length mismatch");
        if dx.iter().any(|&d| d <= 0) || dy.iter().any(|&d| d <= 0) {
            return false;
        }
        let sum = |v: &[Coord], (a, b): (usize, usize)| -> Coord { v[a..b].iter().sum() };
        for &range in &self.x_width {
            if sum(dx, range) < rules.width_min() {
                return false;
            }
        }
        for &range in &self.x_space {
            if sum(dx, range) < rules.space_min() {
                return false;
            }
        }
        for &range in &self.y_width {
            if sum(dy, range) < rules.width_min() {
                return false;
            }
        }
        for &range in &self.y_space {
            if sum(dy, range) < rules.space_min() {
                return false;
            }
        }
        for cells in &self.polygons {
            let area: i128 = cells
                .iter()
                .map(|&(c, r)| dx[c] as i128 * dy[r] as i128)
                .sum();
            if area < rules.area_min() || area > rules.area_max() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> DesignRules {
        DesignRules::builder()
            .space_min(60)
            .width_min(60)
            .area_range(4_000, 1_500_000)
            .build()
            .unwrap()
    }

    /// Two vertical bars with a gap: `.#.#.` horizontally, solid vertically
    /// inside a margin.
    fn two_bars() -> BitGrid {
        BitGrid::from_ascii(
            ".....
             .#.#.
             .#.#.
             .....",
        )
        .unwrap()
    }

    #[test]
    fn extracts_expected_ranges() {
        let cs = ConstraintSet::extract(&two_bars(), &rules());
        // x: filled runs at cols 1..2 and 3..4; interior space runs 0..1 is
        // border-touching? start==0 touches border -> excluded; 2..3 between
        // bars -> included; 4..5 border -> excluded.
        assert_eq!(cs.x_width(), &[(1, 2), (3, 4)]);
        assert_eq!(cs.x_space(), &[(2, 3)]);
        // y: bars span rows 1..3 in columns 1 and 3.
        assert_eq!(cs.y_width(), &[(1, 3)]);
        assert_eq!(cs.y_space(), &[]);
        assert_eq!(cs.polygons().len(), 2);
        assert_eq!(cs.len(), 2 + 1 + 1 + 2);
    }

    #[test]
    fn empty_topology_has_no_constraints() {
        let g = BitGrid::new(4, 4).unwrap();
        let cs = ConstraintSet::extract(&g, &rules());
        assert!(cs.is_empty());
        assert!(cs.is_satisfied(&[1; 4], &[1; 4], &rules()));
    }

    #[test]
    fn satisfaction_oracle() {
        let cs = ConstraintSet::extract(&two_bars(), &rules());
        let r = rules();
        // Legal: bars 100 wide, gap 100, margins 100; rows 100 tall.
        let dx = vec![100, 100, 100, 100, 1648];
        let dy = vec![100, 100, 100, 1748];
        assert!(cs.is_satisfied(&dx, &dy, &r));
        // Too-narrow gap.
        let dx_bad = vec![100, 100, 20, 100, 1728];
        assert!(!cs.is_satisfied(&dx_bad, &dy, &r));
        // Too-narrow bar.
        let dx_bad = vec![100, 30, 170, 100, 1648];
        assert!(!cs.is_satisfied(&dx_bad, &dy, &r));
        // Bar area too small: 100 wide x 30 tall x 2 rows = hmm, rows are
        // two cells; shrink both row heights.
        let dy_bad = vec![100, 10, 10, 1928];
        assert!(!cs.is_satisfied(&dx, &dy_bad, &r));
        // Non-positive delta.
        let dx_bad = vec![100, 100, 0, 200, 1648];
        assert!(!cs.is_satisfied(&dx_bad, &dy, &r));
    }

    #[test]
    fn satisfaction_agrees_with_checker() {
        use dp_squish::SquishPattern;
        let topo = two_bars();
        let r = rules();
        let cs = ConstraintSet::extract(&topo, &r);
        let cases = [
            (vec![100, 100, 100, 100, 1648], vec![100, 100, 100, 1748]),
            (vec![100, 100, 20, 100, 1728], vec![100, 100, 100, 1748]),
            (vec![500, 700, 100, 100, 648], vec![100, 1000, 800, 148]),
        ];
        for (dx, dy) in cases {
            let pattern = SquishPattern::new(topo.clone(), dx.clone(), dy.clone()).unwrap();
            let report = crate::check_pattern(&pattern, &r);
            assert_eq!(
                cs.is_satisfied(&dx, &dy, &r),
                report.is_clean(),
                "oracle and checker disagree for dx={dx:?} dy={dy:?}: {:?}",
                report.violations()
            );
        }
    }

    #[test]
    fn border_exemption_consistency() {
        let strict = DesignRules::builder()
            .space_min(60)
            .width_min(60)
            .area_range(4_000, 1_500_000)
            .exempt_border(false)
            .build()
            .unwrap();
        // A bar touching the left border.
        let g = BitGrid::from_ascii(
            "#..
             #..
             #..",
        )
        .unwrap();
        let exempted = ConstraintSet::extract(&g, &rules());
        let checked = ConstraintSet::extract(&g, &strict);
        assert!(exempted.x_width().is_empty());
        assert_eq!(checked.x_width(), &[(0, 1)]);
        assert!(exempted.polygons().is_empty());
        assert_eq!(checked.polygons().len(), 1);
    }
}
