//! Design-rule checking for layout patterns.
//!
//! The paper evaluates pattern *legality* with KLayout against three rule
//! families (Fig. 3):
//!
//! * **Space** — the distance between two adjacent polygons must be at
//!   least `space_min`,
//! * **Width** — the size of a shape measured across, in either axis, must
//!   be at least `width_min`,
//! * **Area** — each polygon's area must lie within
//!   `[area_min, area_max]`.
//!
//! This crate is the workspace's KLayout substitute: [`check_pattern`]
//! measures all three rule families directly on a squish pattern (topology
//! matrix + Δ vectors), reporting every [`Violation`] with physical
//! coordinates, and [`constraints::ConstraintSet`] extracts the
//! `Set_S` / `Set_W` index sets and per-polygon cell lists that the
//! legalization system (paper Eq. 14) is built from — guaranteeing the
//! checker and the legalizer agree on what "legal" means.
//!
//! # Example
//!
//! ```
//! use dp_geometry::{Layout, Rect};
//! use dp_squish::SquishPattern;
//! use dp_drc::{check_pattern, DesignRules};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rules = DesignRules::builder()
//!     .space_min(40)
//!     .width_min(40)
//!     .area_range(1_000, 2_000_000)
//!     .build()?;
//!
//! let mut layout = Layout::new(Rect::new(0, 0, 2048, 2048)?);
//! layout.push(Rect::new(100, 100, 300, 800)?);   // 200 wide: ok
//! layout.push(Rect::new(320, 100, 520, 800)?);   // only 20 apart: space violation
//! let pattern = SquishPattern::encode(&layout);
//!
//! let report = check_pattern(&pattern, &rules);
//! assert!(!report.is_clean());
//! assert_eq!(report.violations().len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod check;
pub mod constraints;
mod rules;
mod violation;

pub use check::{check_layout, check_pattern, flagged_cells, DrcReport};
pub use constraints::ConstraintSet;
pub use rules::{DesignRules, DesignRulesBuilder, RulesError};
pub use violation::Violation;
