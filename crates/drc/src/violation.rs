use dp_geometry::Coord;
use std::fmt;

/// Axis along which a distance rule is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Axis {
    /// Horizontal measurement (along a row).
    X,
    /// Vertical measurement (along a column).
    Y,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
        }
    }
}

/// A single design-rule violation with its physical location.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Violation {
    /// Two polygons closer than `space_min`.
    Space {
        /// Measurement axis.
        axis: Axis,
        /// Physical coordinate of the scan line where the gap starts.
        at: Coord,
        /// Physical coordinate of the perpendicular position (row/column
        /// start) where the gap was measured.
        cross: Coord,
        /// Measured gap.
        extent: Coord,
        /// Required minimum.
        required: Coord,
    },
    /// A shape narrower than `width_min`.
    Width {
        /// Measurement axis.
        axis: Axis,
        /// Physical coordinate of the scan line where the run starts.
        at: Coord,
        /// Physical coordinate of the perpendicular position where the run
        /// was measured.
        cross: Coord,
        /// Measured width.
        extent: Coord,
        /// Required minimum.
        required: Coord,
    },
    /// A polygon with area outside `[area_min, area_max]`.
    Area {
        /// Component label of the polygon within the topology.
        polygon: u32,
        /// Measured area in nm².
        area: i128,
        /// Allowed minimum.
        min: i128,
        /// Allowed maximum.
        max: i128,
    },
}

impl Violation {
    /// Short machine-readable rule name: `"space"`, `"width"` or `"area"`.
    pub fn rule_name(&self) -> &'static str {
        match self {
            Violation::Space { .. } => "space",
            Violation::Width { .. } => "width",
            Violation::Area { .. } => "area",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Space {
                axis,
                at,
                cross,
                extent,
                required,
            } => write!(
                f,
                "space violation along {axis} at ({at}, {cross}): {extent} < {required}"
            ),
            Violation::Width {
                axis,
                at,
                cross,
                extent,
                required,
            } => write!(
                f,
                "width violation along {axis} at ({at}, {cross}): {extent} < {required}"
            ),
            Violation::Area {
                polygon,
                area,
                min,
                max,
            } => write!(
                f,
                "area violation on polygon {polygon}: {area} outside [{min}, {max}]"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names() {
        let v = Violation::Area {
            polygon: 0,
            area: 10,
            min: 100,
            max: 200,
        };
        assert_eq!(v.rule_name(), "area");
        assert!(v.to_string().contains("polygon 0"));
    }

    #[test]
    fn display_space() {
        let v = Violation::Space {
            axis: Axis::X,
            at: 100,
            cross: 50,
            extent: 20,
            required: 60,
        };
        let s = v.to_string();
        assert!(s.contains("space") && s.contains("20 < 60"));
    }
}
