//! `bench_diff` — compares two benchmark median snapshots
//! (`BENCH_*.json`, the `dp-bench-medians/1` files the criterion shim
//! writes under `DP_BENCH_JSON`).
//!
//! ```text
//! bench_diff OLD.json NEW.json [--tolerance PCT] [--row NAME]...
//! ```
//!
//! Prints a per-benchmark delta table over the labels both snapshots
//! contain, lists labels only one side has, and exits non-zero when any
//! shared benchmark slowed down by more than `--tolerance` percent
//! (default 50 — wide enough for shared-CI jitter, tight enough to catch
//! a path accidentally falling off its fast implementation). Speed-ups
//! never fail the diff.
//!
//! `--row NAME` (repeatable) restricts the comparison to exactly the
//! named rows and *errors* when a named row is missing from either
//! snapshot — the hard-gate mode CI uses for the pinned sampler rows,
//! where a renamed or dropped benchmark must not silently pass.
//!
//! The parser is deliberately lenient — any line shaped like
//! `"label": {"median_ns": N, ...}` counts — so snapshots survive manual
//! edits and future schema additions.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: bench_diff OLD.json NEW.json [--tolerance PCT] [--row NAME]...";

fn run(args: &[String]) -> Result<bool, String> {
    let mut files: Vec<&str> = Vec::new();
    let mut tolerance = 50.0f64;
    let mut rows: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            let v = it.next().ok_or_else(|| USAGE.to_string())?;
            tolerance = v
                .parse()
                .map_err(|_| format!("--tolerance expects a number, got `{v}`"))?;
        } else if arg == "--row" {
            rows.push(it.next().ok_or_else(|| USAGE.to_string())?);
        } else {
            files.push(arg);
        }
    }
    let [old_path, new_path] = files[..] else {
        return Err(USAGE.to_string());
    };
    let mut old = load_medians(old_path)?;
    let mut new = load_medians(new_path)?;
    if !rows.is_empty() {
        for row in &rows {
            if !old.contains_key(*row) {
                return Err(format!("{old_path}: pinned row `{row}` is missing"));
            }
            if !new.contains_key(*row) {
                return Err(format!("{new_path}: pinned row `{row}` is missing"));
            }
        }
        old.retain(|k, _| rows.contains(&k.as_str()));
        new.retain(|k, _| rows.contains(&k.as_str()));
    }

    let width = old
        .keys()
        .chain(new.keys())
        .map(String::len)
        .max()
        .unwrap_or(9)
        .max("benchmark".len());
    println!(
        "{:<width$} {:>14} {:>14} {:>9}",
        "benchmark", "old (ns)", "new (ns)", "delta"
    );

    let mut regressions = Vec::new();
    for (label, &old_ns) in &old {
        let Some(&new_ns) = new.get(label) else {
            continue;
        };
        let pct = if old_ns > 0.0 {
            100.0 * (new_ns - old_ns) / old_ns
        } else {
            0.0
        };
        println!("{label:<width$} {old_ns:>14.0} {new_ns:>14.0} {pct:>+8.1}%");
        if pct > tolerance {
            regressions.push((label.clone(), pct));
        }
    }
    for label in new.keys().filter(|l| !old.contains_key(*l)) {
        println!(
            "{label:<width$} {:>14} {:>14.0} {:>9}",
            "-", new[label], "added"
        );
    }
    for label in old.keys().filter(|l| !new.contains_key(*l)) {
        println!(
            "{label:<width$} {:>14.0} {:>14} {:>9}",
            old[label], "-", "removed"
        );
    }

    if regressions.is_empty() {
        println!("ok: no benchmark regressed beyond {tolerance}%");
        return Ok(true);
    }
    for (label, pct) in &regressions {
        eprintln!("regression: {label} slowed by {pct:.1}% (tolerance {tolerance}%)");
    }
    Ok(false)
}

fn load_medians(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let medians = parse_medians(&text);
    if medians.is_empty() {
        return Err(format!(
            "{path}: no `\"label\": {{\"median_ns\": N}}` lines found"
        ));
    }
    Ok(medians)
}

/// Extracts `"label": {"median_ns": N, ...}` pairs, one per line.
fn parse_medians(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some((label, rest)) = quoted_prefix(line) else {
            continue;
        };
        let Some(idx) = rest.find("\"median_ns\"") else {
            continue;
        };
        let tail = rest[idx + "\"median_ns\"".len()..]
            .trim_start()
            .strip_prefix(':')
            .unwrap_or("")
            .trim_start();
        let digits: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = digits.parse::<f64>() {
            out.insert(label.to_string(), v);
        }
    }
    out
}

/// Returns the first double-quoted string on the line and the remainder
/// after its closing quote.
fn quoted_prefix(line: &str) -> Option<(&str, &str)> {
    let start = line.find('"')? + 1;
    let len = line[start..].find('"')?;
    Some((&line[start..start + len], &line[start + len + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
  "schema": "dp-bench-medians/1",
  "results": {
    "a/b": {"median_ns": 100, "samples": 10},
    "c/d": {"median_ns": 2500, "samples": 10}
  }
}"#;

    #[test]
    fn parses_median_lines_and_skips_everything_else() {
        let medians = parse_medians(SNAPSHOT);
        assert_eq!(medians.len(), 2);
        assert_eq!(medians["a/b"], 100.0);
        assert_eq!(medians["c/d"], 2500.0);
    }

    #[test]
    fn regression_detection_respects_tolerance() {
        let old = parse_medians(SNAPSHOT);
        let fast = parse_medians(&SNAPSHOT.replace("2500", "2400"));
        let slow = parse_medians(&SNAPSHOT.replace("2500", "9999"));
        let worst = |new: &BTreeMap<String, f64>| {
            old.iter()
                .filter_map(|(k, &o)| new.get(k).map(|&n| 100.0 * (n - o) / o))
                .fold(f64::NEG_INFINITY, f64::max)
        };
        assert!(worst(&fast) <= 50.0);
        assert!(worst(&slow) > 50.0);
    }

    #[test]
    fn pinned_rows_gate_and_reject_missing_labels() {
        let dir = std::env::temp_dir();
        let old_path = dir.join("bench_diff_row_old.json");
        let new_path = dir.join("bench_diff_row_new.json");
        std::fs::write(&old_path, SNAPSHOT).unwrap();
        // `a/b` regresses far beyond tolerance, `c/d` is unchanged.
        std::fs::write(
            &new_path,
            SNAPSHOT.replace(": {\"median_ns\": 100", ": {\"median_ns\": 900"),
        )
        .unwrap();
        let args = |extra: &[&str]| -> Vec<String> {
            [old_path.to_str().unwrap(), new_path.to_str().unwrap()]
                .iter()
                .map(|s| s.to_string())
                .chain(extra.iter().map(|s| s.to_string()))
                .collect()
        };
        // Pinning only the healthy row passes even though a/b regressed.
        assert_eq!(run(&args(&["--row", "c/d"])), Ok(true));
        // Pinning the regressed row fails.
        assert_eq!(run(&args(&["--row", "a/b", "--row", "c/d"])), Ok(false));
        // A pinned row absent from a snapshot is an error, not a pass.
        assert!(run(&args(&["--row", "no/such"])).is_err());
    }
}
