//! Shared fixtures for the benchmark harness.
//!
//! Each bench target regenerates one table or ablation from DESIGN.md:
//!
//! * `table1_generation` — per-pattern generation cost of every method in
//!   Table I (the quality numbers themselves come from
//!   `examples/table1_comparison.rs`),
//! * `table2_efficiency` — paper Table II: topology sampling time and
//!   Solving-R vs Solving-E,
//! * `ablation_fold` — DESIGN.md D1: U-Net step cost as a function of the
//!   Deep Squish channel count at fixed information content,
//! * `ablation_schedule` — DESIGN.md D2: reverse-sampling cost vs K and
//!   mixing speed of linear vs constant β schedules,
//! * `solver_scaling` — DESIGN.md D3 context: Eq. 14 solve cost vs
//!   topology size.

use dp_geometry::{bowtie, BitGrid};
use rand::{Rng, SeedableRng};

/// A deterministic bow-tie-free topology with a few rectangles, shaped
/// like pre-filtered DiffPattern output.
pub fn bench_topology(seed: u64, side: usize) -> BitGrid {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut grid = BitGrid::new(side, side).expect("side > 0");
    for _ in 0..4 {
        let w = rng.gen_range(1..=side / 2);
        let h = rng.gen_range(1..=side / 2);
        let c0 = rng.gen_range(0..side - w + 1);
        let r0 = rng.gen_range(0..side - h + 1);
        grid.fill_cells(c0, r0, c0 + w, r0 + h);
    }
    bowtie::repair_bowties(&mut grid);
    grid
}

/// A small training set of squish patterns for Solving-E donors and the
/// sequence baseline.
pub fn bench_patterns() -> Vec<dp_squish::SquishPattern> {
    use dp_datagen::{split_into_tiles, GeneratorConfig, LayoutMapGenerator};
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let map = LayoutMapGenerator::new(GeneratorConfig::small()).generate(&mut rng);
    split_into_tiles(&map, 2048)
        .iter()
        .map(dp_squish::SquishPattern::encode)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_valid() {
        let t = bench_topology(0, 16);
        assert!(bowtie::is_bowtie_free(&t));
        assert!(!bench_patterns().is_empty());
    }
}
