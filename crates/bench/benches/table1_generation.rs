//! Table I companion benchmark: the per-pattern *generation cost* of every
//! method in the comparison (the diversity/legality numbers themselves are
//! produced by `examples/table1_comparison.rs`, which prints the actual
//! table).

use criterion::{criterion_group, criterion_main, Criterion};
use dp_baselines::{
    assign_borrowed_deltas, AeConfig, Cae, MorphLegalizer, SequenceModel, SequenceModelConfig, Vcae,
};
use dp_bench::{bench_patterns, bench_topology};
use dp_geometry::BitGrid;
use dp_legalize::{Init, Solver, SolverConfig};
use dp_squish::SquishPattern;
use rand::SeedableRng;

fn baseline_generation(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let donors = bench_patterns();
    let grids: Vec<BitGrid> = donors
        .iter()
        .filter_map(|p| dp_squish::extend_to_side(p, 32).ok())
        .map(|(e, _)| e.topology().clone())
        .collect();
    let ae = AeConfig {
        side: 32,
        features: 4,
        latent: 16,
    };
    let mut cae = Cae::new(ae, &mut rng);
    let _ = cae.train(&grids, 20, 4, &mut rng);
    let mut vcae = Vcae::new(ae, 0.05, &mut rng);
    let _ = vcae.train(&grids, 20, 4, &mut rng);
    let seq = SequenceModel::fit(&donors, SequenceModelConfig::default());
    let legalizer = MorphLegalizer::default();

    let mut group = c.benchmark_group("table1/generation_cost");
    group.sample_size(20);
    group.bench_function("CAE", |b| b.iter(|| cae.generate(&grids, 0.5, &mut rng)));
    group.bench_function("VCAE", |b| b.iter(|| vcae.generate(&mut rng)));
    group.bench_function("VCAE+LegalGAN", |b| {
        b.iter(|| legalizer.legalize(&vcae.generate(&mut rng)))
    });
    group.bench_function("LayouTransformer", |b| b.iter(|| seq.generate(&mut rng)));
    group.bench_function("borrowed_delta_assignment", |b| {
        let topo = bench_topology(1, 32);
        b.iter(|| assign_borrowed_deltas(&topo, &donors, 2048, &mut rng))
    });
    group.finish();
}

fn diffpattern_generation(c: &mut Criterion) {
    // Topology sampling is measured in table2_efficiency; here the
    // end-of-pipe legalization cost per DiffPattern-S pattern.
    let rules = dp_drc::DesignRules::standard();
    let solver = Solver::new(rules, SolverConfig::for_window(2048, 2048));
    let donors = bench_patterns();
    let topo = bench_topology(2, 32);

    let mut group = c.benchmark_group("table1/diffpattern_legalize");
    group.sample_size(20);
    group.bench_function("DiffPattern-S_solve", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| {
            let donor = &donors[0];
            solver.solve(&topo, Init::Existing(donor.dx(), donor.dy()), &mut rng)
        })
    });
    group.bench_function("DiffPattern-L_10_variants", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        b.iter(|| solver.solve_many(&topo, 10, &mut rng))
    });
    group.bench_function("pattern_assembly", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let solution = solver.solve(&topo, Init::Random, &mut rng).unwrap();
        b.iter(|| {
            SquishPattern::new(topo.clone(), solution.dx.clone(), solution.dy.clone()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, baseline_generation, diffpattern_generation);
criterion_main!(benches);
