//! Paper Table II: average time per sample for (a) drawing one topology
//! from the diffusion model and (b) solving Eq. 14 with Solving-R versus
//! Solving-E initialisation. The paper reports 0.544 s sampling (GPU),
//! 0.269 s Solving-R and 0.117 s Solving-E (2.30x); the absolute numbers
//! here differ (CPU, reduced scale) but the *ordering and the R/E ratio
//! shape* are the reproduction target.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_bench::{bench_patterns, bench_topology};
use dp_diffusion::{BatchScratch, NoiseSchedule, Sampler, UniformDenoiser};
use dp_drc::DesignRules;
use dp_legalize::{Init, Solver, SolverConfig};
use dp_nn::{Precision, UNet, UNetConfig};
use rand::SeedableRng;

fn sampling(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    // The sampling cost is architecture-bound, not weight-bound, so an
    // untrained U-Net measures the same per-topology time as a trained one.
    let config = UNetConfig {
        in_channels: 16,
        out_channels: 32,
        base_channels: 8,
        channel_mults: vec![1, 2],
        num_res_blocks: 1,
        attn_resolutions: vec![1],
        time_dim: 16,
        groups: 4,
        dropout: 0.0,
    };
    let mut denoiser = dp_diffusion::NeuralDenoiser::new(UNet::new(&config, &mut rng));
    let sampler = Sampler::new(NoiseSchedule::linear(30, 0.01, 0.5).unwrap());

    let mut group = c.benchmark_group("table2/sampling");
    group.sample_size(10);
    // Cold path for reference: unpacked weights, no workspace reuse. No
    // production path runs this configuration — it exists to show what
    // prepacking buys.
    group.bench_function("topology_per_sample_unpacked", |b| {
        b.iter(|| sampler.sample_one(&mut denoiser, 16, 8, &mut rng))
    });
    // The headline row: prepacked weights and a warm scratch, exactly the
    // steady-state a `PatternService` worker runs a single-lane chunk in.
    denoiser.unet_mut().prepack();
    let mut scratch = BatchScratch::new();
    group.bench_function("topology_per_sample", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let mut rngs = vec![rand::rngs::StdRng::seed_from_u64(round)];
            sampler.sample_batch_with(&denoiser, 16, 8, &mut rngs, &mut scratch)
        })
    });
    // The micro-batched inference path `GenerationSession` actually runs:
    // 8 lock-step chains per U-Net call, prepacked weights, warm scratch.
    // The reported time is per *call* — divide by 8 for the per-topology
    // cost comparable to `topology_per_sample`.
    group.bench_function("topology_batched8_per_call", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let mut rngs: Vec<rand::rngs::StdRng> = (0..8)
                .map(|i| rand::rngs::StdRng::seed_from_u64(round * 8 + i))
                .collect();
            sampler.sample_batch_with(&denoiser, 16, 8, &mut rngs, &mut scratch)
        })
    });
    // The reduced-precision opt-in (`Precision::Bf16`): bf16-rounded
    // packed weights on the same single-lane steady-state path. The
    // architecture is identical, so any delta is pure memory-bandwidth
    // effect on the packed panels.
    let mut bf16_denoiser = dp_diffusion::NeuralDenoiser::new(UNet::new(&config, &mut rng));
    bf16_denoiser.unet_mut().prepack_with(Precision::Bf16);
    group.bench_function("topology_per_sample_bf16", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let mut rngs = vec![rand::rngs::StdRng::seed_from_u64(round)];
            sampler.sample_batch_with(&bf16_denoiser, 16, 8, &mut rngs, &mut scratch)
        })
    });
    // The conditioned single-lane steady-state path: a quarter of the
    // tensor frozen (diffusion inpainting) plus hotspot-avoidance
    // guidance. The per-step overhead over `topology_per_sample` is the
    // re-clamp + logit reweight — budgeted at ≤ 15 % of the
    // unconditioned floor.
    let entries = 16 * 8 * 8;
    let frozen = dp_diffusion::FrozenRegion::new(
        (0..entries).map(|i| i < entries / 4).collect(),
        (0..entries).map(|i| i % 3 == 0).collect(),
    )
    .unwrap();
    let guidance =
        dp_diffusion::MotifGuidance::new(dp_diffusion::Motif::IsolatedCell, 4.0).unwrap();
    let conditioning = dp_diffusion::Conditioning::none()
        .with_frozen(frozen)
        .with_avoid(guidance);
    let retained = sampler.strided_steps(1);
    group.bench_function("topology_conditioned_per_sample", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let mut rngs = vec![rand::rngs::StdRng::seed_from_u64(round)];
            sampler.sample_conditioned_batch_with(
                &denoiser,
                16,
                8,
                &retained,
                &conditioning,
                &mut rngs,
                &mut scratch,
            )
        })
    });
    // Null-model baseline showing the network cost dominates the chain.
    let mut uniform = UniformDenoiser::new();
    group.bench_function("chain_overhead_only", |b| {
        b.iter(|| sampler.sample_one(&mut uniform, 16, 8, &mut rng))
    });
    group.finish();
}

fn solving(c: &mut Criterion) {
    let rules = DesignRules::standard();
    let solver = Solver::new(rules, SolverConfig::for_window(2048, 2048));
    let donors = bench_patterns();
    let topologies: Vec<_> = (0..8).map(|s| bench_topology(s, 32)).collect();

    let mut group = c.benchmark_group("table2/solving");
    group.sample_size(20);
    for (label, existing) in [("Solving-R", false), ("Solving-E", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &existing, |b, &e| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let mut i = 0usize;
            b.iter(|| {
                let topo = &topologies[i % topologies.len()];
                i += 1;
                let init = if e {
                    let donor = &donors[i % donors.len()];
                    Init::Existing(donor.dx(), donor.dy())
                } else {
                    Init::Random
                };
                solver.solve(topo, init, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sampling, solving);
criterion_main!(benches);
