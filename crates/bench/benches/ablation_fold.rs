//! DESIGN.md ablation D1: the Deep Squish claim (paper §III-B).
//!
//! Diffusion cost should be dominated by spatial input size, not channel
//! count. At fixed information content (a 32x32 binary topology matrix),
//! fold factors C ∈ {1, 4, 16} give network inputs of (1, 32, 32),
//! (4, 16, 16) and (16, 8, 8); the U-Net step time should drop sharply as
//! C grows — the reason DiffPattern folds before diffusing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_nn::{Tensor, UNet, UNetConfig};
use rand::SeedableRng;

fn unet_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fold/unet_forward");
    group.sample_size(10);
    for (channels, side) in [(1usize, 32usize), (4, 16), (16, 8)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let config = UNetConfig {
            in_channels: channels,
            out_channels: 2 * channels,
            base_channels: 16,
            channel_mults: vec![1, 2],
            num_res_blocks: 1,
            attn_resolutions: vec![1],
            time_dim: 16,
            groups: 4,
            dropout: 0.0,
        };
        let mut net = UNet::new(&config, &mut rng);
        let x = Tensor::randn(&[1, channels, side, side], 1.0, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("C{channels}_{side}x{side}")),
            &(),
            |b, ()| b.iter(|| net.forward(&x, &[10])),
        );
    }
    group.finish();
}

fn fold_unfold(c: &mut Criterion) {
    // The fold itself must be cheap relative to one network step.
    use dp_geometry::BitGrid;
    use dp_squish::DeepSquishTensor;
    let mut grid = BitGrid::new(32, 32).unwrap();
    grid.fill_cells(4, 4, 20, 28);
    let mut group = c.benchmark_group("ablation_fold/fold_unfold");
    for channels in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(channels),
            &channels,
            |b, &ch| {
                b.iter(|| {
                    let t = DeepSquishTensor::fold(&grid, ch).unwrap();
                    t.unfold()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, unet_step, fold_unfold);
criterion_main!(benches);
