//! Ingest-path microbenchmarks for the durable pattern library
//! (`dp_library`): the PR 7 acceptance benchmark, written to
//! `BENCH_pr7.json` by the CI quick-bench.
//!
//! Two rows, both per *batch of 64 patterns* against a live on-disk
//! store (real `pwrite`s, real CRC framing):
//!
//! * `fresh_batch64` — 64 never-seen patterns: topology hash, variant
//!   hash, frame encode, append, index + diversity update. The store
//!   grows across iterations, so a median that drifts with store size
//!   would expose super-constant ingest cost.
//! * `dedup_hit_batch64` — 64 byte-identical resubmissions of a stored
//!   pattern: hash probe plus the read-back verification that keeps
//!   dedup honest against hash collisions, no write amplification.

use criterion::{criterion_group, criterion_main, Criterion};
use diffpattern::library::{LibraryConfig, LibraryWriter};
use dp_geometry::BitGrid;
use dp_squish::SquishPattern;
use std::path::PathBuf;

const BATCH: usize = 64;

/// Deterministic unique patterns: an 8x8 topology from mixed seed bits,
/// with the seed folded into the Δ vectors so every call yields a new
/// byte-level variant even when a topology repeats.
fn pattern(seed: u64) -> SquishPattern {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut cells = Vec::with_capacity(64);
    for _ in 0..64 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        cells.push(state >> 62 > 1);
    }
    let grid = BitGrid::from_cells(8, 8, cells).unwrap();
    let dx: Vec<i64> = (0..8)
        .map(|i| 16 + ((seed >> (i * 4)) & 0xF) as i64)
        .collect();
    let dy: Vec<i64> = (0..8)
        .map(|i| 24 + ((seed >> (i * 3)) & 0x7) as i64)
        .collect();
    SquishPattern::new(grid, dx, dy).unwrap()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dp-bench-library-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn library_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("library_ingest");
    group.sample_size(10);

    let dir = scratch_dir("fresh");
    let mut writer = LibraryWriter::open(&dir, LibraryConfig::default()).unwrap();
    let mut next_seed = 0u64;
    group.bench_function("fresh_batch64", |b| {
        b.iter(|| {
            let mut accepted = 0usize;
            for _ in 0..BATCH {
                let p = pattern(next_seed);
                next_seed += 1;
                writer
                    .ingest_arrival("diffpattern", "bench", &p, true)
                    .unwrap();
                accepted += 1;
            }
            accepted
        })
    });
    writer.checkpoint().unwrap();
    drop(writer);
    let _ = std::fs::remove_dir_all(&dir);

    let dir = scratch_dir("dedup");
    let mut writer = LibraryWriter::open(&dir, LibraryConfig::default()).unwrap();
    let hit = pattern(u64::MAX);
    writer
        .ingest_arrival("diffpattern", "bench", &hit, true)
        .unwrap();
    group.bench_function("dedup_hit_batch64", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                writer
                    .ingest_arrival("diffpattern", "bench", &hit, true)
                    .unwrap();
            }
            BATCH
        })
    });
    drop(writer);
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

criterion_group!(benches, library_ingest);
criterion_main!(benches);
