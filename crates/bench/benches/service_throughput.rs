//! Serving throughput: the PR 5 acceptance benchmark. Eight concurrent
//! `count = 2` requests through one [`PatternService`] versus eight
//! sequential `GenerationSession::generate(2)` calls — the same 16 items
//! with the same seeds either way (both paths are bit-identical by the
//! determinism contract), but the service fills each denoising
//! micro-batch with lanes from *several* requests, so the U-Net runs at
//! batch ≈ 8 instead of batch 2.
//!
//! Two service rows pin the two mechanisms separately:
//!
//! * `service_8x_count2_concurrent` uses **one** worker, so the only
//!   difference from the sequential row is cross-request batch filling
//!   (B ≈ 8 vs B = 2 per U-Net call). On a single-CPU container this is
//!   bounded by the per-item batch scaling of the network itself
//!   (`nn_micro`'s batched rows: a few percent — elementwise work is
//!   linear in B), so the measured gain here tracks that ceiling.
//! * `service_8x_count2_pool` uses one worker per CPU. A sequential
//!   `generate(2)` call structurally caps at one worker — `count = 2`
//!   fits in a single micro-batch chunk, so extra session threads have
//!   nothing to claim — while the service pool spreads the 16 queued
//!   lanes across every core. On ≥ 2 cores this is where the ≥ 1.2x
//!   per-item acceptance floor comes from; on a 1-CPU container the row
//!   collapses to the single-worker one.

use criterion::{criterion_group, criterion_main, Criterion};
use diffpattern::{GenerationSession, PatternService, RequestSpec, TrainedModel};
use dp_diffusion::{NeuralDenoiser, NoiseSchedule};
use dp_nn::{UNet, UNetConfig};
use rand::SeedableRng;
use std::sync::Arc;

const REQUESTS: usize = 8;
const COUNT_PER_REQUEST: usize = 2;

/// The `table2` bench geometry: C16 fold on 8x8 features, K = 30. The
/// sampling cost is architecture-bound, not weight-bound, so an untrained
/// U-Net measures the same per-topology time as a trained one.
fn model() -> Arc<TrainedModel> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let config = UNetConfig {
        in_channels: 16,
        out_channels: 32,
        base_channels: 8,
        channel_mults: vec![1, 2],
        num_res_blocks: 1,
        attn_resolutions: vec![1],
        time_dim: 16,
        groups: 4,
        dropout: 0.0,
    };
    let denoiser = NeuralDenoiser::new(UNet::new(&config, &mut rng));
    let schedule = NoiseSchedule::linear(30, 0.01, 0.5).unwrap();
    Arc::new(TrainedModel::new(denoiser, schedule, 8).unwrap())
}

fn spec(seed: u64) -> RequestSpec {
    RequestSpec::new(COUNT_PER_REQUEST).seed(seed)
}

fn service_throughput(c: &mut Criterion) {
    let model = model();
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);

    // Baseline: the 8 requests served one after another, each batching
    // only within itself (B = 2 denoising lanes per U-Net call).
    group.bench_function("sequential_8x_session_generate2", |b| {
        b.iter(|| {
            let mut produced = 0usize;
            for i in 0..REQUESTS as u64 {
                let session = GenerationSession::builder(&model)
                    .threads(1)
                    .micro_batch(8)
                    .seed(1000 + i)
                    .build()
                    .unwrap();
                produced += session.generate(COUNT_PER_REQUEST).unwrap().items.len();
            }
            produced
        })
    });

    // The serving engine: all 8 requests admitted up front, micro-batches
    // filled across requests (B ≈ 8 lanes per U-Net call). Output is
    // bit-identical to the sequential row seed for seed.
    let run_service = |b: &mut criterion::Bencher, threads: usize| {
        let service = PatternService::builder(Arc::clone(&model))
            .threads(threads)
            .micro_batch(8)
            .build()
            .unwrap();
        b.iter(|| {
            let handles: Vec<_> = (0..REQUESTS as u64)
                .map(|i| service.submit(&spec(1000 + i)).unwrap())
                .collect();
            let mut produced = 0usize;
            for handle in handles {
                produced += handle.wait().unwrap().items.len();
            }
            produced
        })
    };
    group.bench_function("service_8x_count2_concurrent", |b| run_service(b, 1));
    group.bench_function("service_8x_count2_pool", |b| run_service(b, 0));
    group.finish();
}

criterion_group!(benches, service_throughput);
criterion_main!(benches);
