//! DESIGN.md ablation D2: the noise schedule (paper Eq. 7–8).
//!
//! Measures (a) reverse-sampling cost as a function of the step count K —
//! the knob trading sample quality for time — and (b) prints the mixing
//! step (first k with |b̄_k − 0.5| < tol) of the paper's linear schedule
//! versus constant schedules, demonstrating why the linear ramp is used.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_diffusion::{NoiseSchedule, Sampler, UniformDenoiser};
use rand::SeedableRng;

fn reverse_cost_vs_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_schedule/reverse_cost");
    group.sample_size(10);
    for steps in [10usize, 50, 100] {
        let sampler = Sampler::new(NoiseSchedule::linear(steps, 0.01, 0.5).unwrap());
        let mut d = UniformDenoiser::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, _| {
            b.iter(|| sampler.sample_one(&mut d, 4, 16, &mut rng))
        });
    }
    group.finish();
}

fn mixing_report(_c: &mut Criterion) {
    // Not a timing measurement: a convergence report printed once per
    // bench run, recorded in EXPERIMENTS.md.
    println!("\n=== schedule mixing steps (|cumulative_flip - 0.5| < 1e-6) ===");
    let linear = NoiseSchedule::linear(1000, 0.01, 0.5).unwrap();
    println!(
        "linear 0.01->0.5 (paper): mixes at k = {:?}",
        linear.mixing_step(1e-6)
    );
    for beta in [0.01f64, 0.05, 0.2] {
        let constant = NoiseSchedule::constant(1000, beta).unwrap();
        println!(
            "constant beta = {beta}: mixes at k = {:?}",
            constant.mixing_step(1e-6)
        );
    }
}

criterion_group!(benches, reverse_cost_vs_steps, mixing_report);
criterion_main!(benches);
