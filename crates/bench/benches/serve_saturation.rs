//! Network serving overhead and saturation: the PR 6 acceptance
//! benchmark. Three rows around one fixed workload (requests of
//! `count = 2` against the `table2` bench geometry):
//!
//! * `inprocess_4x_count2` — four requests through
//!   [`PatternService::generate`] directly: the serving floor, no
//!   sockets, no JSON.
//! * `wire_1client_4x_count2` — the same four requests sequentially
//!   over one keep-alive `dpserve` connection. The delta against the
//!   in-process row is the whole wire stack (HTTP framing, JSON codec,
//!   chunked streaming) — it should be small against generation cost.
//! * `wire_4clients_concurrent` — the four requests issued by four
//!   concurrent client threads. The engine fills its micro-batches
//!   across the connections, so this row tracks the in-process
//!   concurrent figure, not 4x the sequential one.
//!
//! With `DP_BENCH_JSON` set, medians land in the shared medians file
//! (the CI quick-bench writes `BENCH_pr6.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use diffpattern::{PatternService, RequestSpec, TrainedModel};
use dp_diffusion::{NeuralDenoiser, NoiseSchedule};
use dp_nn::{UNet, UNetConfig};
use dp_serve::{serve, Client, ServeConfig};
use rand::SeedableRng;
use std::sync::Arc;

const REQUESTS: usize = 4;
const COUNT_PER_REQUEST: usize = 2;

/// The `table2` bench geometry: C16 fold on 8x8 features, K = 30 (cost
/// is architecture-bound, so an untrained U-Net measures the same
/// per-topology time as a trained one).
fn model() -> Arc<TrainedModel> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let config = UNetConfig {
        in_channels: 16,
        out_channels: 32,
        base_channels: 8,
        channel_mults: vec![1, 2],
        num_res_blocks: 1,
        attn_resolutions: vec![1],
        time_dim: 16,
        groups: 4,
        dropout: 0.0,
    };
    let denoiser = NeuralDenoiser::new(UNet::new(&config, &mut rng));
    let schedule = NoiseSchedule::linear(30, 0.01, 0.5).unwrap();
    Arc::new(TrainedModel::new(denoiser, schedule, 8).unwrap())
}

fn spec(seed: u64) -> RequestSpec {
    RequestSpec::new(COUNT_PER_REQUEST).seed(seed)
}

fn serve_saturation(c: &mut Criterion) {
    let model = model();
    let service = PatternService::builder(Arc::clone(&model))
        .micro_batch(8)
        .build()
        .unwrap();
    let server = serve(service.clone(), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.addr();

    let mut group = c.benchmark_group("serve_saturation");
    group.sample_size(10);

    group.bench_function("inprocess_4x_count2", |b| {
        b.iter(|| {
            let mut produced = 0usize;
            for i in 0..REQUESTS as u64 {
                produced += service.generate(&spec(2000 + i)).unwrap().items.len();
            }
            produced
        })
    });

    group.bench_function("wire_1client_4x_count2", |b| {
        let mut client = Client::connect(addr).unwrap();
        b.iter(|| {
            let mut produced = 0usize;
            for i in 0..REQUESTS as u64 {
                produced += client.generate(&spec(2000 + i)).unwrap().items.len();
            }
            produced
        })
    });

    group.bench_function("wire_4clients_concurrent", |b| {
        b.iter(|| {
            let threads: Vec<_> = (0..REQUESTS as u64)
                .map(|i| {
                    std::thread::spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        client.generate(&spec(2000 + i)).unwrap().items.len()
                    })
                })
                .collect();
            threads
                .into_iter()
                .map(|t| t.join().unwrap())
                .sum::<usize>()
        })
    });
    group.finish();
    drop(server);
}

criterion_group!(benches, serve_saturation);
criterion_main!(benches);
