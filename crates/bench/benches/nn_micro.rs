//! Layer-level microbenchmarks for the `dp_nn` inference engine, so GEMM /
//! conv / attention regressions are visible independently of the
//! end-to-end paper tables.
//!
//! The GEMM shapes are the actual products the C4 16x16 U-Net issues
//! (`(m, k, n)` = weight rows, im2col depth, spatial positions): the stem,
//! a level-0 feature conv, a level-1 feature conv, the widest decoder
//! conv, and an attention score product. Layer benches run prepacked with
//! a warm workspace — the steady-state configuration of the sampling hot
//! loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_diffusion::{
    categorical_draw_in_place, posterior_same_prob, reverse_update_in_place, NoiseSchedule,
};
use dp_nn::{
    matmul, silu_in_place, softmax_rows_in_place, upsample_nearest2_ws, Conv2d, GroupNorm, Linear,
    SelfAttention2d, Tensor, UNet, UNetConfig, Workspace,
};
use rand::SeedableRng;

fn gemm(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("nn_micro/gemm");
    group.sample_size(10);
    for (label, m, k, n) in [
        ("stem_16x36x256", 16usize, 36usize, 256usize),
        ("feature_16x144x256", 16, 144, 256),
        ("level1_32x288x64", 32, 288, 64),
        ("decoder_16x432x256", 16, 432, 256),
        ("attn_scores_64x32x64", 64, 32, 64),
    ] {
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |bch, ()| {
            bch.iter(|| matmul(&a, &b))
        });
    }
    group.finish();
}

fn conv_infer(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut ws = Workspace::new();
    let mut group = c.benchmark_group("nn_micro/conv_infer");
    group.sample_size(10);
    for (label, ic, oc, k, stride, pad, side) in [
        (
            "feature_3x3_16ch_16x16",
            16usize,
            16usize,
            3usize,
            1usize,
            1usize,
            16usize,
        ),
        ("down_3x3_s2_16ch_16x16", 16, 16, 3, 2, 1, 16),
        ("proj_1x1_32ch_8x8", 32, 32, 1, 1, 0, 8),
    ] {
        let mut conv = Conv2d::new(ic, oc, k, stride, pad, &mut rng);
        conv.prepack();
        let x = Tensor::randn(&[1, ic, side, side], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |bch, ()| {
            bch.iter(|| {
                let y = conv.infer(&x, &mut ws);
                ws.recycle(y);
            })
        });
    }
    group.finish();
}

fn attention_infer(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut ws = Workspace::new();
    let mut attn = SelfAttention2d::new(32, 4, &mut rng);
    attn.prepack();
    let x = Tensor::randn(&[1, 32, 8, 8], 1.0, &mut rng);
    let mut group = c.benchmark_group("nn_micro/attention_infer");
    group.sample_size(10);
    group.bench_function("c32_8x8", |bch| {
        bch.iter(|| {
            let y = attn.infer(&x, &mut ws);
            ws.recycle(y);
        })
    });
    group.finish();
}

fn layers(c: &mut Criterion) {
    // Per-layer accounting for the non-GEMM layers of the C4 16x16
    // U-Net, at the exact shapes its forward pass issues. Together with
    // `gemm`/`conv_infer`/`attention_infer` this splits a
    // `unet_infer` regression into named layer budgets instead of one
    // opaque end-to-end number.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut ws = Workspace::new();
    let mut group = c.benchmark_group("nn_micro/layers");
    group.sample_size(10);

    // GroupNorm at the level-0 (16ch 16x16) and level-1 (32ch 8x8)
    // feature maps.
    for (label, channels, side) in [
        ("groupnorm_16ch_16x16", 16usize, 16usize),
        ("groupnorm_32ch_8x8", 32, 8),
    ] {
        let norm = GroupNorm::new(4, channels);
        let x = Tensor::randn(&[1, channels, side, side], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |bch, ()| {
            bch.iter(|| {
                let y = norm.infer(&x, &mut ws);
                ws.recycle(y);
            })
        });
    }

    // SiLU over the widest activation (decoder concat, 32ch 16x16).
    // Element-wise with value-independent cost, so re-applying in place
    // measures the same work as a fresh tensor without realloc noise.
    let mut silu_x = Tensor::randn(&[1, 32, 16, 16], 1.0, &mut rng);
    group.bench_function("silu_32ch_16x16", |bch| {
        bch.iter(|| silu_in_place(&mut silu_x))
    });

    // Attention softmax at the 8x8 map: 64 rows (head-major positions)
    // of 64 logits. Softmax output is a valid input, so in-place
    // re-application is steady-state.
    let mut softmax_rows = vec![0.5f32; 64 * 64];
    group.bench_function("softmax_rows_64x64", |bch| {
        bch.iter(|| softmax_rows_in_place(&mut softmax_rows, 64))
    });

    // The time-embedding MLP layers (time_dim 16).
    let linear = Linear::new(16, 64, &mut rng);
    let t = Tensor::randn(&[1, 16], 1.0, &mut rng);
    group.bench_function("linear_time_16to64", |bch| {
        bch.iter(|| {
            let y = linear.infer(&t, &mut ws);
            ws.recycle(y);
        })
    });

    // Decoder upsample from the 8x8 bottleneck back to 16x16.
    let up_in = Tensor::randn(&[1, 32, 8, 8], 1.0, &mut rng);
    group.bench_function("upsample2_32ch_8to16", |bch| {
        bch.iter(|| {
            let y = upsample_nearest2_ws(&up_in, &mut ws);
            ws.recycle(y);
        })
    });

    group.finish();
}

fn unet_infer(c: &mut Criterion) {
    // The same C4 16x16 instance as `ablation_fold/unet_forward`, but on
    // the packed + workspace inference path the sampler actually runs.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let config = UNetConfig {
        in_channels: 4,
        out_channels: 8,
        base_channels: 16,
        channel_mults: vec![1, 2],
        num_res_blocks: 1,
        attn_resolutions: vec![1],
        time_dim: 16,
        groups: 4,
        dropout: 0.0,
    };
    let mut net = UNet::new(&config, &mut rng);
    net.prepack();
    let x = Tensor::randn(&[1, 4, 16, 16], 1.0, &mut rng);
    let mut ws = Workspace::new();
    let mut group = c.benchmark_group("nn_micro/unet_infer");
    group.sample_size(10);
    group.bench_function("C4_16x16_prepacked_warm", |bch| {
        bch.iter(|| {
            let y = net.infer(&x, &[10], &mut ws);
            ws.recycle(y);
        })
    });
    group.finish();
}

fn unet_infer_batched(c: &mut Criterion) {
    // The micro-batched sampler's configuration: the same C4 16x16
    // prepacked instance evaluated on B lock-step lanes per call. Reported
    // medians are per *call*; divide by B for the per-item cost the
    // `topology_per_sample` anchor feels (the B=1 row doubles as the
    // single-lane baseline).
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let config = UNetConfig {
        in_channels: 4,
        out_channels: 8,
        base_channels: 16,
        channel_mults: vec![1, 2],
        num_res_blocks: 1,
        attn_resolutions: vec![1],
        time_dim: 16,
        groups: 4,
        dropout: 0.0,
    };
    let mut net = UNet::new(&config, &mut rng);
    net.prepack();
    let mut group = c.benchmark_group("nn_micro/unet_infer_batched");
    group.sample_size(10);
    for b in [1usize, 4, 8] {
        let x = Tensor::randn(&[b, 4, 16, 16], 1.0, &mut rng);
        let steps = vec![10usize; b];
        let mut ws = Workspace::new();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("C4_16x16_B{b}")),
            &(),
            |bch, ()| {
                bch.iter(|| {
                    let y = net.infer(&x, &steps, &mut ws);
                    ws.recycle(y);
                })
            },
        );
    }
    group.finish();
}

fn sampler(c: &mut Criterion) {
    // The per-pixel tail of every denoising step, at the C4 16x16
    // topology size (4 x 16 x 16 = 1024 bits per lane). `posterior_step`
    // is the Eq. 12 mixing + draw the reverse chain runs K times per
    // sample; `categorical_draw` is the bare Bernoulli draw it bottoms
    // out in (and the chain's k = 1 final step).
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let schedule = NoiseSchedule::linear(1000, 0.01, 0.5).unwrap();
    let n = 4 * 16 * 16;
    let p1: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
    let mut bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    let mut group = c.benchmark_group("nn_micro/sampler");
    group.sample_size(10);
    group.bench_function("categorical_draw", |bch| {
        bch.iter(|| categorical_draw_in_place(&mut bits, &p1, &mut rng))
    });
    let k = 500;
    let eq = posterior_same_prob(&schedule, k, true);
    let ne = posterior_same_prob(&schedule, k, false);
    group.bench_function("posterior_step", |bch| {
        bch.iter(|| reverse_update_in_place(eq, ne, &mut bits, &p1, &mut rng))
    });
    group.finish();
}

criterion_group!(
    benches,
    gemm,
    conv_infer,
    attention_infer,
    layers,
    unet_infer,
    unet_infer_batched,
    sampler
);
criterion_main!(benches);
