//! Eq. 14 solver scaling: solve time versus topology matrix side, and the
//! cost of extracting the constraint system (context for DESIGN.md D3 and
//! for Table II's absolute solving numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_bench::bench_topology;
use dp_drc::{ConstraintSet, DesignRules};
use dp_legalize::{Init, Solver, SolverConfig};
use rand::SeedableRng;

fn solve_vs_side(c: &mut Criterion) {
    let rules = DesignRules::standard();
    let solver = Solver::new(rules, SolverConfig::for_window(2048, 2048));
    let mut group = c.benchmark_group("solver/solve_vs_side");
    group.sample_size(20);
    for side in [8usize, 16, 32] {
        let topo = bench_topology(3, side);
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, _| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| solver.solve(&topo, Init::Random, &mut rng))
        });
    }
    group.finish();
}

fn constraint_extraction(c: &mut Criterion) {
    let rules = DesignRules::standard();
    let mut group = c.benchmark_group("solver/constraint_extraction");
    for side in [16usize, 32, 64] {
        let topo = bench_topology(4, side);
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, _| {
            b.iter(|| ConstraintSet::extract(&topo, &rules))
        });
    }
    group.finish();
}

fn solve_many_variants(c: &mut Criterion) {
    // DiffPattern-L cost: distinct solutions per topology.
    let rules = DesignRules::standard();
    let solver = Solver::new(rules, SolverConfig::for_window(2048, 2048));
    let topo = bench_topology(5, 16);
    let mut group = c.benchmark_group("solver/solve_many");
    group.sample_size(10);
    for count in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(count), &count, |b, &n| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2);
            b.iter(|| solver.solve_many(&topo, n, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    solve_vs_side,
    constraint_extraction,
    solve_many_variants
);
criterion_main!(benches);
