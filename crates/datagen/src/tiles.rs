use dp_geometry::{Coord, Layout, Rect};

/// Splits a full-chip map into `tile x tile` nm² clips, dropping empty
/// clips — the dataset construction of paper §IV-A (2048x2048 nm² there).
///
/// Partial tiles at the right/top edge of the map are discarded, matching
/// the convention of splitting a map whose extent is a multiple of the tile
/// size (and avoiding artificially truncated patterns in the library).
///
/// # Panics
///
/// Panics when `tile <= 0`.
pub fn split_into_tiles(map: &Layout, tile: Coord) -> Vec<Layout> {
    assert!(tile > 0, "tile size must be positive");
    let window = map.window();
    let nx = (window.width() / tile) as usize;
    let ny = (window.height() / tile) as usize;
    let mut out = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let x0 = window.x0() + i as Coord * tile;
            let y0 = window.y0() + j as Coord * tile;
            let clip = Rect::new(x0, y0, x0 + tile, y0 + tile).expect("tile > 0");
            let sub = map.clip(clip);
            if !sub.is_empty() {
                out.push(sub.normalized());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_into_expected_count() {
        let mut map = Layout::new(Rect::new(0, 0, 400, 200).unwrap());
        // One shape per 100x100 tile in the bottom row.
        for i in 0..4 {
            map.push(Rect::new(i * 100 + 10, 10, i * 100 + 60, 60).unwrap());
        }
        let tiles = split_into_tiles(&map, 100);
        assert_eq!(tiles.len(), 4, "empty top-row tiles are dropped");
        for t in &tiles {
            assert_eq!(t.window(), Rect::new(0, 0, 100, 100).unwrap());
            assert_eq!(t.len(), 1);
        }
    }

    #[test]
    fn shapes_spanning_tiles_are_cut() {
        let mut map = Layout::new(Rect::new(0, 0, 200, 100).unwrap());
        map.push(Rect::new(50, 10, 150, 50).unwrap());
        let tiles = split_into_tiles(&map, 100);
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].rects()[0], Rect::new(50, 10, 100, 50).unwrap());
        assert_eq!(tiles[1].rects()[0], Rect::new(0, 10, 50, 50).unwrap());
    }

    #[test]
    fn partial_edge_tiles_are_discarded() {
        let mut map = Layout::new(Rect::new(0, 0, 250, 100).unwrap());
        map.push(Rect::new(210, 10, 240, 50).unwrap()); // only in partial tile
        let tiles = split_into_tiles(&map, 100);
        assert!(tiles.is_empty());
    }

    #[test]
    fn empty_map_yields_no_tiles() {
        let map = Layout::new(Rect::new(0, 0, 400, 400).unwrap());
        assert!(split_into_tiles(&map, 100).is_empty());
    }
}
