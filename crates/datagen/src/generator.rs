use dp_geometry::{Coord, Layout, Rect};
use rand::Rng;

/// Configuration of the synthetic metal-layer generator.
///
/// Defaults are chosen so every interior tile is clean under
/// [`dp_drc::DesignRules::standard`]: track pitch leaves at least
/// `space_min` between the widest wires, segment gaps are at least
/// `space_min`, and segment dimensions keep polygon areas inside the legal
/// range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Map width in nm (paper: 400 µm; default scaled down).
    pub width: Coord,
    /// Map height in nm (paper: 160 µm).
    pub height: Coord,
    /// Routing track pitch in nm.
    pub pitch: Coord,
    /// Minimum wire width.
    pub wire_min: Coord,
    /// Maximum wire width (must stay below `pitch - space`).
    pub wire_max: Coord,
    /// Minimum gap between segments in a track.
    pub space: Coord,
    /// Minimum segment length.
    pub seg_min: Coord,
    /// Maximum segment length.
    pub seg_max: Coord,
    /// Every n-th track becomes a double-height power rail (0 disables).
    pub rail_every: usize,
    /// Probability that a track position starts a segment rather than a
    /// gap (density knob), in percent.
    pub fill_percent: u32,
}

impl GeneratorConfig {
    /// A small map for unit tests (≈ 4x4 tiles of 2048 nm).
    pub fn small() -> Self {
        GeneratorConfig {
            width: 8 * 2048,
            height: 4 * 2048,
            ..Self::default()
        }
    }

    /// A map sized like a scaled-down version of the paper's 400x160 µm²
    /// layer (1/10 in each dimension): 40x16 µm² = about 20x8 tiles.
    pub fn paper_scaled() -> Self {
        GeneratorConfig {
            width: 40_000,
            height: 16_000,
            ..Self::default()
        }
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            width: 4 * 2048,
            height: 4 * 2048,
            pitch: 256,
            wire_min: 64,
            wire_max: 160,
            space: 70,
            seg_min: 220,
            seg_max: 1600,
            rail_every: 7,
            fill_percent: 62,
        }
    }
}

/// Generates a synthetic single-layer routing map (the ICCAD-2014 layout
/// substitute; see DESIGN.md substitution table).
#[derive(Debug, Clone)]
pub struct LayoutMapGenerator {
    config: GeneratorConfig,
}

impl LayoutMapGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is geometrically inconsistent
    /// (wires wider than the pitch allows, zero sizes, ...).
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(config.width > 0 && config.height > 0, "empty map");
        assert!(config.pitch > 0, "zero pitch");
        assert!(
            config.wire_min > 0 && config.wire_min <= config.wire_max,
            "bad wire width range"
        );
        assert!(
            config.wire_max + config.space <= config.pitch,
            "wires do not fit the pitch with the required spacing"
        );
        assert!(
            config.seg_min > 0 && config.seg_min <= config.seg_max,
            "bad segment length range"
        );
        assert!(config.fill_percent <= 100, "fill percent over 100");
        LayoutMapGenerator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates the full map. Deterministic for a given `rng` state.
    pub fn generate(&self, rng: &mut impl Rng) -> Layout {
        let c = &self.config;
        let window = Rect::new(0, 0, c.width, c.height).expect("validated non-empty");
        let mut layout = Layout::new(window);

        let tracks = (c.height / c.pitch) as usize;
        let mut track = 0usize;
        while track < tracks {
            let y0 = track as Coord * c.pitch;
            let is_rail = c.rail_every > 0 && track % c.rail_every == c.rail_every - 1;
            let (wire_h, advance) = if is_rail && track + 1 < tracks {
                // Double-height power rail spanning two tracks.
                (c.pitch + c.wire_max, 2)
            } else {
                (rng.gen_range(c.wire_min..=c.wire_max), 1)
            };
            self.fill_track(&mut layout, y0, wire_h, rng);
            track += advance;
        }
        layout
    }

    /// Fills one track with alternating segments and gaps.
    fn fill_track(&self, layout: &mut Layout, y0: Coord, wire_h: Coord, rng: &mut impl Rng) {
        let c = &self.config;
        let y1 = (y0 + wire_h).min(c.height);
        if y1 - y0 < c.wire_min {
            // A track clipped by the map boundary would create a sliver
            // below the width rule; skip it.
            return;
        }
        // A stub on top of a wire must keep `space` clearance to the next
        // track above (whose wires start at y0 + k*pitch for some k >= 1;
        // the nearest possible is the next pitch line).
        let next_track_y = y0 + ((y1 - y0) / c.pitch + 1) * c.pitch;
        let stub_room = next_track_y - c.space - y1;
        let mut x = rng.gen_range(0..c.seg_min);
        while x < c.width {
            if rng.gen_range(0u32..100) < c.fill_percent {
                let len = rng.gen_range(c.seg_min..=c.seg_max).min(c.width - x);
                if len >= c.wire_min {
                    layout.push(Rect::new(x, y0, x + len, y1).expect("positive extent"));
                    // Occasional pin stub hanging off the segment, only when
                    // the inter-track gap leaves room for a legal one.
                    if rng.gen_range(0..100) < 12 && len > 3 * c.wire_min && stub_room >= c.wire_min
                    {
                        let stub_w = c.wire_min;
                        let sx = x + rng.gen_range(c.wire_min..len - stub_w - c.wire_min);
                        let stub_h = stub_room.min(wire_h / 2).max(c.wire_min);
                        if y1 + stub_h <= c.height && stub_h <= stub_room {
                            layout.push(
                                Rect::new(sx, y1, sx + stub_w, y1 + stub_h)
                                    .expect("positive extent"),
                            );
                        }
                    }
                    x += len;
                }
            }
            x += c.space + rng.gen_range(0..c.seg_min);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_nonempty_map() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let map = LayoutMapGenerator::new(GeneratorConfig::default()).generate(&mut rng);
        assert!(map.len() > 50, "only {} shapes", map.len());
        assert!(map.shape_area() > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let gen = LayoutMapGenerator::new(GeneratorConfig::default());
        let a = gen.generate(&mut rand::rngs::StdRng::seed_from_u64(7));
        let b = gen.generate(&mut rand::rngs::StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = gen.generate(&mut rand::rngs::StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_stay_inside_window() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let map = LayoutMapGenerator::new(GeneratorConfig::default()).generate(&mut rng);
        for r in map.rects() {
            assert!(map.window().contains_rect(r));
        }
    }

    #[test]
    fn rejects_inconsistent_config() {
        let bad = GeneratorConfig {
            wire_max: 300,
            pitch: 256,
            space: 70,
            ..GeneratorConfig::default()
        };
        assert!(std::panic::catch_unwind(|| LayoutMapGenerator::new(bad)).is_err());
    }

    #[test]
    fn interior_tiles_are_mostly_drc_clean() {
        // The generator's whole point: its tiles exercise the DRC/legalize
        // path as *clean* training data.
        use dp_drc::{check_layout, DesignRules};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let map = LayoutMapGenerator::new(GeneratorConfig::small()).generate(&mut rng);
        let tiles = crate::split_into_tiles(&map, 2048);
        let rules = DesignRules::standard();
        let clean = tiles
            .iter()
            .filter(|t| check_layout(t, &rules).is_clean())
            .count();
        let frac = clean as f64 / tiles.len() as f64;
        assert!(
            frac > 0.95,
            "only {clean}/{} tiles clean ({frac:.2})",
            tiles.len()
        );
    }
}
