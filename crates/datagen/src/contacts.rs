//! Contact/via-layer generator: the second pattern family of a realistic
//! library.
//!
//! Metal routing layers (see [`crate::LayoutMapGenerator`]) are dominated
//! by long wires; contact and via layers are dominated by small square
//! cuts on a regular grid with occasional redundant-via pairs and cut
//! bars. Mixing the two families widens the complexity distribution of the
//! training library (paper Fig. 9's heavy tail) and exercises the area
//! rule family from the *small* side, where routing layers exercise it
//! from the large side.

use dp_geometry::{Coord, Layout, Rect};
use rand::Rng;

/// Configuration of the contact-layer generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContactConfig {
    /// Map width in nm.
    pub width: Coord,
    /// Map height in nm.
    pub height: Coord,
    /// Contact grid pitch in nm (both axes).
    pub pitch: Coord,
    /// Cut side length in nm.
    pub cut: Coord,
    /// Probability (percent) that a grid site holds a cut.
    pub occupancy_percent: u32,
    /// Probability (percent) that an occupied site extends into a
    /// double-cut bar (redundant via).
    pub bar_percent: u32,
}

impl Default for ContactConfig {
    fn default() -> Self {
        ContactConfig {
            width: 4 * 2048,
            height: 4 * 2048,
            pitch: 256,
            cut: 80,
            occupancy_percent: 22,
            bar_percent: 15,
        }
    }
}

impl ContactConfig {
    /// A small map for unit tests.
    pub fn small() -> Self {
        ContactConfig {
            width: 4 * 2048,
            height: 2 * 2048,
            ..Self::default()
        }
    }
}

/// Generates a contact/via layer on a regular grid.
///
/// # Panics
///
/// Panics when the configuration is inconsistent (cut larger than pitch
/// allows, zero sizes, percentages over 100).
pub fn generate_contact_layer(config: ContactConfig, rng: &mut impl Rng) -> Layout {
    assert!(config.width > 0 && config.height > 0, "empty map");
    assert!(config.cut > 0 && config.pitch > 0, "zero geometry");
    assert!(
        2 * config.cut <= config.pitch,
        "cuts would violate spacing at this pitch"
    );
    assert!(
        config.occupancy_percent <= 100 && config.bar_percent <= 100,
        "percentages over 100"
    );
    let window = Rect::new(0, 0, config.width, config.height).expect("validated non-empty");
    let mut layout = Layout::new(window);
    let nx = (config.width / config.pitch) as usize;
    let ny = (config.height / config.pitch) as usize;
    let margin = (config.pitch - config.cut) / 2;
    for gy in 0..ny {
        for gx in 0..nx {
            if rng.gen_range(0u32..100) >= config.occupancy_percent {
                continue;
            }
            let x0 = gx as Coord * config.pitch + margin;
            let y0 = gy as Coord * config.pitch + margin;
            // A bar spans this site and the next along x (when free).
            let make_bar = rng.gen_range(0u32..100) < config.bar_percent && gx + 1 < nx;
            let x1 = if make_bar {
                x0 + config.pitch + config.cut
            } else {
                x0 + config.cut
            };
            layout.push(Rect::new(x0, y0, x1, y0 + config.cut).expect("positive extent"));
        }
    }
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_cuts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let layout = generate_contact_layer(ContactConfig::small(), &mut rng);
        assert!(layout.len() > 20, "only {} cuts", layout.len());
        for r in layout.rects() {
            assert!(layout.window().contains_rect(r));
            // Every shape is a single cut or a double bar.
            assert_eq!(r.height(), 80);
            assert!(r.width() == 80 || r.width() == 256 + 80);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_contact_layer(
            ContactConfig::small(),
            &mut rand::rngs::StdRng::seed_from_u64(3),
        );
        let b = generate_contact_layer(
            ContactConfig::small(),
            &mut rand::rngs::StdRng::seed_from_u64(3),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn tiles_are_drc_clean_under_contact_rules() {
        // Contact layers have their own rule deck: small areas are legal.
        use dp_drc::{check_layout, DesignRules};
        let rules = DesignRules::builder()
            .space_min(60)
            .width_min(60)
            .area_range(4_000, 80_000)
            .build()
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let layout = generate_contact_layer(ContactConfig::small(), &mut rng);
        let tiles = crate::split_into_tiles(&layout, 2048);
        let clean = tiles
            .iter()
            .filter(|t| check_layout(t, &rules).is_clean())
            .count();
        assert_eq!(clean, tiles.len(), "{clean}/{}", tiles.len());
    }

    #[test]
    fn widens_library_complexity_against_routing_layer() {
        use crate::{build_dataset, DatasetConfig, GeneratorConfig, LayoutMapGenerator};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let routing = LayoutMapGenerator::new(GeneratorConfig::small()).generate(&mut rng);
        let contacts = generate_contact_layer(ContactConfig::small(), &mut rng);
        let mut tiles = crate::split_into_tiles(&routing, 2048);
        let routing_only = build_dataset(&tiles, DatasetConfig::default());
        tiles.extend(crate::split_into_tiles(&contacts, 2048));
        let mixed = build_dataset(&tiles, DatasetConfig::default());
        assert!(
            mixed.library().distinct() > routing_only.library().distinct(),
            "mixing families must add complexity classes: {} vs {}",
            mixed.library().distinct(),
            routing_only.library().distinct()
        );
    }

    #[test]
    #[should_panic(expected = "spacing")]
    fn rejects_oversized_cuts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let _ = generate_contact_layer(
            ContactConfig {
                cut: 200,
                pitch: 256,
                ..ContactConfig::default()
            },
            &mut rng,
        );
    }
}
