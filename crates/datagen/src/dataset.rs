use crate::PatternLibrary;
use dp_geometry::Layout;
use dp_squish::{extend_to_side, DeepSquishTensor, SquishError, SquishPattern};

/// Configuration for turning tiles into a training set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetConfig {
    /// Side length of the extended topology matrix (paper: 128, folded to
    /// 16x32x32; the reproduction defaults to 32 folded to 4x16x16).
    pub matrix_side: usize,
    /// Deep-squish channel count `C` (perfect square).
    pub channels: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            matrix_side: 32,
            channels: 4,
        }
    }
}

/// Statistics of dataset construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatasetReport {
    /// Tiles accepted into the dataset.
    pub accepted: usize,
    /// Tiles whose topology exceeded `matrix_side` scan lines.
    pub too_complex: usize,
    /// Tiles that could not be extended on the integer grid.
    pub unsplittable: usize,
}

/// A ready-to-train dataset: folded tensors plus the originating squish
/// patterns (kept for Solving-E initialisation and the Real-Patterns
/// library rows of Table I).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Folded binary topology tensors, one per accepted tile.
    pub tensors: Vec<DeepSquishTensor>,
    /// The originating (un-extended) squish patterns, index-aligned with
    /// `tensors`.
    pub patterns: Vec<SquishPattern>,
    /// The extended (`matrix_side x matrix_side`) squish patterns, index-
    /// aligned with `tensors`. Their Δ vectors match generated topologies
    /// dimension-for-dimension, which is what the paper's Solving-E
    /// initialisation draws from.
    pub extended: Vec<SquishPattern>,
    /// Construction statistics.
    pub report: DatasetReport,
}

impl Dataset {
    /// The Real-Patterns library: complexities of every accepted pattern.
    pub fn library(&self) -> PatternLibrary {
        let mut lib = PatternLibrary::new();
        for p in &self.patterns {
            lib.add_pattern(p);
        }
        lib
    }
}

/// Builds a training set from layout tiles: encode each tile's squish
/// pattern, extend it to `matrix_side`, fold it into a `channels`-deep
/// tensor (paper Fig. 4, left phase). Tiles that do not fit are counted,
/// not silently dropped.
///
/// # Panics
///
/// Panics when `channels` is not a perfect square or `matrix_side` is not
/// divisible by `√channels` (configuration errors, not data errors).
pub fn build_dataset(tiles: &[Layout], config: DatasetConfig) -> Dataset {
    let patch = (config.channels as f64).sqrt() as usize;
    assert_eq!(
        patch * patch,
        config.channels,
        "channels must be a perfect square"
    );
    assert_eq!(
        config.matrix_side % patch,
        0,
        "matrix side must be divisible by the fold patch"
    );

    let mut tensors = Vec::with_capacity(tiles.len());
    let mut patterns = Vec::with_capacity(tiles.len());
    let mut extendeds = Vec::with_capacity(tiles.len());
    let mut report = DatasetReport::default();
    for tile in tiles {
        let pattern = SquishPattern::encode(tile);
        match extend_to_side(&pattern, config.matrix_side) {
            Ok((extended, _)) => {
                let tensor = DeepSquishTensor::fold(extended.topology(), config.channels)
                    .expect("extended matrix matches fold config");
                tensors.push(tensor);
                patterns.push(pattern);
                extendeds.push(extended);
                report.accepted += 1;
            }
            Err(SquishError::TooComplex { .. }) => report.too_complex += 1,
            Err(SquishError::UnsplittableInterval) => report.unsplittable += 1,
            Err(other) => unreachable!("unexpected extension error: {other}"),
        }
    }
    Dataset {
        tensors,
        patterns,
        extended: extendeds,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{split_into_tiles, GeneratorConfig, LayoutMapGenerator};
    use rand::SeedableRng;

    fn tiles() -> Vec<Layout> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let map = LayoutMapGenerator::new(GeneratorConfig::small()).generate(&mut rng);
        split_into_tiles(&map, 2048)
    }

    #[test]
    fn builds_tensors_of_requested_shape() {
        let ds = build_dataset(&tiles(), DatasetConfig::default());
        assert!(ds.report.accepted > 0, "{:?}", ds.report);
        for t in &ds.tensors {
            assert_eq!(t.channels(), 4);
            assert_eq!(t.side(), 16);
        }
        assert_eq!(ds.tensors.len(), ds.patterns.len());
    }

    #[test]
    fn tensors_are_lossless_foldings() {
        let config = DatasetConfig::default();
        let ds = build_dataset(&tiles(), config);
        for (tensor, pattern) in ds.tensors.iter().zip(&ds.patterns) {
            let unfolded = tensor.unfold();
            // The unfolded matrix squishes back to the pattern's core shape.
            let (cx, cy) = dp_squish::complexity_of_grid(&unfolded);
            let (px, py) = dp_squish::complexity_of_grid(pattern.topology());
            assert_eq!((cx, cy), (px, py));
        }
    }

    #[test]
    fn library_has_nontrivial_diversity() {
        let ds = build_dataset(&tiles(), DatasetConfig::default());
        let lib = ds.library();
        assert_eq!(lib.len(), ds.report.accepted);
        assert!(
            lib.diversity() > 2.0,
            "synthetic map too uniform: H = {}",
            lib.diversity()
        );
    }

    #[test]
    fn oversized_tiles_are_counted_not_dropped_silently() {
        let config = DatasetConfig {
            matrix_side: 4,
            channels: 4,
        };
        let ds = build_dataset(&tiles(), config);
        assert!(ds.report.too_complex > 0);
        assert_eq!(
            ds.report.accepted + ds.report.too_complex + ds.report.unsplittable,
            tiles().len()
        );
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn bad_channels_panic() {
        let _ = build_dataset(
            &[],
            DatasetConfig {
                matrix_side: 32,
                channels: 3,
            },
        );
    }
}
