//! Dataset substrate: synthetic layout maps, tile splitting, the pattern
//! library and the diversity metric.
//!
//! The paper obtains its training data by splitting a 400x160 µm² metal
//! layer from the ICCAD-2014 contest into 2048x2048 nm² clips (§IV-A).
//! That proprietary map is not available, so this crate generates a
//! synthetic Manhattan routing-style layer with the same statistical
//! character — tracks of varying wire width, heavy-tailed segment lengths,
//! power rails, pin stubs — and splits it into the same tiles
//! (see DESIGN.md, substitution table). The downstream pipeline never
//! inspects provenance: only squish topologies and Δ vectors flow onward.
//!
//! The crate also owns the evaluation metrics of §II-C:
//!
//! * [`PatternLibrary`] — a multiset of pattern complexities `(c_x, c_y)`,
//! * [`PatternLibrary::diversity`] — the Shannon entropy `H` of the
//!   complexity distribution (paper Definition 1, log base 2),
//! * [`PatternLibrary::histogram`] — the joint histogram behind the
//!   paper's Fig. 9 heat maps.
//!
//! # Example
//!
//! ```
//! use dp_datagen::{GeneratorConfig, LayoutMapGenerator, split_into_tiles};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let config = GeneratorConfig::small();
//! let map = LayoutMapGenerator::new(config).generate(&mut rng);
//! let tiles = split_into_tiles(&map, 2048);
//! assert!(!tiles.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod contacts;
mod dataset;
mod generator;
mod library;
mod tiles;

pub use contacts::{generate_contact_layer, ContactConfig};
pub use dataset::{build_dataset, Dataset, DatasetConfig, DatasetReport};
pub use generator::{GeneratorConfig, LayoutMapGenerator};
pub use library::PatternLibrary;
pub use tiles::split_into_tiles;

pub use dp_geometry::{Layout, Rect};
