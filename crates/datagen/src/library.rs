use std::collections::BTreeMap;

use dp_geometry::BitGrid;
use dp_squish::{complexity_of_grid, SquishPattern};

/// A pattern library viewed as a multiset of complexities `(c_x, c_y)` —
/// the statistic the paper's diversity metric (Definition 1) and Fig. 9
/// heat maps are computed from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternLibrary {
    counts: BTreeMap<(usize, usize), usize>,
    total: usize,
}

impl PatternLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one pattern by its complexity pair.
    pub fn add_complexity(&mut self, cx: usize, cy: usize) {
        *self.counts.entry((cx, cy)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records a squish pattern (complexity = topology shape).
    pub fn add_pattern(&mut self, pattern: &SquishPattern) {
        let (cx, cy) = pattern.complexity();
        self.add_complexity(cx, cy);
    }

    /// Records a raw topology matrix, squishing it to its canonical core
    /// first (generated topologies are padded to a fixed side).
    pub fn add_topology(&mut self, topology: &BitGrid) {
        let (cx, cy) = complexity_of_grid(topology);
        self.add_complexity(cx, cy);
    }

    /// Number of patterns recorded.
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` when no patterns are recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct complexity pairs.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The diversity `H` (paper Eq. 4): Shannon entropy, in bits, of the
    /// complexity distribution. An empty library has diversity zero.
    pub fn diversity(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        -self
            .counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// The joint complexity histogram (Fig. 9): `((c_x, c_y), count)` in
    /// ascending order.
    pub fn histogram(&self) -> impl Iterator<Item = ((usize, usize), usize)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another library into this one.
    pub fn merge(&mut self, other: &PatternLibrary) {
        for (&key, &count) in &other.counts {
            *self.counts.entry(key).or_insert(0) += count;
            self.total += count;
        }
    }
}

impl Extend<(usize, usize)> for PatternLibrary {
    fn extend<T: IntoIterator<Item = (usize, usize)>>(&mut self, iter: T) {
        for (cx, cy) in iter {
            self.add_complexity(cx, cy);
        }
    }
}

impl FromIterator<(usize, usize)> for PatternLibrary {
    fn from_iter<T: IntoIterator<Item = (usize, usize)>>(iter: T) -> Self {
        let mut lib = PatternLibrary::new();
        lib.extend(iter);
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_library_has_zero_diversity() {
        let lib = PatternLibrary::new();
        assert_eq!(lib.diversity(), 0.0);
        assert!(lib.is_empty());
    }

    #[test]
    fn single_complexity_has_zero_entropy() {
        let lib: PatternLibrary = std::iter::repeat_n((3, 4), 100).collect();
        assert_eq!(lib.len(), 100);
        assert_eq!(lib.distinct(), 1);
        assert!(lib.diversity().abs() < 1e-12);
    }

    #[test]
    fn uniform_distribution_maximises_entropy() {
        // 16 equally likely pairs -> H = log2(16) = 4 bits.
        let mut lib = PatternLibrary::new();
        for cx in 0..4 {
            for cy in 0..4 {
                for _ in 0..10 {
                    lib.add_complexity(cx, cy);
                }
            }
        }
        assert!((lib.diversity() - 4.0).abs() < 1e-9);

        // Skewing the same support lowers H.
        let mut skewed = PatternLibrary::new();
        for cx in 0..4 {
            for cy in 0..4 {
                let n = if (cx, cy) == (0, 0) { 100 } else { 1 };
                for _ in 0..n {
                    skewed.add_complexity(cx, cy);
                }
            }
        }
        assert!(skewed.diversity() < lib.diversity());
    }

    #[test]
    fn add_topology_uses_canonical_core() {
        let mut lib = PatternLibrary::new();
        // A padded topology with duplicate rows/columns must count as its
        // squished core.
        let padded = BitGrid::from_ascii(
            "..##
             ..##
             .#..
             .#..",
        )
        .unwrap();
        lib.add_topology(&padded);
        let hist: Vec<_> = lib.histogram().collect();
        assert_eq!(hist, vec![((3, 2), 1)]);
    }

    #[test]
    fn merge_accumulates() {
        let a: PatternLibrary = vec![(1, 1), (2, 2)].into_iter().collect();
        let mut b: PatternLibrary = vec![(2, 2)].into_iter().collect();
        b.merge(&a);
        assert_eq!(b.len(), 3);
        let hist: Vec<_> = b.histogram().collect();
        assert_eq!(hist, vec![((1, 1), 1), ((2, 2), 2)]);
    }

    #[test]
    fn diversity_matches_hand_computation() {
        // p = [0.5, 0.25, 0.25] -> H = 1.5 bits.
        let mut lib = PatternLibrary::new();
        lib.add_complexity(1, 1);
        lib.add_complexity(1, 1);
        lib.add_complexity(2, 1);
        lib.add_complexity(3, 1);
        assert!((lib.diversity() - 1.5).abs() < 1e-12);
    }
}
