use crate::{Coord, GeometryError, Point};
use std::fmt;

/// An axis-aligned rectangle with strictly positive extent.
///
/// The rectangle covers the half-open region `[x0, x1) x [y0, y1)` in
/// nanometre coordinates; two rectangles that share only an edge therefore
/// do not overlap but do *abut*.
///
/// ```
/// use dp_geometry::Rect;
/// # fn main() -> Result<(), dp_geometry::GeometryError> {
/// let r = Rect::new(0, 0, 30, 20)?;
/// assert_eq!(r.width(), 30);
/// assert_eq!(r.height(), 20);
/// assert_eq!(r.area(), 600);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    x0: Coord,
    y0: Coord,
    x1: Coord,
    y1: Coord,
}

impl Rect {
    /// Creates a rectangle spanning `[x0, x1) x [y0, y1)`.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyRect`] when `x1 <= x0` or `y1 <= y0`.
    pub fn new(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Result<Self, GeometryError> {
        if x1 <= x0 || y1 <= y0 {
            return Err(GeometryError::EmptyRect { x0, y0, x1, y1 });
        }
        Ok(Rect { x0, y0, x1, y1 })
    }

    /// Creates a rectangle from two opposite corner points, normalising
    /// their order.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyRect`] when the points share a row or
    /// column (zero-area rectangle).
    pub fn from_corners(a: Point, b: Point) -> Result<Self, GeometryError> {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// Left edge.
    pub fn x0(&self) -> Coord {
        self.x0
    }
    /// Bottom edge.
    pub fn y0(&self) -> Coord {
        self.y0
    }
    /// Right edge (exclusive).
    pub fn x1(&self) -> Coord {
        self.x1
    }
    /// Top edge (exclusive).
    pub fn y1(&self) -> Coord {
        self.y1
    }

    /// Horizontal extent.
    pub fn width(&self) -> Coord {
        self.x1 - self.x0
    }

    /// Vertical extent.
    pub fn height(&self) -> Coord {
        self.y1 - self.y0
    }

    /// Area in nm².
    pub fn area(&self) -> i128 {
        self.width() as i128 * self.height() as i128
    }

    /// Bottom-left corner.
    pub fn min_corner(&self) -> Point {
        Point::new(self.x0, self.y0)
    }

    /// Top-right corner.
    pub fn max_corner(&self) -> Point {
        Point::new(self.x1, self.y1)
    }

    /// Returns `true` when `p` lies inside the half-open region.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x < self.x1 && p.y >= self.y0 && p.y < self.y1
    }

    /// Returns `true` when `other` lies entirely within `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.x0 >= self.x0 && other.x1 <= self.x1 && other.y0 >= self.y0 && other.y1 <= self.y1
    }

    /// Returns `true` when the interiors overlap (shared edges do not count).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// The overlapping region, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        Rect::new(
            self.x0.max(other.x0),
            self.y0.max(other.y0),
            self.x1.min(other.x1),
            self.y1.min(other.y1),
        )
        .ok()
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn bounding_union(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Rectangle grown by `margin` on every side.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyRect`] when a negative margin collapses
    /// the rectangle.
    pub fn inflate(&self, margin: Coord) -> Result<Rect, GeometryError> {
        Rect::new(
            self.x0 - margin,
            self.y0 - margin,
            self.x1 + margin,
            self.y1 + margin,
        )
    }

    /// Translates the rectangle by `(dx, dy)`.
    pub fn translate(&self, dx: Coord, dy: Coord) -> Rect {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Euclidean-free edge-to-edge separation along the axes: the horizontal
    /// and vertical gaps between `self` and `other` (zero when projections
    /// overlap).
    pub fn axis_gaps(&self, other: &Rect) -> (Coord, Coord) {
        let dx = if other.x0 >= self.x1 {
            other.x0 - self.x1
        } else if self.x0 >= other.x1 {
            self.x0 - other.x1
        } else {
            0
        };
        let dy = if other.y0 >= self.y1 {
            other.y0 - self.y1
        } else if self.y0 >= other.y1 {
            self.y0 - other.y1
        } else {
            0
        };
        (dx, dy)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}) x [{}, {})", self.x0, self.x1, self.y0, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty() {
        assert!(Rect::new(0, 0, 0, 10).is_err());
        assert!(Rect::new(0, 0, 10, 0).is_err());
        assert!(Rect::new(5, 5, 4, 9).is_err());
    }

    #[test]
    fn from_corners_normalises() {
        let r = Rect::from_corners(Point::new(10, 2), Point::new(3, 8)).unwrap();
        assert_eq!((r.x0(), r.y0(), r.x1(), r.y1()), (3, 2, 10, 8));
    }

    #[test]
    fn containment_is_half_open() {
        let r = Rect::new(0, 0, 10, 10).unwrap();
        assert!(r.contains(Point::new(0, 0)));
        assert!(!r.contains(Point::new(10, 0)));
        assert!(!r.contains(Point::new(0, 10)));
    }

    #[test]
    fn abutting_rects_do_not_intersect() {
        let a = Rect::new(0, 0, 10, 10).unwrap();
        let b = Rect::new(10, 0, 20, 10).unwrap();
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.axis_gaps(&b), (0, 0));
    }

    #[test]
    fn intersection_area() {
        let a = Rect::new(0, 0, 10, 10).unwrap();
        let b = Rect::new(5, 5, 15, 15).unwrap();
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(5, 5, 10, 10).unwrap());
        assert_eq!(i.area(), 25);
    }

    #[test]
    fn gaps() {
        let a = Rect::new(0, 0, 10, 10).unwrap();
        let b = Rect::new(25, 40, 30, 50).unwrap();
        assert_eq!(a.axis_gaps(&b), (15, 30));
        assert_eq!(b.axis_gaps(&a), (15, 30));
    }

    #[test]
    fn inflate_and_translate() {
        let r = Rect::new(10, 10, 20, 20).unwrap();
        let g = r.inflate(5).unwrap();
        assert_eq!((g.x0(), g.y0(), g.x1(), g.y1()), (5, 5, 25, 25));
        assert!(r.inflate(-5).is_err());
        let t = r.translate(-10, 3);
        assert_eq!((t.x0(), t.y0(), t.x1(), t.y1()), (0, 13, 10, 23));
    }

    proptest! {
        #[test]
        fn intersection_commutes(
            ax0 in -100i64..100, ay0 in -100i64..100, aw in 1i64..50, ah in 1i64..50,
            bx0 in -100i64..100, by0 in -100i64..100, bw in 1i64..50, bh in 1i64..50,
        ) {
            let a = Rect::new(ax0, ay0, ax0 + aw, ay0 + ah).unwrap();
            let b = Rect::new(bx0, by0, bx0 + bw, by0 + bh).unwrap();
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
            prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
        }

        #[test]
        fn bounding_union_contains_both(
            ax0 in -100i64..100, ay0 in -100i64..100, aw in 1i64..50, ah in 1i64..50,
            bx0 in -100i64..100, by0 in -100i64..100, bw in 1i64..50, bh in 1i64..50,
        ) {
            let a = Rect::new(ax0, ay0, ax0 + aw, ay0 + ah).unwrap();
            let b = Rect::new(bx0, by0, bx0 + bw, by0 + bh).unwrap();
            let u = a.bounding_union(&b);
            prop_assert!(u.contains_rect(&a));
            prop_assert!(u.contains_rect(&b));
        }
    }
}
