//! Run-length decomposition of grid rows and columns.
//!
//! The Space and Width design rules (paper Fig. 3) measure maximal runs of
//! empty and filled cells along each axis: a *width* violation is a filled
//! run whose physical extent is below `width_min`, and a *space* violation
//! is an empty run between two polygons whose extent is below `space_min`.
//! The legalization system (paper Eq. 14) builds its `Set_W` and `Set_S`
//! index sets from exactly these runs.

/// A maximal run of equal cells within a row or column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Index of the first cell in the run.
    pub start: usize,
    /// One past the last cell in the run.
    pub end: usize,
    /// Cell value over the run.
    pub filled: bool,
}

impl Run {
    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the run covers no cells (never produced by [`runs_of`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` when the run touches either end of a line of length `len`.
    pub fn touches_border(&self, len: usize) -> bool {
        self.start == 0 || self.end == len
    }
}

/// Decomposes a sequence of cells into maximal runs.
///
/// ```
/// use dp_geometry::runs::runs_of;
/// let runs = runs_of([true, true, false, true].into_iter());
/// assert_eq!(runs.len(), 3);
/// assert_eq!(runs[0].len(), 2);
/// assert!(runs[0].filled);
/// ```
pub fn runs_of(cells: impl Iterator<Item = bool>) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::new();
    for (i, value) in cells.enumerate() {
        match out.last_mut() {
            Some(run) if run.filled == value => run.end = i + 1,
            _ => out.push(Run {
                start: i,
                end: i + 1,
                filled: value,
            }),
        }
    }
    out
}

/// Filled runs only (width-rule subjects).
pub fn filled_runs(cells: impl Iterator<Item = bool>) -> Vec<Run> {
    runs_of(cells).into_iter().filter(|r| r.filled).collect()
}

/// Empty runs strictly between two filled runs (space-rule subjects).
///
/// Runs touching the border are *not* interior: the neighbouring shape in
/// the adjacent tile is unknown, so the paper's rule set (and KLayout in
/// tile mode) measures space only between two polygons inside the tile.
pub fn interior_space_runs(cells: impl Iterator<Item = bool>, len: usize) -> Vec<Run> {
    runs_of(cells)
        .into_iter()
        .filter(|r| !r.filled && !r.touches_border(len))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_input() {
        assert!(runs_of(std::iter::empty()).is_empty());
    }

    #[test]
    fn single_run() {
        let r = runs_of([true; 5].into_iter());
        assert_eq!(
            r,
            vec![Run {
                start: 0,
                end: 5,
                filled: true
            }]
        );
    }

    #[test]
    fn alternating() {
        let r = runs_of([true, false, true, false].into_iter());
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|run| run.len() == 1));
    }

    #[test]
    fn interior_space_excludes_borders() {
        // . # . . # .
        let cells = [false, true, false, false, true, false];
        let spaces = interior_space_runs(cells.into_iter(), cells.len());
        assert_eq!(spaces.len(), 1);
        assert_eq!((spaces[0].start, spaces[0].end), (2, 4));
    }

    #[test]
    fn no_interior_space_for_single_shape() {
        let cells = [false, true, true, false];
        assert!(interior_space_runs(cells.into_iter(), cells.len()).is_empty());
    }

    #[test]
    fn filled_runs_only() {
        let cells = [true, false, true, true];
        let f = filled_runs(cells.into_iter());
        assert_eq!(f.len(), 2);
        assert_eq!(f[1].len(), 2);
    }

    proptest! {
        #[test]
        fn runs_partition_the_line(cells in proptest::collection::vec(any::<bool>(), 1..64)) {
            let runs = runs_of(cells.iter().copied());
            // Runs tile the whole line with no gaps and alternate in value.
            prop_assert_eq!(runs[0].start, 0);
            prop_assert_eq!(runs.last().unwrap().end, cells.len());
            for pair in runs.windows(2) {
                prop_assert_eq!(pair[0].end, pair[1].start);
                prop_assert_ne!(pair[0].filled, pair[1].filled);
            }
            let total: usize = runs.iter().map(Run::len).sum();
            prop_assert_eq!(total, cells.len());
        }
    }
}
