//! Bow-tie detection: the topology pre-filter of DiffPattern (paper §III-C).
//!
//! A *bow-tie* is a point contact where two filled cells touch only
//! diagonally while the two orthogonal neighbours are empty (or the mirror
//! configuration). Such a topology describes two polygons meeting at a
//! single point, which is not manufacturable and is rejected by every
//! layout tool. DiffPattern removes these topologies with a rule-based
//! pre-filter before legalization; the paper reports fewer than 0.1 % of
//! generated topologies being filtered out.

use crate::BitGrid;

/// A bow-tie occurrence at the 2x2 window whose bottom-left cell is
/// `(col, row)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BowTie {
    /// Column of the bottom-left cell of the 2x2 window.
    pub col: usize,
    /// Row of the bottom-left cell of the 2x2 window.
    pub row: usize,
    /// `true` when the filled diagonal runs bottom-left to top-right.
    pub rising: bool,
}

/// Finds every bow-tie in `grid`.
///
/// A 2x2 window is a bow-tie when exactly one diagonal pair is filled:
///
/// ```text
/// #.      .#
/// .#  or  #.
/// ```
///
/// ```
/// use dp_geometry::{BitGrid, bowtie};
/// let g = BitGrid::from_ascii("#.\n.#").unwrap();
/// assert_eq!(bowtie::find_bowties(&g).len(), 1);
/// ```
pub fn find_bowties(grid: &BitGrid) -> Vec<BowTie> {
    let mut out = Vec::new();
    for row in 0..grid.height().saturating_sub(1) {
        for col in 0..grid.width().saturating_sub(1) {
            let bl = grid.get(col, row);
            let br = grid.get(col + 1, row);
            let tl = grid.get(col, row + 1);
            let tr = grid.get(col + 1, row + 1);
            if bl && tr && !br && !tl {
                out.push(BowTie {
                    col,
                    row,
                    rising: true,
                });
            } else if br && tl && !bl && !tr {
                out.push(BowTie {
                    col,
                    row,
                    rising: false,
                });
            }
        }
    }
    out
}

/// Returns `true` when the topology contains no bow-tie and is therefore
/// accepted by the pre-filter.
pub fn is_bowtie_free(grid: &BitGrid) -> bool {
    for row in 0..grid.height().saturating_sub(1) {
        for col in 0..grid.width().saturating_sub(1) {
            let bl = grid.get(col, row);
            let br = grid.get(col + 1, row);
            let tl = grid.get(col, row + 1);
            let tr = grid.get(col + 1, row + 1);
            if (bl && tr && !br && !tl) || (br && tl && !bl && !tr) {
                return false;
            }
        }
    }
    true
}

/// Repairs every bow-tie by filling one of the empty cells of the 2x2
/// window, chosen deterministically (the bottom-empty cell). This is the
/// simplest legalizing transformation and is used by the LegalGAN baseline's
/// morphological post-processing.
///
/// Returns the number of repairs applied (iterates until bow-tie free).
pub fn repair_bowties(grid: &mut BitGrid) -> usize {
    let mut repairs = 0;
    loop {
        let ties = find_bowties(grid);
        if ties.is_empty() {
            return repairs;
        }
        for tie in ties {
            // Fill the empty bottom cell of the window.
            let (c, r) = if tie.rising {
                (tie.col + 1, tie.row)
            } else {
                (tie.col, tie.row)
            };
            if !grid.get(c, r) {
                grid.set(c, r, true);
                repairs += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_grid_has_no_bowties() {
        let g = BitGrid::from_ascii(
            "##..
             ##..
             ..##",
        )
        .unwrap();
        // The 2x2 window at (1,0)-(2,1): cells (1,1)=#, (2,0)=# -> wait,
        // row 0 is ..##, row 1 is ##.., so window cols 1-2 rows 0-1 has
        // bl=(1,0)=. br=(2,0)=# tl=(1,1)=# tr=(2,1)=. -> falling bow-tie!
        assert!(!is_bowtie_free(&g));
        let ties = find_bowties(&g);
        assert_eq!(ties.len(), 1);
        assert!(!ties[0].rising);
    }

    #[test]
    fn truly_clean_grid() {
        let g = BitGrid::from_ascii(
            "##..
             ##..
             ##..",
        )
        .unwrap();
        assert!(is_bowtie_free(&g));
        assert!(find_bowties(&g).is_empty());
    }

    #[test]
    fn rising_bowtie() {
        let g = BitGrid::from_ascii(
            ".#
             #.",
        )
        .unwrap();
        let ties = find_bowties(&g);
        assert_eq!(ties.len(), 1);
        assert_eq!(
            ties[0],
            BowTie {
                col: 0,
                row: 0,
                rising: true
            }
        );
    }

    #[test]
    fn full_window_is_not_bowtie() {
        let g = BitGrid::from_ascii(
            "##
             ##",
        )
        .unwrap();
        assert!(is_bowtie_free(&g));
    }

    #[test]
    fn three_filled_is_not_bowtie() {
        let g = BitGrid::from_ascii(
            "##
             #.",
        )
        .unwrap();
        assert!(is_bowtie_free(&g));
    }

    #[test]
    fn repair_terminates_and_clears() {
        let mut g = BitGrid::from_ascii(
            "#.#.
             .#.#
             #.#.",
        )
        .unwrap();
        assert!(!is_bowtie_free(&g));
        let n = repair_bowties(&mut g);
        assert!(n > 0);
        assert!(is_bowtie_free(&g));
    }

    #[test]
    fn repair_noop_on_clean() {
        let mut g = BitGrid::from_ascii(
            "###
             ###",
        )
        .unwrap();
        assert_eq!(repair_bowties(&mut g), 0);
    }
}
