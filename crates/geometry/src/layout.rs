use crate::{BitGrid, Coord, GeometryError, Rect};

/// A single-layer layout: a clip window plus a set of non-overlapping
/// rectangles inside it.
///
/// Layout patterns in the paper are 2048x2048 nm² clips of a full-chip
/// metal-layer map. `Layout` is the raw-geometry form from which squish
/// patterns (paper Fig. 2) are extracted, and back into which legalized
/// patterns are restored.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Layout {
    window: Rect,
    rects: Vec<Rect>,
}

impl Layout {
    /// Creates an empty layout over the clip `window`.
    pub fn new(window: Rect) -> Self {
        Layout {
            window,
            rects: Vec::new(),
        }
    }

    /// The clip window.
    pub fn window(&self) -> Rect {
        self.window
    }

    /// The rectangles, in insertion order.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when the layout holds no shapes.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Adds a rectangle, clipping it to the window. Rectangles fully outside
    /// the window are dropped.
    pub fn push(&mut self, rect: Rect) {
        if let Some(clipped) = rect.intersection(&self.window) {
            self.rects.push(clipped);
        }
    }

    /// Adds a rectangle that must lie entirely inside the window.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::OutOfBounds`] when the rectangle leaves the
    /// window.
    pub fn push_strict(&mut self, rect: Rect) -> Result<(), GeometryError> {
        if !self.window.contains_rect(&rect) {
            return Err(GeometryError::OutOfBounds);
        }
        self.rects.push(rect);
        Ok(())
    }

    /// Total shape area (rectangles are assumed disjoint).
    pub fn shape_area(&self) -> i128 {
        self.rects.iter().map(Rect::area).sum()
    }

    /// The scan lines of the layout: the sorted, deduplicated x and y
    /// coordinates of every rectangle edge plus the window edges
    /// (paper Fig. 2). The interval lengths between adjacent scan lines are
    /// the squish-pattern Δ vectors.
    pub fn scan_lines(&self) -> (Vec<Coord>, Vec<Coord>) {
        let mut xs = vec![self.window.x0(), self.window.x1()];
        let mut ys = vec![self.window.y0(), self.window.y1()];
        for r in &self.rects {
            xs.push(r.x0());
            xs.push(r.x1());
            ys.push(r.y0());
            ys.push(r.y1());
        }
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        (xs, ys)
    }

    /// Rasterizes the layout onto the grid induced by the scan lines:
    /// cell `(i, j)` is filled when the region between scan lines
    /// `xs[i]..xs[i+1]` and `ys[j]..ys[j+1]` is covered by a rectangle.
    ///
    /// # Panics
    ///
    /// Panics when `xs` or `ys` has fewer than two entries or is unsorted.
    pub fn rasterize(&self, xs: &[Coord], ys: &[Coord]) -> BitGrid {
        assert!(xs.len() >= 2 && ys.len() >= 2, "need at least one cell");
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "xs must be sorted");
        assert!(ys.windows(2).all(|w| w[0] < w[1]), "ys must be sorted");
        let mut grid = BitGrid::new(xs.len() - 1, ys.len() - 1).expect("validated non-empty");
        for r in &self.rects {
            // Rect edges are always on scan lines, so binary search is exact.
            let c0 = xs.partition_point(|&x| x < r.x0());
            let c1 = xs.partition_point(|&x| x < r.x1());
            let r0 = ys.partition_point(|&y| y < r.y0());
            let r1 = ys.partition_point(|&y| y < r.y1());
            grid.fill_cells(c0, r0, c1, r1);
        }
        grid
    }

    /// Extracts the sub-layout inside `clip`, translated so the clip's
    /// bottom-left corner becomes the origin. Shapes are cut at the clip
    /// boundary, exactly like splitting a full-chip map into tiles
    /// (paper §IV-A).
    pub fn clip(&self, clip: Rect) -> Layout {
        let window = Rect::new(0, 0, clip.width(), clip.height()).expect("positive extent");
        let mut out = Layout::new(window);
        for r in &self.rects {
            if let Some(cut) = r.intersection(&clip) {
                out.rects.push(cut.translate(-clip.x0(), -clip.y0()));
            }
        }
        out
    }

    /// Merges abutting/overlapping rectangles into a canonical maximal
    /// horizontal-slab decomposition. Useful to normalise generator output
    /// before DRC.
    pub fn normalized(&self) -> Layout {
        let (xs, ys) = self.scan_lines();
        let grid = self.rasterize(&xs, &ys);
        let mut out = Layout::new(self.window);
        // Horizontal maximal slabs per row of the scan grid.
        for row in 0..grid.height() {
            let mut col = 0;
            while col < grid.width() {
                if grid.get(col, row) {
                    let start = col;
                    while col < grid.width() && grid.get(col, row) {
                        col += 1;
                    }
                    let rect = Rect::new(xs[start], ys[row], xs[col], ys[row + 1])
                        .expect("scan cells are non-empty");
                    out.rects.push(rect);
                } else {
                    col += 1;
                }
            }
        }
        // Merge vertically-stacked slabs with identical x extents.
        out.rects.sort_by_key(|r| (r.x0(), r.x1(), r.y0()));
        let mut merged: Vec<Rect> = Vec::with_capacity(out.rects.len());
        for r in out.rects.drain(..) {
            match merged.last_mut() {
                Some(last) if last.x0() == r.x0() && last.x1() == r.x1() && last.y1() == r.y0() => {
                    *last = Rect::new(last.x0(), last.y0(), last.x1(), r.y1())
                        .expect("merged rect is non-empty");
                }
                _ => merged.push(r),
            }
        }
        out.rects = merged;
        out
    }
}

impl Extend<Rect> for Layout {
    fn extend<T: IntoIterator<Item = Rect>>(&mut self, iter: T) {
        for r in iter {
            self.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(w: Coord, h: Coord) -> Rect {
        Rect::new(0, 0, w, h).unwrap()
    }

    #[test]
    fn scan_lines_include_window_edges() {
        let l = Layout::new(window(100, 100));
        let (xs, ys) = l.scan_lines();
        assert_eq!(xs, vec![0, 100]);
        assert_eq!(ys, vec![0, 100]);
    }

    #[test]
    fn push_clips_to_window() {
        let mut l = Layout::new(window(100, 100));
        l.push(Rect::new(-50, 10, 50, 20).unwrap());
        assert_eq!(l.rects()[0], Rect::new(0, 10, 50, 20).unwrap());
        l.push(Rect::new(200, 200, 300, 300).unwrap());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn push_strict_rejects_out_of_window() {
        let mut l = Layout::new(window(100, 100));
        assert!(l.push_strict(Rect::new(-1, 0, 10, 10).unwrap()).is_err());
        assert!(l.push_strict(Rect::new(0, 0, 10, 10).unwrap()).is_ok());
    }

    #[test]
    fn rasterize_matches_figure_2() {
        // Mirror of the crate-level doc example.
        let mut l = Layout::new(window(100, 100));
        l.push(Rect::new(10, 10, 40, 90).unwrap());
        l.push(Rect::new(60, 10, 90, 90).unwrap());
        let (xs, ys) = l.scan_lines();
        let g = l.rasterize(&xs, &ys);
        assert_eq!((g.width(), g.height()), (5, 3));
        assert!(g.get(1, 1) && g.get(3, 1));
        assert!(!g.get(0, 1) && !g.get(2, 1) && !g.get(4, 1));
        assert!(!g.get(1, 0) && !g.get(1, 2));
    }

    #[test]
    fn clip_translates_to_origin() {
        let mut l = Layout::new(window(200, 200));
        l.push(Rect::new(90, 90, 130, 110).unwrap());
        let tile = l.clip(Rect::new(100, 100, 200, 200).unwrap());
        assert_eq!(tile.window(), window(100, 100));
        assert_eq!(tile.rects()[0], Rect::new(0, 0, 30, 10).unwrap());
    }

    #[test]
    fn shape_area_sums() {
        let mut l = Layout::new(window(100, 100));
        l.push(Rect::new(0, 0, 10, 10).unwrap());
        l.push(Rect::new(20, 0, 30, 10).unwrap());
        assert_eq!(l.shape_area(), 200);
    }

    #[test]
    fn normalized_merges_abutting_rects() {
        let mut l = Layout::new(window(100, 100));
        l.push(Rect::new(0, 0, 10, 10).unwrap());
        l.push(Rect::new(10, 0, 20, 10).unwrap());
        l.push(Rect::new(0, 10, 20, 20).unwrap());
        let n = l.normalized();
        assert_eq!(n.len(), 1);
        assert_eq!(n.rects()[0], Rect::new(0, 0, 20, 20).unwrap());
        assert_eq!(n.shape_area(), l.shape_area());
    }

    #[test]
    fn normalized_preserves_area_for_overlaps() {
        let mut l = Layout::new(window(100, 100));
        l.push(Rect::new(0, 0, 20, 20).unwrap());
        l.push(Rect::new(10, 10, 30, 30).unwrap());
        let n = l.normalized();
        // 400 + 400 - 100 overlap = 700
        assert_eq!(n.shape_area(), 700);
    }

    #[test]
    fn extend_collects() {
        let mut l = Layout::new(window(50, 50));
        l.extend(vec![
            Rect::new(0, 0, 10, 10).unwrap(),
            Rect::new(20, 20, 30, 30).unwrap(),
        ]);
        assert_eq!(l.len(), 2);
    }
}
