use std::fmt;

/// Error type for geometric construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GeometryError {
    /// A rectangle was constructed with non-positive extent.
    EmptyRect {
        /// Left x.
        x0: i64,
        /// Bottom y.
        y0: i64,
        /// Right x.
        x1: i64,
        /// Top y.
        y1: i64,
    },
    /// A grid was constructed with a zero dimension.
    EmptyGrid {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// Row data does not match the declared grid shape.
    ShapeMismatch {
        /// Expected number of cells.
        expected: usize,
        /// Number of cells supplied.
        actual: usize,
    },
    /// A geometric object lies outside the region it must be contained in.
    OutOfBounds,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::EmptyRect { x0, y0, x1, y1 } => write!(
                f,
                "rectangle ({x0},{y0})-({x1},{y1}) has non-positive extent"
            ),
            GeometryError::EmptyGrid { width, height } => {
                write!(f, "grid dimensions {width}x{height} must be non-zero")
            }
            GeometryError::ShapeMismatch { expected, actual } => {
                write!(f, "expected {expected} cells, got {actual}")
            }
            GeometryError::OutOfBounds => write!(f, "object lies outside its container"),
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            GeometryError::EmptyRect {
                x0: 0,
                y0: 0,
                x1: 0,
                y1: 5,
            },
            GeometryError::EmptyGrid {
                width: 0,
                height: 3,
            },
            GeometryError::ShapeMismatch {
                expected: 9,
                actual: 8,
            },
            GeometryError::OutOfBounds,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeometryError>();
    }
}
