//! 4-connected component labelling over a [`BitGrid`].
//!
//! Every polygon in a topology matrix is a maximal 4-connected region of
//! filled cells. The legalization system (paper Eq. 14) needs per-polygon
//! cell sets for the area constraints, and the topology pre-filter needs the
//! component structure to reason about point contacts.

use crate::BitGrid;

/// Result of labelling a grid: one label per cell, `None` for empty cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    width: usize,
    height: usize,
    labels: Vec<Option<u32>>,
    count: u32,
}

impl ComponentLabels {
    /// Labels all 4-connected components of filled cells in `grid`.
    ///
    /// Labels are assigned in scan order (bottom row, left to right) and are
    /// dense: `0..count`.
    pub fn label(grid: &BitGrid) -> Self {
        let width = grid.width();
        let height = grid.height();
        let mut labels: Vec<Option<u32>> = vec![None; width * height];
        let mut count = 0u32;
        let mut stack: Vec<(usize, usize)> = Vec::new();

        for row in 0..height {
            for col in 0..width {
                if !grid.get(col, row) || labels[row * width + col].is_some() {
                    continue;
                }
                let label = count;
                count += 1;
                stack.push((col, row));
                labels[row * width + col] = Some(label);
                while let Some((c, r)) = stack.pop() {
                    let mut visit = |nc: usize, nr: usize| {
                        if grid.get(nc, nr) && labels[nr * width + nc].is_none() {
                            labels[nr * width + nc] = Some(label);
                            stack.push((nc, nr));
                        }
                    };
                    if c > 0 {
                        visit(c - 1, r);
                    }
                    if c + 1 < width {
                        visit(c + 1, r);
                    }
                    if r > 0 {
                        visit(c, r - 1);
                    }
                    if r + 1 < height {
                        visit(c, r + 1);
                    }
                }
            }
        }

        ComponentLabels {
            width,
            height,
            labels,
            count,
        }
    }

    /// Number of components found.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Label of the cell at `(col, row)`, or `None` for empty cells.
    ///
    /// # Panics
    ///
    /// Panics when the cell is out of bounds.
    pub fn get(&self, col: usize, row: usize) -> Option<u32> {
        assert!(col < self.width && row < self.height, "cell out of bounds");
        self.labels[row * self.width + col]
    }

    /// All cells belonging to component `label`, in scan order.
    pub fn cells_of(&self, label: u32) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for row in 0..self.height {
            for col in 0..self.width {
                if self.labels[row * self.width + col] == Some(label) {
                    out.push((col, row));
                }
            }
        }
        out
    }

    /// Cell count per component, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count as usize];
        for l in self.labels.iter().flatten() {
            sizes[*l as usize] += 1;
        }
        sizes
    }

    /// Bounding box `(col0, row0, col1, row1)` (half-open) per component.
    pub fn bounding_boxes(&self) -> Vec<(usize, usize, usize, usize)> {
        let mut boxes = vec![(usize::MAX, usize::MAX, 0usize, 0usize); self.count as usize];
        for row in 0..self.height {
            for col in 0..self.width {
                if let Some(l) = self.labels[row * self.width + col] {
                    let b = &mut boxes[l as usize];
                    b.0 = b.0.min(col);
                    b.1 = b.1.min(row);
                    b.2 = b.2.max(col + 1);
                    b.3 = b.3.max(row + 1);
                }
            }
        }
        boxes
    }

    /// Returns `true` when component `label` is a perfect filled rectangle.
    pub fn is_rectangular(&self, label: u32) -> bool {
        let (c0, r0, c1, r1) = self.bounding_boxes()[label as usize];
        let expected = (c1 - c0) * (r1 - r0);
        self.sizes()[label as usize] == expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(art: &str) -> BitGrid {
        BitGrid::from_ascii(art).unwrap()
    }

    #[test]
    fn empty_grid_has_no_components() {
        let g = BitGrid::new(4, 4).unwrap();
        let labels = ComponentLabels::label(&g);
        assert_eq!(labels.count(), 0);
        assert!(labels.sizes().is_empty());
    }

    #[test]
    fn two_separate_bars() {
        let g = grid(
            "#..#
             #..#
             #..#",
        );
        let labels = ComponentLabels::label(&g);
        assert_eq!(labels.count(), 2);
        assert_eq!(labels.sizes(), vec![3, 3]);
        assert!(labels.is_rectangular(0));
        assert!(labels.is_rectangular(1));
    }

    #[test]
    fn diagonal_touch_is_not_connected() {
        let g = grid(
            "#.
             .#",
        );
        let labels = ComponentLabels::label(&g);
        assert_eq!(labels.count(), 2, "4-connectivity must split diagonals");
    }

    #[test]
    fn l_shape_is_one_component_not_rectangular() {
        let g = grid(
            "#..
             #..
             ###",
        );
        let labels = ComponentLabels::label(&g);
        assert_eq!(labels.count(), 1);
        assert_eq!(labels.sizes(), vec![5]);
        assert!(!labels.is_rectangular(0));
        assert_eq!(labels.bounding_boxes()[0], (0, 0, 3, 3));
    }

    #[test]
    fn labels_are_scan_ordered_and_dense() {
        let g = grid(
            "..#
             ...
             #..",
        );
        let labels = ComponentLabels::label(&g);
        assert_eq!(labels.count(), 2);
        // Bottom-left cell is scanned first, so it gets label 0.
        assert_eq!(labels.get(0, 0), Some(0));
        assert_eq!(labels.get(2, 2), Some(1));
        assert_eq!(labels.get(1, 1), None);
    }

    #[test]
    fn cells_of_returns_all_cells() {
        let g = grid(
            "##
             ##",
        );
        let labels = ComponentLabels::label(&g);
        assert_eq!(labels.cells_of(0).len(), 4);
    }

    #[test]
    fn snake_component() {
        let g = grid(
            "###
             #..
             ###",
        );
        let labels = ComponentLabels::label(&g);
        assert_eq!(labels.count(), 1);
        assert_eq!(labels.sizes(), vec![7]);
    }
}
