//! Rectilinear geometry kernel for the DiffPattern reproduction.
//!
//! VLSI layout patterns are stacks of axis-aligned (Manhattan) polygons.
//! This crate provides the low-level geometric machinery every other crate
//! in the workspace builds on:
//!
//! * [`Point`] / [`Rect`] — integer-nanometre coordinates and axis-aligned
//!   rectangles,
//! * [`BitGrid`] — a dense binary occupancy grid, the in-memory form of a
//!   squish-pattern *topology matrix*,
//! * [`components`] — 4-connected component labelling over a [`BitGrid`],
//! * [`RectilinearPolygon`] — boundary tracing of a labelled region into a
//!   closed Manhattan vertex loop (used by the LayouTransformer baseline and
//!   by area accounting),
//! * [`bowtie`] — detection of *bow-tie* point contacts, the invalid
//!   topology class removed by DiffPattern's topology pre-filter,
//! * [`runs`] — run-length decomposition of rows/columns, the basis of the
//!   Space/Width design-rule measurements (paper Fig. 3),
//! * [`Layout`] — a bag of rectangles with scan-line extraction, the input
//!   to squish-pattern encoding (paper Fig. 2).
//!
//! # Example
//!
//! ```
//! use dp_geometry::{BitGrid, Layout, Rect};
//!
//! # fn main() -> Result<(), dp_geometry::GeometryError> {
//! let mut layout = Layout::new(Rect::new(0, 0, 100, 100)?);
//! layout.push(Rect::new(10, 10, 40, 90)?);
//! layout.push(Rect::new(60, 10, 90, 90)?);
//! let (xs, ys) = layout.scan_lines();
//! assert_eq!(xs, vec![0, 10, 40, 60, 90, 100]);
//! assert_eq!(ys, vec![0, 10, 90, 100]);
//!
//! let grid = layout.rasterize(&xs, &ys);
//! assert_eq!(grid.width(), 5);
//! assert_eq!(grid.height(), 3);
//! assert!(grid.get(1, 1));  // inside the first rect
//! assert!(!grid.get(2, 1)); // the gap between the rects
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitgrid;
pub mod bowtie;
pub mod components;
mod error;
mod layout;
mod point;
mod polygon;
mod rect;
pub mod runs;

pub use bitgrid::BitGrid;
pub use components::ComponentLabels;
pub use error::GeometryError;
pub use layout::Layout;
pub use point::Point;
pub use polygon::{polygons_of_grid, EdgeToken, RectilinearPolygon};
pub use rect::Rect;

/// Integer coordinate type used throughout the workspace (nanometres).
pub type Coord = i64;
