use crate::Coord;
use std::fmt;
use std::ops::{Add, Sub};

/// A point in integer nanometre coordinates.
///
/// `Point` is the basic unit of all layout geometry in the workspace.
/// Coordinates grow rightwards (x) and upwards (y), matching the paper's
/// figures.
///
/// ```
/// use dp_geometry::Point;
/// let a = Point::new(3, 4);
/// let b = Point::new(1, 1);
/// assert_eq!(a - b, Point::new(2, 3));
/// assert_eq!(a.manhattan_distance(b), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate (nm).
    pub x: Coord,
    /// Vertical coordinate (nm).
    pub y: Coord,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// L1 (Manhattan) distance to `other`.
    pub fn manhattan_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Returns `true` when both coordinates are axis-aligned with `other`
    /// (i.e. the segment between them is horizontal or vertical).
    pub fn is_axis_aligned_with(self, other: Point) -> bool {
        self.x == other.x || self.y == other.y
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(5, -2);
        let b = Point::new(-1, 7);
        assert_eq!(a + b, Point::new(4, 5));
        assert_eq!(a - b, Point::new(6, -9));
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(10, 20);
        let b = Point::new(-3, 5);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn axis_alignment() {
        assert!(Point::new(1, 5).is_axis_aligned_with(Point::new(1, 9)));
        assert!(Point::new(1, 5).is_axis_aligned_with(Point::new(7, 5)));
        assert!(!Point::new(1, 5).is_axis_aligned_with(Point::new(2, 6)));
    }

    #[test]
    fn conversion_from_tuple() {
        let p: Point = (3, 4).into();
        assert_eq!(p, Point::new(3, 4));
    }

    #[test]
    fn display() {
        assert_eq!(Point::new(-1, 2).to_string(), "(-1, 2)");
    }
}
