use crate::{BitGrid, Coord, Point};

/// A closed rectilinear (Manhattan) polygon given as an ordered vertex loop.
///
/// Outer boundaries are counter-clockwise (positive signed area); hole
/// boundaries are clockwise. Consecutive vertices always differ in exactly
/// one coordinate. The LayouTransformer baseline (paper ref. \[9\]) models layout
/// patterns as sequences of such polygons, decomposed into vertices and
/// directed edges; [`RectilinearPolygon::edge_tokens`] produces exactly that
/// decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RectilinearPolygon {
    vertices: Vec<Point>,
}

/// A unit move along a polygon boundary, the token alphabet of the
/// LayouTransformer baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeToken {
    /// Move right by a positive distance.
    Right(Coord),
    /// Move up by a positive distance.
    Up(Coord),
    /// Move left by a positive distance.
    Left(Coord),
    /// Move down by a positive distance.
    Down(Coord),
}

impl RectilinearPolygon {
    /// Builds a polygon from a vertex loop.
    ///
    /// The loop is normalised: collinear intermediate vertices are removed
    /// and the final vertex is not a repeat of the first.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 4 vertices remain after normalisation or when
    /// two consecutive vertices are not axis-aligned.
    pub fn new(mut vertices: Vec<Point>) -> Self {
        if vertices.last() == vertices.first() && vertices.len() > 1 {
            vertices.pop();
        }
        let vertices = remove_collinear(vertices);
        assert!(
            vertices.len() >= 4,
            "rectilinear polygon needs at least 4 vertices"
        );
        for i in 0..vertices.len() {
            let a = vertices[i];
            let b = vertices[(i + 1) % vertices.len()];
            assert!(
                a.is_axis_aligned_with(b) && a != b,
                "consecutive vertices must differ along exactly one axis"
            );
        }
        RectilinearPolygon { vertices }
    }

    /// The vertex loop (no repeated closing vertex).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Never true for a valid polygon; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Twice the signed area (shoelace). Positive for counter-clockwise.
    pub fn signed_area_doubled(&self) -> i128 {
        let n = self.vertices.len();
        let mut acc: i128 = 0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x as i128 * b.y as i128 - b.x as i128 * a.y as i128;
        }
        acc
    }

    /// Absolute enclosed area in nm².
    pub fn area(&self) -> i128 {
        self.signed_area_doubled().abs() / 2
    }

    /// `true` for counter-clockwise (outer boundary) orientation.
    pub fn is_ccw(&self) -> bool {
        self.signed_area_doubled() > 0
    }

    /// Total boundary length.
    pub fn perimeter(&self) -> Coord {
        let n = self.vertices.len();
        (0..n)
            .map(|i| self.vertices[i].manhattan_distance(self.vertices[(i + 1) % n]))
            .sum()
    }

    /// Axis-aligned bounding box corners `(min, max)`.
    pub fn bounding_box(&self) -> (Point, Point) {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for v in &self.vertices {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        (min, max)
    }

    /// Decomposes the boundary into directed edge tokens starting from the
    /// lexicographically smallest vertex, the canonical sequence form used
    /// by the LayouTransformer baseline.
    pub fn edge_tokens(&self) -> Vec<EdgeToken> {
        let n = self.vertices.len();
        let start = (0..n)
            .min_by_key(|&i| (self.vertices[i].x, self.vertices[i].y))
            .expect("non-empty polygon");
        let mut tokens = Vec::with_capacity(n);
        for k in 0..n {
            let a = self.vertices[(start + k) % n];
            let b = self.vertices[(start + k + 1) % n];
            let token = if b.x > a.x {
                EdgeToken::Right(b.x - a.x)
            } else if b.x < a.x {
                EdgeToken::Left(a.x - b.x)
            } else if b.y > a.y {
                EdgeToken::Up(b.y - a.y)
            } else {
                EdgeToken::Down(a.y - b.y)
            };
            tokens.push(token);
        }
        tokens
    }

    /// Reconstructs a polygon from edge tokens anchored at `origin`.
    ///
    /// Returns `None` when the token walk does not close.
    pub fn from_edge_tokens(origin: Point, tokens: &[EdgeToken]) -> Option<Self> {
        let mut vertices = vec![origin];
        let mut cur = origin;
        for t in tokens {
            cur = match *t {
                EdgeToken::Right(d) => Point::new(cur.x + d, cur.y),
                EdgeToken::Left(d) => Point::new(cur.x - d, cur.y),
                EdgeToken::Up(d) => Point::new(cur.x, cur.y + d),
                EdgeToken::Down(d) => Point::new(cur.x, cur.y - d),
            };
            vertices.push(cur);
        }
        if vertices.last() != vertices.first() || vertices.len() < 5 {
            return None;
        }
        vertices.pop();
        let vertices = remove_collinear(vertices);
        if vertices.len() < 4 {
            return None;
        }
        Some(RectilinearPolygon { vertices })
    }
}

fn remove_collinear(vertices: Vec<Point>) -> Vec<Point> {
    let n = vertices.len();
    if n < 3 {
        return vertices;
    }
    let mut keep = Vec::with_capacity(n);
    for i in 0..n {
        let prev = vertices[(i + n - 1) % n];
        let cur = vertices[i];
        let next = vertices[(i + 1) % n];
        let collinear =
            (prev.x == cur.x && cur.x == next.x) || (prev.y == cur.y && cur.y == next.y);
        if !collinear {
            keep.push(cur);
        }
    }
    keep
}

/// Traces all boundary loops of the filled region in `grid`, with cell
/// `(c, r)` occupying the unit square `[c, c+1) x [r, r+1)`.
///
/// Outer boundaries come out counter-clockwise, holes clockwise. At
/// bow-tie points the tracer takes the sharpest left turn so loops remain
/// simple and deterministic.
///
/// ```
/// use dp_geometry::{BitGrid, polygons_of_grid};
/// let g = BitGrid::from_ascii("##\n##").unwrap();
/// let polys = polygons_of_grid(&g);
/// assert_eq!(polys.len(), 1);
/// assert_eq!(polys[0].area(), 4);
/// ```
pub fn polygons_of_grid(grid: &BitGrid) -> Vec<RectilinearPolygon> {
    use std::collections::HashMap;

    // Directed boundary edges keeping the filled region on the left.
    let mut outgoing: HashMap<Point, Vec<Point>> = HashMap::new();
    let filled = |c: isize, r: isize| -> bool {
        c >= 0
            && r >= 0
            && (c as usize) < grid.width()
            && (r as usize) < grid.height()
            && grid.get(c as usize, r as usize)
    };
    for r in 0..grid.height() as isize {
        for c in 0..grid.width() as isize {
            if !filled(c, r) {
                continue;
            }
            let (c64, r64) = (c as i64, r as i64);
            if !filled(c, r - 1) {
                outgoing
                    .entry(Point::new(c64, r64))
                    .or_default()
                    .push(Point::new(c64 + 1, r64));
            }
            if !filled(c + 1, r) {
                outgoing
                    .entry(Point::new(c64 + 1, r64))
                    .or_default()
                    .push(Point::new(c64 + 1, r64 + 1));
            }
            if !filled(c, r + 1) {
                outgoing
                    .entry(Point::new(c64 + 1, r64 + 1))
                    .or_default()
                    .push(Point::new(c64, r64 + 1));
            }
            if !filled(c - 1, r) {
                outgoing
                    .entry(Point::new(c64, r64 + 1))
                    .or_default()
                    .push(Point::new(c64, r64));
            }
        }
    }

    let mut loops = Vec::new();
    // Deterministic iteration: pull starting points in sorted order.
    let mut starts: Vec<Point> = outgoing.keys().copied().collect();
    starts.sort();
    for start in starts {
        // Not a `while let`: the binding is re-checked after interior
        // mutation and the empty case needs cleanup before breaking.
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(nexts) = outgoing.get_mut(&start) else {
                break;
            };
            if nexts.is_empty() {
                outgoing.remove(&start);
                break;
            }
            nexts.sort();
            let first_next = nexts.pop().expect("non-empty");
            let mut loop_points = vec![start, first_next];
            let mut prev = start;
            let mut cur = first_next;
            while cur != start {
                let candidates = outgoing
                    .get_mut(&cur)
                    .expect("boundary edges always chain into loops");
                let dir_in = cur - prev;
                // Prefer the sharpest left turn: left, straight, right.
                let preference = |next: Point| -> u8 {
                    let dir_out = next - cur;
                    let cross = dir_in.x * dir_out.y - dir_in.y * dir_out.x;
                    if cross > 0 {
                        0 // left turn
                    } else if cross == 0 {
                        1 // straight
                    } else {
                        2 // right turn
                    }
                };
                let best = (0..candidates.len())
                    .min_by_key(|&i| (preference(candidates[i]), candidates[i]))
                    .expect("boundary edges always chain into loops");
                let next = candidates.swap_remove(best);
                if candidates.is_empty() {
                    outgoing.remove(&cur);
                }
                loop_points.push(next);
                prev = cur;
                cur = next;
            }
            loop_points.pop(); // drop repeated start
            loops.push(RectilinearPolygon::new(
                loop_points.into_iter().collect::<Vec<_>>(),
            ));
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_square() {
        let g = BitGrid::from_ascii("#").unwrap();
        let polys = polygons_of_grid(&g);
        assert_eq!(polys.len(), 1);
        assert_eq!(polys[0].area(), 1);
        assert!(polys[0].is_ccw());
        assert_eq!(polys[0].perimeter(), 4);
        assert_eq!(polys[0].len(), 4);
    }

    #[test]
    fn l_shape() {
        let g = BitGrid::from_ascii(
            "#.
             ##",
        )
        .unwrap();
        let polys = polygons_of_grid(&g);
        assert_eq!(polys.len(), 1);
        assert_eq!(polys[0].area(), 3);
        assert_eq!(polys[0].len(), 6);
        assert!(polys[0].is_ccw());
    }

    #[test]
    fn two_bars_two_polygons() {
        let g = BitGrid::from_ascii(
            "#.#
             #.#",
        )
        .unwrap();
        let polys = polygons_of_grid(&g);
        assert_eq!(polys.len(), 2);
        assert!(polys.iter().all(|p| p.area() == 2));
    }

    #[test]
    fn donut_has_hole() {
        let g = BitGrid::from_ascii(
            "###
             #.#
             ###",
        )
        .unwrap();
        let polys = polygons_of_grid(&g);
        assert_eq!(polys.len(), 2);
        let outer = polys.iter().find(|p| p.is_ccw()).unwrap();
        let hole = polys.iter().find(|p| !p.is_ccw()).unwrap();
        assert_eq!(outer.area(), 9);
        assert_eq!(hole.area(), 1);
    }

    #[test]
    fn edge_token_round_trip() {
        let g = BitGrid::from_ascii(
            "##.
             ###
             .##",
        )
        .unwrap();
        for poly in polygons_of_grid(&g) {
            let tokens = poly.edge_tokens();
            let origin = *poly
                .vertices()
                .iter()
                .min_by_key(|v| (v.x, v.y))
                .expect("non-empty");
            let rebuilt = RectilinearPolygon::from_edge_tokens(origin, &tokens)
                .expect("tokens close the loop");
            assert_eq!(rebuilt.area(), poly.area());
            assert_eq!(rebuilt.perimeter(), poly.perimeter());
        }
    }

    #[test]
    fn from_edge_tokens_rejects_open_walk() {
        let tokens = [EdgeToken::Right(2), EdgeToken::Up(2), EdgeToken::Left(1)];
        assert!(RectilinearPolygon::from_edge_tokens(Point::ORIGIN, &tokens).is_none());
    }

    #[test]
    fn collinear_vertices_are_removed() {
        let p = RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 2),
            Point::new(0, 2),
        ]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.area(), 4);
    }

    #[test]
    fn areas_sum_matches_cell_count_for_simple_regions() {
        let g = BitGrid::from_ascii(
            "###..
             ###..
             ..###
             ..###",
        )
        .unwrap();
        let polys = polygons_of_grid(&g);
        // Two overlapping-corner rectangles share a corner point; the
        // pre-filter would reject this, but tracing must still terminate and
        // conserve area.
        let total: i128 = polys
            .iter()
            .map(|p| if p.is_ccw() { p.area() } else { -p.area() })
            .sum();
        assert_eq!(total, g.count_ones() as i128);
    }
}
