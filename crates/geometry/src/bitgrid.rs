use crate::GeometryError;
use std::fmt;

/// A dense binary occupancy grid.
///
/// `BitGrid` is the in-memory form of a squish-pattern *topology matrix*
/// (paper Fig. 2): entry `(col, row)` is `true` where a polygon covers the
/// corresponding grid cell and `false` elsewhere. Row 0 is the bottom row,
/// matching layout coordinates.
///
/// ```
/// use dp_geometry::BitGrid;
/// # fn main() -> Result<(), dp_geometry::GeometryError> {
/// let mut g = BitGrid::new(4, 3)?;
/// g.set(1, 2, true);
/// assert!(g.get(1, 2));
/// assert_eq!(g.count_ones(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitGrid {
    width: usize,
    height: usize,
    cells: Vec<bool>,
}

impl BitGrid {
    /// Creates an all-zero grid of `width x height` cells.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyGrid`] when either dimension is zero.
    pub fn new(width: usize, height: usize) -> Result<Self, GeometryError> {
        if width == 0 || height == 0 {
            return Err(GeometryError::EmptyGrid { width, height });
        }
        Ok(BitGrid {
            width,
            height,
            cells: vec![false; width * height],
        })
    }

    /// Creates a grid from row data, bottom row first.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyGrid`] for zero dimensions and
    /// [`GeometryError::ShapeMismatch`] when `cells.len() != width * height`.
    pub fn from_cells(
        width: usize,
        height: usize,
        cells: Vec<bool>,
    ) -> Result<Self, GeometryError> {
        if width == 0 || height == 0 {
            return Err(GeometryError::EmptyGrid { width, height });
        }
        if cells.len() != width * height {
            return Err(GeometryError::ShapeMismatch {
                expected: width * height,
                actual: cells.len(),
            });
        }
        Ok(BitGrid {
            width,
            height,
            cells,
        })
    }

    /// Parses a grid from an ASCII art block where `#`/`1` mean filled and
    /// `.`/`0` mean empty. The **first line is the top row**, so the text
    /// reads like the figures in the paper.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyGrid`] for empty input and
    /// [`GeometryError::ShapeMismatch`] for ragged rows.
    pub fn from_ascii(art: &str) -> Result<Self, GeometryError> {
        let rows: Vec<&str> = art
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        if rows.is_empty() {
            return Err(GeometryError::EmptyGrid {
                width: 0,
                height: 0,
            });
        }
        let width = rows[0].chars().count();
        let height = rows.len();
        let mut grid = BitGrid::new(width, height)?;
        for (i, line) in rows.iter().enumerate() {
            if line.chars().count() != width {
                return Err(GeometryError::ShapeMismatch {
                    expected: width,
                    actual: line.chars().count(),
                });
            }
            let row = height - 1 - i; // first text line = top row
            for (col, ch) in line.chars().enumerate() {
                grid.set(col, row, matches!(ch, '#' | '1'));
            }
        }
        Ok(grid)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cell value at `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics when `col >= width` or `row >= height`.
    pub fn get(&self, col: usize, row: usize) -> bool {
        assert!(col < self.width && row < self.height, "cell out of bounds");
        self.cells[row * self.width + col]
    }

    /// Sets the cell at `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics when `col >= width` or `row >= height`.
    pub fn set(&mut self, col: usize, row: usize, value: bool) {
        assert!(col < self.width && row < self.height, "cell out of bounds");
        self.cells[row * self.width + col] = value;
    }

    /// Borrow the raw cells, row-major bottom row first.
    pub fn cells(&self) -> &[bool] {
        &self.cells
    }

    /// Number of filled cells.
    pub fn count_ones(&self) -> usize {
        self.cells.iter().filter(|&&c| c).count()
    }

    /// `true` when no cell is filled.
    pub fn is_empty(&self) -> bool {
        self.count_ones() == 0
    }

    /// Fill fraction in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.count_ones() as f64 / self.cells.len() as f64
    }

    /// Iterator over one row, left to right.
    ///
    /// # Panics
    ///
    /// Panics when `row >= height`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = bool> + '_ {
        assert!(row < self.height, "row out of bounds");
        self.cells[row * self.width..(row + 1) * self.width]
            .iter()
            .copied()
    }

    /// Iterator over one column, bottom to top.
    ///
    /// # Panics
    ///
    /// Panics when `col >= width`.
    pub fn column(&self, col: usize) -> impl Iterator<Item = bool> + '_ {
        assert!(col < self.width, "column out of bounds");
        (0..self.height).map(move |r| self.cells[r * self.width + col])
    }

    /// Returns a new grid with the given rectangle of cells filled.
    ///
    /// Cells outside the grid are ignored.
    pub fn fill_cells(&mut self, col0: usize, row0: usize, col1: usize, row1: usize) {
        for row in row0..row1.min(self.height) {
            for col in col0..col1.min(self.width) {
                self.set(col, row, true);
            }
        }
    }

    /// Transposed copy (columns become rows).
    pub fn transposed(&self) -> BitGrid {
        let mut out = BitGrid::new(self.height, self.width).expect("non-empty");
        for row in 0..self.height {
            for col in 0..self.width {
                out.set(row, col, self.get(col, row));
            }
        }
        out
    }

    /// Rows that are exact duplicates of the row below them (used when
    /// re-squishing a generated topology to compute its true complexity).
    pub fn duplicate_row_indices(&self) -> Vec<usize> {
        (1..self.height)
            .filter(|&r| (0..self.width).all(|c| self.get(c, r) == self.get(c, r - 1)))
            .collect()
    }

    /// Columns that are exact duplicates of the column to their left.
    pub fn duplicate_column_indices(&self) -> Vec<usize> {
        (1..self.width)
            .filter(|&c| (0..self.height).all(|r| self.get(c, r) == self.get(c - 1, r)))
            .collect()
    }

    /// Removes the given rows and columns, producing the *squished* core of
    /// the matrix. Indices must be strictly increasing and in range.
    pub fn remove_rows_cols(&self, rows: &[usize], cols: &[usize]) -> BitGrid {
        let keep_row: Vec<usize> = (0..self.height).filter(|r| !rows.contains(r)).collect();
        let keep_col: Vec<usize> = (0..self.width).filter(|c| !cols.contains(c)).collect();
        let mut out = BitGrid::new(keep_col.len().max(1), keep_row.len().max(1)).expect("nonzero");
        for (new_r, &r) in keep_row.iter().enumerate() {
            for (new_c, &c) in keep_col.iter().enumerate() {
                out.set(new_c, new_r, self.get(c, r));
            }
        }
        out
    }
}

impl fmt::Debug for BitGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitGrid({}x{})", self.width, self.height)?;
        for row in (0..self.height).rev() {
            for col in 0..self.width {
                write!(f, "{}", if self.get(col, row) { '#' } else { '.' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Display for BitGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validation() {
        assert!(BitGrid::new(0, 5).is_err());
        assert!(BitGrid::new(5, 0).is_err());
        assert!(BitGrid::from_cells(2, 2, vec![true; 3]).is_err());
    }

    #[test]
    fn ascii_round_trip_orientation() {
        let g = BitGrid::from_ascii(
            "##..
             ....
             ...#",
        )
        .unwrap();
        // First text line is the top row (row 2).
        assert!(g.get(0, 2) && g.get(1, 2));
        assert!(g.get(3, 0));
        assert!(!g.get(0, 0));
        assert_eq!(g.count_ones(), 3);
    }

    #[test]
    fn ascii_rejects_ragged() {
        assert!(BitGrid::from_ascii("##\n#").is_err());
        assert!(BitGrid::from_ascii("").is_err());
    }

    #[test]
    fn rows_and_columns() {
        let g = BitGrid::from_ascii(
            "#.
             .#",
        )
        .unwrap();
        let bottom: Vec<bool> = g.row(0).collect();
        assert_eq!(bottom, vec![false, true]);
        let left: Vec<bool> = g.column(0).collect();
        assert_eq!(left, vec![false, true]);
    }

    #[test]
    fn transpose_involution() {
        let g = BitGrid::from_ascii(
            "#..#
             .##.",
        )
        .unwrap();
        assert_eq!(g.transposed().transposed(), g);
        assert_eq!(g.transposed().width(), g.height());
    }

    #[test]
    fn duplicate_detection_and_removal() {
        let g = BitGrid::from_ascii(
            "##.
             ##.
             .##",
        )
        .unwrap();
        // Rows: bottom row 0 = .## ; rows 1 and 2 = ##. so row 2 duplicates row 1.
        assert_eq!(g.duplicate_row_indices(), vec![2]);
        // Columns all differ: [F,T,T], [T,T,T], [T,F,F].
        assert!(g.duplicate_column_indices().is_empty());
        let squished = g.remove_rows_cols(&[2], &[]);
        assert_eq!(squished.width(), 3);
        assert_eq!(squished.height(), 2);
    }

    #[test]
    fn fill_clips_to_bounds() {
        let mut g = BitGrid::new(3, 3).unwrap();
        g.fill_cells(1, 1, 10, 10);
        assert_eq!(g.count_ones(), 4);
    }

    proptest! {
        #[test]
        fn density_matches_count(w in 1usize..16, h in 1usize..16, seed in any::<u64>()) {
            let mut cells = vec![false; w * h];
            let mut state = seed;
            for cell in cells.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *cell = state >> 63 == 1;
            }
            let g = BitGrid::from_cells(w, h, cells).unwrap();
            prop_assert!((g.density() - g.count_ones() as f64 / (w * h) as f64).abs() < 1e-12);
        }

        #[test]
        fn remove_dup_rows_cols_preserves_distinctness(w in 2usize..10, h in 2usize..10, seed in any::<u64>()) {
            let mut cells = vec![false; w * h];
            let mut state = seed;
            for cell in cells.iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *cell = state >> 63 == 1;
            }
            let g = BitGrid::from_cells(w, h, cells).unwrap();
            let squished = g.remove_rows_cols(&g.duplicate_row_indices(), &g.duplicate_column_indices());
            // After removing duplicates of the *previous* row, no adjacent rows
            // from the original adjacent-duplicate relation remain; the squished
            // grid can still contain equal adjacent rows only if they were made
            // adjacent by column removal (acceptable: squish iterates to fixpoint
            // at a higher level). Here we only check shape sanity.
            prop_assert!(squished.width() <= w && squished.height() <= h);
            prop_assert!(squished.width() >= 1 && squished.height() >= 1);
        }
    }
}
