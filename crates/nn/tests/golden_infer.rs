//! Golden-reference tests for the packed/blocked inference engine.
//!
//! Every optimised `infer` path (panel-packed register-tiled GEMM, fused
//! bias epilogues, the shifted-copy im2col, fused GroupNorm, zero-copy
//! attention matrices) is checked against an independent naive
//! implementation written directly from the math — not against the
//! production code it shares kernels with — within `1e-5` max-abs-diff on
//! randomised shapes. The full U-Net is additionally required to be
//! *bit-identical* between the training-forward reference, the cold
//! workspace path and the prepacked warm-workspace path.

use dp_nn::{
    matmul, silu_in_place, Conv2d, GroupNorm, Linear, SelfAttention2d, Tensor, UNet, UNetConfig,
    Workspace,
};
use rand::{Rng, SeedableRng};

const TOL: f32 = 1e-5;

fn assert_close(actual: &[f32], expected: &[f32], what: &str) {
    assert_eq!(actual.len(), expected.len(), "{what}: length");
    let worst = actual
        .iter()
        .zip(expected)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(worst <= TOL, "{what}: max abs diff {worst} > {TOL}");
}

/// Textbook i-j-k product, no blocking, no packing.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Vec<f32> {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.data()[i * k + kk] * b.data()[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Direct convolution from the definition: for every output position, sum
/// the kernel window over the zero-padded input.
fn naive_conv(conv: &Conv2d, x: &Tensor, stride: usize, padding: usize) -> Vec<f32> {
    let (n, ic, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oc, k) = (conv.out_channels(), conv.kernel());
    let (oh, ow) = (conv.out_size(h), conv.out_size(w));
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for ni in 0..n {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = conv.bias.value.data()[o] as f64;
                    for c in 0..ic {
                        for ki in 0..k {
                            for kj in 0..k {
                                let iy = oy * stride + ki;
                                let ix = ox * stride + kj;
                                if iy < padding || ix < padding {
                                    continue;
                                }
                                let (iy, ix) = (iy - padding, ix - padding);
                                if iy >= h || ix >= w {
                                    continue;
                                }
                                let wv = conv.weight.value.data()[((o * ic + c) * k + ki) * k + kj];
                                acc += (wv * x.at4(ni, c, iy, ix)) as f64;
                            }
                        }
                    }
                    out[((ni * oc + o) * oh + oy) * ow + ox] = acc as f32;
                }
            }
        }
    }
    out
}

fn naive_linear(lin: &Linear, x: &Tensor) -> Vec<f32> {
    let (batch, inf, outf) = (x.shape()[0], lin.in_features(), lin.out_features());
    let mut out = vec![0.0f32; batch * outf];
    for bi in 0..batch {
        for o in 0..outf {
            let mut acc = lin.bias.value.data()[o] as f64;
            for i in 0..inf {
                acc += (x.data()[bi * inf + i] * lin.weight.value.data()[o * inf + i]) as f64;
            }
            out[bi * outf + o] = acc as f32;
        }
    }
    out
}

fn naive_groupnorm(norm: &GroupNorm, x: &Tensor) -> Vec<f32> {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let groups = norm.groups();
    let cg = c / groups;
    let mut out = vec![0.0f32; x.len()];
    for ni in 0..n {
        for g in 0..groups {
            let mut vals = Vec::new();
            for ci in g * cg..(g + 1) * cg {
                for hi in 0..h {
                    for wi in 0..w {
                        vals.push(x.at4(ni, ci, hi, wi) as f64);
                    }
                }
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            let inv = 1.0 / (var + 1e-5).sqrt();
            for ci in g * cg..(g + 1) * cg {
                for hi in 0..h {
                    for wi in 0..w {
                        let xhat = (x.at4(ni, ci, hi, wi) as f64 - mean) * inv;
                        let gamma = norm.gamma.value.data()[ci] as f64;
                        let beta = norm.beta.value.data()[ci] as f64;
                        out[((ni * c + ci) * h + hi) * w + wi] = (gamma * xhat + beta) as f32;
                    }
                }
            }
        }
    }
    out
}

#[test]
fn blocked_matmul_matches_naive_on_randomized_shapes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(100);
    for trial in 0..24 {
        let m = rng.gen_range(1usize..40);
        let k = rng.gen_range(1usize..80);
        let n = rng.gen_range(1usize..70);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let fast = matmul(&a, &b);
        assert_close(
            fast.data(),
            &naive_matmul(&a, &b),
            &format!("matmul trial {trial} ({m},{k},{n})"),
        );
    }
}

#[test]
fn conv_infer_matches_naive_on_randomized_shapes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(101);
    let mut ws = Workspace::new();
    for trial in 0..20 {
        let ic = rng.gen_range(1usize..6);
        let oc = rng.gen_range(1usize..8);
        let k = [1usize, 3, 3, 5][rng.gen_range(0usize..4)];
        let stride = rng.gen_range(1usize..3);
        let padding = rng.gen_range(0usize..=k / 2);
        let side = rng.gen_range(k.max(4)..14);
        let batch = rng.gen_range(1usize..3);
        let mut conv = Conv2d::new(ic, oc, k, stride, padding, &mut rng);
        for b in conv.bias.value.data_mut() {
            *b = rng.gen_range(-0.5..0.5);
        }
        let x = Tensor::randn(&[batch, ic, side, side], 1.0, &mut rng);
        let expected = naive_conv(&conv, &x, stride, padding);
        let label = format!("conv trial {trial} ic{ic} oc{oc} k{k} s{stride} p{padding}");
        assert_close(conv.infer(&x, &mut ws).data(), &expected, &label);
        conv.prepack();
        assert_close(
            conv.infer(&x, &mut ws).data(),
            &expected,
            &format!("{label} (prepacked)"),
        );
    }
}

#[test]
fn linear_infer_matches_naive_on_randomized_shapes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(102);
    let mut ws = Workspace::new();
    for trial in 0..20 {
        let inf = rng.gen_range(1usize..50);
        let outf = rng.gen_range(1usize..50);
        let batch = rng.gen_range(1usize..5);
        let mut lin = Linear::new(inf, outf, &mut rng);
        for b in lin.bias.value.data_mut() {
            *b = rng.gen_range(-0.5..0.5);
        }
        let x = Tensor::randn(&[batch, inf], 1.0, &mut rng);
        let expected = naive_linear(&lin, &x);
        let label = format!("linear trial {trial} {inf}->{outf}");
        assert_close(lin.infer(&x, &mut ws).data(), &expected, &label);
        lin.prepack();
        assert_close(
            lin.infer(&x, &mut ws).data(),
            &expected,
            &format!("{label} (prepacked)"),
        );
    }
}

#[test]
fn groupnorm_infer_matches_naive_on_randomized_shapes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(103);
    let mut ws = Workspace::new();
    for trial in 0..16 {
        let groups = rng.gen_range(1usize..4);
        let c = groups * rng.gen_range(1usize..5);
        let side = rng.gen_range(2usize..10);
        let batch = rng.gen_range(1usize..3);
        let mut norm = GroupNorm::new(groups, c);
        for g in norm.gamma.value.data_mut() {
            *g = rng.gen_range(0.5..1.5);
        }
        for b in norm.beta.value.data_mut() {
            *b = rng.gen_range(-0.5..0.5);
        }
        let x = Tensor::randn(&[batch, c, side, side], 2.0, &mut rng);
        assert_close(
            norm.infer(&x, &mut ws).data(),
            &naive_groupnorm(&norm, &x),
            &format!("groupnorm trial {trial} g{groups} c{c}"),
        );
    }
}

#[test]
fn attention_infer_matches_naive() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(104);
    let mut ws = Workspace::new();
    for trial in 0..8 {
        let groups = rng.gen_range(1usize..3);
        let c = groups * rng.gen_range(2usize..5);
        let side = rng.gen_range(2usize..7);
        let batch = rng.gen_range(1usize..3);
        let mut attn = SelfAttention2d::new(c, groups, &mut rng);
        let x = Tensor::randn(&[batch, c, side, side], 1.0, &mut rng);
        // Naive reference assembled from this file's own primitives:
        // norm -> 1x1 convs -> softmax(q^T k / sqrt(c)) -> v attn^T ->
        // proj -> residual. The 1x1 convs are naive_conv calls.
        let l = side * side;
        let expected: Vec<f32> = {
            let normed =
                Tensor::from_vec(x.shape(), naive_groupnorm(&attn_norm(&attn, groups), &x));
            let q = naive_conv(&attn_proj(&attn, "q"), &normed, 1, 0);
            let k = naive_conv(&attn_proj(&attn, "k"), &normed, 1, 0);
            let v = naive_conv(&attn_proj(&attn, "v"), &normed, 1, 0);
            let mut attended = vec![0.0f32; batch * c * l];
            let scale = 1.0 / (c as f32).sqrt();
            for ni in 0..batch {
                let qm = &q[ni * c * l..(ni + 1) * c * l];
                let km = &k[ni * c * l..(ni + 1) * c * l];
                let vm = &v[ni * c * l..(ni + 1) * c * l];
                // scores[i][j] = sum_ch q[ch][i] k[ch][j] * scale
                let mut rows = vec![0.0f64; l * l];
                for i in 0..l {
                    for j in 0..l {
                        let mut acc = 0.0f64;
                        for ch in 0..c {
                            acc += (qm[ch * l + i] * km[ch * l + j]) as f64;
                        }
                        rows[i * l + j] = acc * scale as f64;
                    }
                }
                // softmax rows
                for i in 0..l {
                    let row = &mut rows[i * l..(i + 1) * l];
                    let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let denom: f64 = row.iter().map(|v| (v - max).exp()).sum();
                    for v in row.iter_mut() {
                        *v = (*v - max).exp() / denom;
                    }
                }
                // out[ch][i] = sum_j v[ch][j] attn[i][j]
                for ch in 0..c {
                    for i in 0..l {
                        let mut acc = 0.0f64;
                        for j in 0..l {
                            acc += vm[ch * l + j] as f64 * rows[i * l + j];
                        }
                        attended[(ni * c + ch) * l + i] = acc as f32;
                    }
                }
            }
            let attended = Tensor::from_vec(x.shape(), attended);
            let projected = naive_conv(&attn_proj(&attn, "proj"), &attended, 1, 0);
            x.data()
                .iter()
                .zip(&projected)
                .map(|(a, b)| a + b)
                .collect()
        };
        let label = format!("attention trial {trial} c{c} side{side}");
        assert_close(attn.infer(&x, &mut ws).data(), &expected, &label);
        attn.prepack();
        assert_close(
            attn.infer(&x, &mut ws).data(),
            &expected,
            &format!("{label} (prepacked)"),
        );
    }
}

// SelfAttention2d keeps its sublayers private; rebuild equivalent naive
// views from the parameter list, whose order is documented (and verified
// by dp_nn's own tests) as norm(gamma,beta), q(w,b), k(w,b), v(w,b),
// proj(w,b).
fn attn_norm(attn: &SelfAttention2d, groups: usize) -> GroupNorm {
    let params = attn.params();
    let c = params[0].value.len();
    let mut norm = GroupNorm::new(groups, c);
    norm.gamma.value = params[0].value.clone();
    norm.beta.value = params[1].value.clone();
    norm
}

fn attn_proj(attn: &SelfAttention2d, which: &str) -> Conv2d {
    let params = attn.params();
    let idx = match which {
        "q" => 2,
        "k" => 4,
        "v" => 6,
        _ => 8,
    };
    let c = params[idx].value.shape()[0];
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut conv = Conv2d::new_1x1(c, c, &mut rng);
    conv.weight.value = params[idx].value.clone();
    conv.bias.value = params[idx + 1].value.clone();
    conv
}

#[test]
fn fused_conv_norm_silu_matches_unfused_sequence_bit_exactly() {
    // The residual-block fast path: conv -> per-channel time bias ->
    // GroupNorm -> SiLU collapsed into one GEMM epilogue must reproduce
    // the unfused four-step sequence bit-for-bit on randomised shapes,
    // prepacked or not.
    let mut rng = rand::rngs::StdRng::seed_from_u64(106);
    let mut ws = Workspace::new();
    for trial in 0..12 {
        let groups = rng.gen_range(1usize..4);
        let oc = groups * rng.gen_range(1usize..5);
        let ic = rng.gen_range(1usize..6);
        let k = [1usize, 3, 3][rng.gen_range(0usize..3)];
        let side = rng.gen_range(k.max(3)..10);
        let batch = rng.gen_range(1usize..3);
        let mut conv = Conv2d::new(ic, oc, k, 1, k / 2, &mut rng);
        for b in conv.bias.value.data_mut() {
            *b = rng.gen_range(-0.5..0.5);
        }
        let mut norm = GroupNorm::new(groups, oc);
        for g in norm.gamma.value.data_mut() {
            *g = rng.gen_range(0.5..1.5);
        }
        for b in norm.beta.value.data_mut() {
            *b = rng.gen_range(-0.5..0.5);
        }
        let x = Tensor::randn(&[batch, ic, side, side], 1.0, &mut rng);
        let tbias = Tensor::randn(&[batch, oc], 1.0, &mut rng);

        let expected = {
            let mut h = conv.infer(&x, &mut ws);
            let (oh, ow) = (h.shape()[2], h.shape()[3]);
            for ni in 0..batch {
                for ci in 0..oc {
                    let b = tbias.data()[ni * oc + ci];
                    let start = (ni * oc + ci) * oh * ow;
                    for v in &mut h.data_mut()[start..start + oh * ow] {
                        *v += b;
                    }
                }
            }
            let mut out = norm.infer(&h, &mut ws);
            silu_in_place(&mut out);
            out
        };

        let label = format!("fused conv trial {trial} ic{ic} oc{oc} k{k} g{groups}");
        for prepacked in [false, true] {
            if prepacked {
                conv.prepack();
            }
            let fused = conv.infer_bias_norm_silu(&x, &tbias, &norm, &mut ws);
            assert_eq!(fused, expected, "{label} (prepacked: {prepacked})");
            ws.recycle(fused);
        }
    }
}

#[test]
fn full_unet_paths_agree_bit_exactly_on_randomized_configs() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(105);
    for trial in 0..4 {
        let base = 2 * rng.gen_range(1usize..4);
        let levels = rng.gen_range(1usize..3);
        let config = UNetConfig {
            in_channels: rng.gen_range(1usize..4),
            out_channels: rng.gen_range(1usize..5),
            base_channels: base,
            channel_mults: (0..levels).map(|i| i + 1).collect(),
            num_res_blocks: rng.gen_range(1usize..3),
            attn_resolutions: if rng.gen_bool(0.5) {
                vec![levels - 1]
            } else {
                vec![]
            },
            time_dim: 2 * rng.gen_range(2usize..6),
            groups: 2,
            dropout: 0.0,
        };
        let mut net = UNet::new(&config, &mut rng);
        let side = 4 << (levels - 1);
        let batch = rng.gen_range(1usize..3);
        let x = Tensor::randn(&[batch, config.in_channels, side, side], 1.0, &mut rng);
        let steps: Vec<usize> = (0..batch).map(|_| rng.gen_range(0usize..1000)).collect();

        let reference = net.forward(&x, &steps);
        let mut ws = Workspace::new();
        // Cold workspace, no prepack.
        assert_eq!(
            net.infer(&x, &steps, &mut ws),
            reference,
            "trial {trial} cold"
        );
        // Warm workspace.
        assert_eq!(
            net.infer(&x, &steps, &mut ws),
            reference,
            "trial {trial} warm"
        );
        // Prepacked weights.
        net.prepack();
        assert_eq!(
            net.infer(&x, &steps, &mut ws),
            reference,
            "trial {trial} prepacked"
        );
    }
}

#[test]
fn batched_unet_infer_is_bit_identical_per_item() {
    // The contract the micro-batched diffusion sampler stands on: item `i`
    // of a batched `infer` call must equal a single-item call on the same
    // input bit-for-bit, for both mixed per-item steps and the lock-step
    // (all steps equal) case, prepacked or not.
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let config = UNetConfig {
        in_channels: 3,
        out_channels: 6,
        base_channels: 8,
        channel_mults: vec![1, 2],
        num_res_blocks: 1,
        attn_resolutions: vec![1],
        time_dim: 8,
        groups: 2,
        dropout: 0.0,
    };
    let mut net = UNet::new(&config, &mut rng);
    for prepacked in [false, true] {
        if prepacked {
            net.prepack();
        }
        for batch in [1usize, 3, 8] {
            let x = Tensor::randn(&[batch, 3, 8, 8], 1.0, &mut rng);
            let mixed: Vec<usize> = (0..batch).map(|_| rng.gen_range(1usize..100)).collect();
            let lockstep = vec![17usize; batch];
            for steps in [mixed, lockstep] {
                let mut ws = Workspace::new();
                let batched = net.infer(&x, &steps, &mut ws);
                let item_len = 6 * 8 * 8;
                for ni in 0..batch {
                    let item = Tensor::from_vec(
                        &[1, 3, 8, 8],
                        x.data()[ni * 3 * 64..(ni + 1) * 3 * 64].to_vec(),
                    );
                    let single = net.infer(&item, &steps[ni..ni + 1], &mut ws);
                    assert_eq!(
                        &batched.data()[ni * item_len..(ni + 1) * item_len],
                        single.data(),
                        "batch {batch} item {ni} (prepacked: {prepacked}) diverged"
                    );
                    ws.recycle(single);
                }
            }
        }
    }
}
