//! Blocked GEMM, packing and transpose kernels for the compute hot path.
//!
//! The multiply is organised as a register-blocked micro-kernel over
//! panel-packed A: rows of A are packed in groups of [`MR`] so the inner
//! loop reads one contiguous `MR`-wide column of A per `k` step, streams
//! one row of B, and accumulates `MR` output rows simultaneously. The
//! inner loop is branch-free (no zero-skip) and written so LLVM
//! autovectorises it. Bias addition is fused into the epilogue (the
//! output is *initialised* with the bias, then accumulated into), which
//! the convolution and linear layers use to avoid a separate pass.
//!
//! # Threading policy
//!
//! Large multiplies split their row range across `std::thread::scope`
//! threads. The thread budget is `min(available_parallelism,
//! DP_MAX_THREADS)` (the env var is read once per process), and inner
//! parallelism can be disabled for a region with
//! [`with_inner_gemm_parallelism`] — `GenerationSession` workers do this
//! so data-parallel GEMM threads are never nested inside already-parallel
//! sampling workers (thread oversubscription). Row partitioning never
//! changes per-element accumulation order, so results are bit-identical
//! at every thread count.

use crate::activation::silu_val;
use crate::norm::group_stats;
use crate::Tensor;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Micro-kernel height: rows of A (and of the output) processed together.
pub(crate) const MR: usize = 4;

/// Work threshold (`m * k * n`) below which a multiply stays serial.
const PARALLEL_THRESHOLD: usize = 1 << 18;

/// Programmatic thread-cap override; `0` means "no override, use the
/// env-derived default". See [`set_gemm_thread_cap`].
static CAP_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Hardware parallelism, looked up once.
fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// The env-derived default thread budget:
/// `min(available_parallelism, DP_MAX_THREADS)`, where an unset,
/// unparsable or zero `DP_MAX_THREADS` means "no cap".
///
/// **Read once per process**: the first GEMM (or cap query) snapshots the
/// variable, and later `std::env::set_var` calls have no effect. Tests and
/// embedders that need to change the cap at runtime must use
/// [`set_gemm_thread_cap`] instead of mutating the environment.
fn env_default_threads() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        match std::env::var("DP_MAX_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n > 0 => n.min(hardware_threads()),
            _ => hardware_threads(),
        }
    })
}

/// Overrides the inner-GEMM thread cap for this process; `None` restores
/// the env-derived default. Unlike `DP_MAX_THREADS` — which is snapshotted
/// **once per process** at the first multiply — the override takes effect
/// immediately, so it is the supported way to change the cap after
/// start-up (the value is still clamped to the hardware parallelism).
///
/// `Some(0)` mirrors the env var's "zero means no cap" rule and is
/// equivalent to `None`; to force serial multiplies pass `Some(1)` (or
/// scope the region with [`with_inner_gemm_parallelism`]).
///
/// Thread-count changes never change results: row partitioning preserves
/// per-element accumulation order, so GEMM output is bit-identical at
/// every cap.
pub fn set_gemm_thread_cap(cap: Option<usize>) {
    CAP_OVERRIDE.store(cap.unwrap_or(0), Ordering::Relaxed);
}

/// The effective inner-GEMM thread budget currently in force: the
/// [`set_gemm_thread_cap`] override when one is set, otherwise the
/// once-per-process `min(available_parallelism, DP_MAX_THREADS)` default.
pub fn gemm_thread_cap() -> usize {
    match CAP_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_default_threads(),
        n => n.min(hardware_threads()),
    }
}

fn max_threads() -> usize {
    gemm_thread_cap()
}

thread_local! {
    static INNER_PARALLELISM_DISABLED: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with inner GEMM data-parallelism enabled or disabled **on the
/// current thread**, restoring the previous setting afterwards (also on
/// panic).
///
/// Batch engines that already parallelise across work items (one sampler
/// per worker thread) wrap their worker loops in
/// `with_inner_gemm_parallelism(false, ..)` so a large multiply inside a
/// worker never spawns a second layer of threads.
pub fn with_inner_gemm_parallelism<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            INNER_PARALLELISM_DISABLED.with(|c| c.set(self.0));
        }
    }
    let prev = INNER_PARALLELISM_DISABLED.with(|c| c.replace(!enabled));
    let _restore = Restore(prev);
    f()
}

fn inner_parallelism_enabled() -> bool {
    !INNER_PARALLELISM_DISABLED.with(|c| c.get())
}

/// How the output is initialised before accumulation, and (for the fused
/// variants) what elementwise finish pass runs over the still-hot output
/// once accumulation ends.
///
/// The fused variants exist so the layers between GEMMs — SiLU,
/// time-bias broadcast, GroupNorm — never need a separate sweep over a
/// cold tensor. Their finish passes reuse the exact scalar arithmetic of
/// the standalone layers ([`crate::silu_in_place`], `GroupNorm::infer`),
/// applied to identical f32 inputs in identical order, so a fused call is
/// **bit-identical** to the unfused layer sequence it replaces.
#[derive(Clone, Copy)]
pub(crate) enum Epilogue<'a> {
    /// Plain product: output starts at zero.
    Zero,
    /// `out[i][j]` starts at `bias[i]` (convolution: one bias per output
    /// channel row).
    BiasPerRow(&'a [f32]),
    /// `out[i][j]` starts at `bias[j]` (linear: one bias per output
    /// feature column).
    BiasPerCol(&'a [f32]),
    /// [`Epilogue::BiasPerCol`] followed by an in-register SiLU finish:
    /// `out[i][j] = silu(bias[j] + sum)` — a linear layer feeding an
    /// activation (the time-embedding MLP's hidden layer).
    BiasSiluPerCol(&'a [f32]),
    /// [`Epilogue::BiasPerRow`] followed by the full residual-block
    /// mid-section as a finish pass: optional per-row extra bias (the
    /// broadcast time projection), GroupNorm over contiguous row groups,
    /// then SiLU. See [`GroupNormSilu`].
    BiasGroupNormSilu(GroupNormSilu<'a>),
}

/// Parameters of the fused bias + GroupNorm + SiLU finish pass.
///
/// The GEMM output is an `(m, n)` matrix whose rows are output channels of
/// one batch item, so "GroupNorm over `(item, group)`" is exactly a
/// normalisation over each contiguous block of `m / groups` rows — the
/// same memory-order statistics `GroupNorm::infer` computes.
#[derive(Clone, Copy)]
pub(crate) struct GroupNormSilu<'a> {
    /// Per-row bias the output is initialised with (conv bias).
    pub bias: &'a [f32],
    /// Optional per-row additive term applied after accumulation and
    /// before the statistics (the residual block's time-embedding
    /// projection, broadcast over each row).
    pub row_extra: Option<&'a [f32]>,
    /// Per-row GroupNorm scale.
    pub gamma: &'a [f32],
    /// Per-row GroupNorm shift.
    pub beta: &'a [f32],
    /// Number of row groups; must divide `m`.
    pub groups: usize,
    /// Variance stabiliser.
    pub eps: f32,
}

/// Runs the elementwise finish pass of the fused epilogues over the fully
/// accumulated `(m, n)` output. Serial by design: it runs after the
/// thread-scope join, touches each element once, and must preserve the
/// exact accumulation order of the standalone layers it replaces.
fn apply_epilogue_finish(epilogue: &Epilogue<'_>, out: &mut [f32], m: usize, n: usize) {
    match epilogue {
        Epilogue::Zero | Epilogue::BiasPerRow(_) | Epilogue::BiasPerCol(_) => {}
        Epilogue::BiasSiluPerCol(_) => {
            for v in out.iter_mut() {
                *v = silu_val(*v);
            }
        }
        Epilogue::BiasGroupNormSilu(gns) => {
            if let Some(extra) = gns.row_extra {
                for (row, &ev) in out.chunks_mut(n).zip(extra) {
                    for v in row {
                        *v += ev;
                    }
                }
            }
            let cg = m / gns.groups;
            let group_len = (cg * n) as f32;
            for (g, chunk) in out.chunks_mut(cg * n).enumerate() {
                let (mean, inv_std) = group_stats(chunk, group_len, gns.eps);
                for (ci, row) in chunk.chunks_mut(n).enumerate() {
                    let gamma = gns.gamma[g * cg + ci];
                    let beta = gns.beta[g * cg + ci];
                    for v in row {
                        let xhat = (*v - mean) * inv_std;
                        *v = silu_val(gamma * xhat + beta);
                    }
                }
            }
        }
    }
}

/// Length of the packed representation of an `(m, k)` A matrix.
pub(crate) fn packed_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k
}

/// Packs row-major `a` (`m x k`) into `MR`-row panels: element `(i, kk)`
/// lands at `panel_base + kk * MR + (i % MR)`, with zero padding for the
/// tail rows, so the micro-kernel reads A contiguously.
pub(crate) fn pack_a_into(a: &[f32], m: usize, k: usize, dst: &mut [f32]) {
    assert_eq!(dst.len(), packed_len(m, k), "packed destination length");
    assert_eq!(a.len(), m * k, "matrix data length");
    for bi in 0..m.div_ceil(MR) {
        let i0 = bi * MR;
        let rows = MR.min(m - i0);
        let panel = &mut dst[bi * MR * k..(bi + 1) * MR * k];
        for r in 0..MR {
            if r < rows {
                let a_row = &a[(i0 + r) * k..(i0 + r + 1) * k];
                for (kk, &v) in a_row.iter().enumerate() {
                    panel[kk * MR + r] = v;
                }
            } else {
                for kk in 0..k {
                    panel[kk * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Computes `out (m x n) = unpack(packed_a) (m x k) * b (k x n)` plus the
/// fused [`Epilogue`], splitting row panels across threads when the work
/// is large enough and inner parallelism is allowed.
pub(crate) fn gemm_packed(
    packed_a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    epilogue: Epilogue<'_>,
) {
    assert_eq!(packed_a.len(), packed_len(m, k), "packed A length");
    assert_eq!(b.len(), k * n, "B length");
    assert_eq!(out.len(), m * n, "output length");
    match epilogue {
        Epilogue::Zero => out.fill(0.0),
        Epilogue::BiasPerRow(bias) => {
            assert_eq!(bias.len(), m, "per-row bias length");
            for (row, &bv) in out.chunks_mut(n).zip(bias) {
                row.fill(bv);
            }
        }
        Epilogue::BiasPerCol(bias) | Epilogue::BiasSiluPerCol(bias) => {
            assert_eq!(bias.len(), n, "per-column bias length");
            for row in out.chunks_mut(n) {
                row.copy_from_slice(bias);
            }
        }
        Epilogue::BiasGroupNormSilu(gns) => {
            assert_eq!(gns.bias.len(), m, "per-row bias length");
            assert_eq!(gns.gamma.len(), m, "gamma length");
            assert_eq!(gns.beta.len(), m, "beta length");
            assert!(
                gns.groups > 0 && m.is_multiple_of(gns.groups),
                "groups must divide output rows"
            );
            if let Some(extra) = gns.row_extra {
                assert_eq!(extra.len(), m, "row extra length");
            }
            for (row, &bv) in out.chunks_mut(n).zip(gns.bias) {
                row.fill(bv);
            }
        }
    }

    let blocks = m.div_ceil(MR);
    let threads = if m * k * n >= PARALLEL_THRESHOLD && inner_parallelism_enabled() {
        max_threads().min(blocks).max(1)
    } else {
        1
    };
    if threads <= 1 {
        gemm_blocks(packed_a, b, out, m, k, n);
        apply_epilogue_finish(&epilogue, out, m, n);
        return;
    }
    let blocks_per = blocks.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in out.chunks_mut(blocks_per * MR * n).enumerate() {
            let row0 = chunk_idx * blocks_per * MR;
            let rows = chunk.len() / n;
            let panel = &packed_a[row0 * k..];
            scope.spawn(move || gemm_blocks(panel, b, chunk, rows, k, n));
        }
    });
    apply_epilogue_finish(&epilogue, out, m, n);
}

/// Micro-kernel width: output columns accumulated in registers per tile.
/// `MR x NR = 64` f32 accumulators — sized so the tile fits the vector
/// register file once the build targets a 256/512-bit ISA (see the
/// `target-cpu=native` note in `.cargo/config.toml`).
const NR: usize = 16;

/// Serial panel sweep over `rows` output rows; `packed_a` starts at the
/// panel block of the first of those rows.
fn gemm_blocks(packed_a: &[f32], b: &[f32], out: &mut [f32], rows: usize, k: usize, n: usize) {
    let mut done = 0usize;
    while done < rows {
        let block_rows = MR.min(rows - done);
        let panel = &packed_a[(done / MR) * MR * k..][..MR * k];
        let out_block = &mut out[done * n..(done + block_rows) * n];
        let mut j0 = 0usize;
        while j0 < n {
            let width = NR.min(n - j0);
            let acc = if width == NR {
                tile_kernel::<NR>(panel, b, k, n, j0)
            } else {
                tile_kernel_tail(panel, b, k, n, j0, width)
            };
            for (r, acc_row) in acc.iter().enumerate().take(block_rows) {
                let orow = &mut out_block[r * n + j0..r * n + j0 + width];
                for (o, &v) in orow.iter_mut().zip(acc_row) {
                    *o += v;
                }
            }
            j0 += width;
        }
        done += block_rows;
    }
}

/// The register-tiled core: an `MR x W` accumulator block lives entirely
/// in registers across the full `k` loop, so each step touches only one
/// `MR`-wide column of packed A and one `W`-wide row segment of B — no
/// output traffic until the final write-back. Branch-free and
/// autovectorisation-friendly (the const width lets LLVM fully unroll).
#[inline]
fn tile_kernel<const W: usize>(
    panel: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    j0: usize,
) -> [[f32; W]; MR] {
    let mut acc = [[0.0f32; W]; MR];
    for kk in 0..k {
        let ap = &panel[kk * MR..kk * MR + MR];
        let bs = &b[kk * n + j0..kk * n + j0 + W];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = ap[r];
            for (a, &bv) in acc_row.iter_mut().zip(bs) {
                *a += ar * bv;
            }
        }
    }
    acc
}

/// Variable-width tail tile for the last `n % NR` columns.
fn tile_kernel_tail(
    panel: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    j0: usize,
    width: usize,
) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let ap = &panel[kk * MR..kk * MR + MR];
        let bs = &b[kk * n + j0..kk * n + j0 + width];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = ap[r];
            for (a, &bv) in acc_row.iter_mut().zip(bs) {
                *a += ar * bv;
            }
        }
    }
    acc
}

/// Matrix product `a (m x k) * b (k x n) -> (m x n)`.
///
/// Allocating convenience wrapper over the packed kernel; the inference
/// layers call the packed kernel directly with workspace-owned buffers
/// instead.
///
/// # Panics
///
/// Panics when either input is not 2-D or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");

    let mut panel = vec![0.0f32; packed_len(m, k)];
    pack_a_into(a.data(), m, k, &mut panel);
    let mut out = vec![0.0f32; m * n];
    gemm_packed(&panel, b.data(), &mut out, m, k, n, Epilogue::Zero);
    Tensor::from_vec(&[m, n], out)
}

/// Cache-blocked transpose of row-major `a` (`rows x cols`) into `out`
/// (`cols x rows`).
pub(crate) fn transpose_into(a: &[f32], rows: usize, cols: usize, out: &mut [f32]) {
    assert_eq!(a.len(), rows * cols, "input length");
    assert_eq!(out.len(), rows * cols, "output length");
    const TILE: usize = 32;
    for i0 in (0..rows).step_by(TILE) {
        let i1 = (i0 + TILE).min(rows);
        for j0 in (0..cols).step_by(TILE) {
            let j1 = (j0 + TILE).min(cols);
            for i in i0..i1 {
                for j in j0..j1 {
                    out[j * rows + i] = a[i * cols + j];
                }
            }
        }
    }
}

/// Transposes a 2-D tensor.
///
/// # Panics
///
/// Panics when the input is not 2-D.
pub fn transpose(a: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "transpose input must be 2-D");
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let mut out = vec![0.0f32; m * n];
    transpose_into(a.data(), m, n, &mut out);
    Tensor::from_vec(&[n, m], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Textbook i-j-k reference product.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Vec<f32> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            eye.data_mut()[i * 5 + i] = 1.0;
        }
        let c = matmul(&a, &eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn blocked_kernel_matches_naive_on_odd_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        // Shapes exercising every tail path of the MR blocking.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 7),
            (4, 4, 4),
            (5, 9, 2),
            (7, 13, 17),
            (16, 36, 256),
        ] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let c = matmul(&a, &b);
            for (x, y) in c.data().iter().zip(naive_matmul(&a, &b)) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn fused_bias_epilogues() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let (m, k, n) = (5, 7, 6);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let row_bias: Vec<f32> = (0..m).map(|i| i as f32).collect();
        let col_bias: Vec<f32> = (0..n).map(|j| 10.0 + j as f32).collect();
        let mut panel = vec![0.0f32; packed_len(m, k)];
        pack_a_into(a.data(), m, k, &mut panel);
        let base = naive_matmul(&a, &b);

        let mut out = vec![0.0f32; m * n];
        gemm_packed(
            &panel,
            b.data(),
            &mut out,
            m,
            k,
            n,
            Epilogue::BiasPerRow(&row_bias),
        );
        for i in 0..m {
            for j in 0..n {
                assert!((out[i * n + j] - (base[i * n + j] + i as f32)).abs() < 1e-4);
            }
        }
        gemm_packed(
            &panel,
            b.data(),
            &mut out,
            m,
            k,
            n,
            Epilogue::BiasPerCol(&col_bias),
        );
        for i in 0..m {
            for j in 0..n {
                assert!((out[i * n + j] - (base[i * n + j] + 10.0 + j as f32)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn fused_epilogues_match_unfused_passes_bit_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let (m, k, n) = (8, 7, 10);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let col_bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.3 - 1.0).collect();
        let row_bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.2 - 0.5).collect();
        let extra: Vec<f32> = (0..m).map(|i| 0.1 * i as f32).collect();
        let gamma: Vec<f32> = (0..m).map(|i| 1.0 + 0.05 * i as f32).collect();
        let beta: Vec<f32> = (0..m).map(|i| -0.2 + 0.01 * i as f32).collect();
        let mut panel = vec![0.0f32; packed_len(m, k)];
        pack_a_into(a.data(), m, k, &mut panel);

        // BiasSiluPerCol == BiasPerCol then elementwise SiLU.
        let mut fused = vec![0.0f32; m * n];
        gemm_packed(
            &panel,
            b.data(),
            &mut fused,
            m,
            k,
            n,
            Epilogue::BiasSiluPerCol(&col_bias),
        );
        let mut reference = vec![0.0f32; m * n];
        gemm_packed(
            &panel,
            b.data(),
            &mut reference,
            m,
            k,
            n,
            Epilogue::BiasPerCol(&col_bias),
        );
        for v in reference.iter_mut() {
            *v = crate::activation::silu_val(*v);
        }
        assert_eq!(fused, reference);

        // BiasGroupNormSilu == BiasPerRow, then row extra, per-group
        // normalisation over contiguous row blocks, affine, SiLU.
        let groups = 4;
        let mut fused = vec![0.0f32; m * n];
        gemm_packed(
            &panel,
            b.data(),
            &mut fused,
            m,
            k,
            n,
            Epilogue::BiasGroupNormSilu(GroupNormSilu {
                bias: &row_bias,
                row_extra: Some(&extra),
                gamma: &gamma,
                beta: &beta,
                groups,
                eps: 1e-5,
            }),
        );
        let mut reference = vec![0.0f32; m * n];
        gemm_packed(
            &panel,
            b.data(),
            &mut reference,
            m,
            k,
            n,
            Epilogue::BiasPerRow(&row_bias),
        );
        for (row, &ev) in reference.chunks_mut(n).zip(&extra) {
            for v in row {
                *v += ev;
            }
        }
        let cg = m / groups;
        for (g, chunk) in reference.chunks_mut(cg * n).enumerate() {
            let (mean, inv_std) = crate::norm::group_stats(chunk, (cg * n) as f32, 1e-5);
            for (ci, row) in chunk.chunks_mut(n).enumerate() {
                for v in row {
                    let xhat = (*v - mean) * inv_std;
                    *v = crate::activation::silu_val(gamma[g * cg + ci] * xhat + beta[g * cg + ci]);
                }
            }
        }
        assert_eq!(fused, reference);
    }

    #[test]
    fn parallel_path_matches_serial_bit_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // Big enough to trip the parallel threshold on multi-core hosts.
        let a = Tensor::randn(&[128, 64], 1.0, &mut rng);
        let b = Tensor::randn(&[64, 128], 1.0, &mut rng);
        let c = matmul(&a, &b);
        let serial = with_inner_gemm_parallelism(false, || matmul(&a, &b));
        assert_eq!(c, serial, "thread split must not change results");
    }

    #[test]
    fn thread_cap_override_takes_effect_without_env_mutation() {
        // The env default is snapshotted once per process, so this test
        // deliberately avoids `std::env::set_var` (its effect would depend
        // on whether another test already forced the snapshot). The
        // programmatic override must work regardless of that order.
        let default = gemm_thread_cap();
        assert!(default >= 1);
        set_gemm_thread_cap(Some(1));
        assert_eq!(gemm_thread_cap(), 1);
        // Requests beyond the hardware are clamped, never amplified.
        set_gemm_thread_cap(Some(usize::MAX));
        assert!(gemm_thread_cap() <= hardware_threads());
        // Capped runs stay bit-identical to uncapped ones.
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let a = Tensor::randn(&[96, 64], 1.0, &mut rng);
        let b = Tensor::randn(&[64, 96], 1.0, &mut rng);
        set_gemm_thread_cap(Some(1));
        let capped = matmul(&a, &b);
        set_gemm_thread_cap(None);
        assert_eq!(gemm_thread_cap(), default);
        assert_eq!(matmul(&a, &b), capped);
    }

    #[test]
    fn inner_parallelism_scope_restores() {
        assert!(inner_parallelism_enabled());
        with_inner_gemm_parallelism(false, || {
            assert!(!inner_parallelism_enabled());
            with_inner_gemm_parallelism(true, || assert!(inner_parallelism_enabled()));
            assert!(!inner_parallelism_enabled());
        });
        assert!(inner_parallelism_enabled());
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[4, 7], 1.0, &mut rng);
        assert_eq!(transpose(&transpose(&a)), a);
        // A shape larger than one transpose tile.
        let big = Tensor::randn(&[40, 65], 1.0, &mut rng);
        assert_eq!(transpose(&transpose(&big)), big);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }
}
