use crate::Tensor;

/// Matrix product `a (m x k) * b (k x n) -> (m x n)`.
///
/// Uses an `i-k-j` loop order for cache-friendly access and splits the row
/// range across threads (`std::thread::scope`) when the work is large
/// enough to amortise the spawn cost.
///
/// # Panics
///
/// Panics when either input is not 2-D or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");

    let mut out = vec![0.0f32; m * n];
    let a_data = a.data();
    let b_data = b.data();

    const PARALLEL_THRESHOLD: usize = 1 << 18; // ~0.26 MFLOP
    let work = m * k * n;
    if work < PARALLEL_THRESHOLD {
        gemm_rows(a_data, b_data, &mut out, 0, m, k, n);
    } else {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(m)
            .max(1);
        let rows_per = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = chunk_idx * rows_per;
                let rows = chunk.len() / n;
                scope.spawn(move || {
                    gemm_rows(a_data, b_data, chunk, row0, rows, k, n);
                });
            }
        });
    }
    Tensor::from_vec(&[m, n], out)
}

/// Computes `rows` rows of the product starting at global row `row0`,
/// writing into `out` (whose row 0 corresponds to global `row0`).
fn gemm_rows(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, rows: usize, k: usize, n: usize) {
    for i in 0..rows {
        let a_row = &a[(row0 + i) * k..(row0 + i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &b_kj) in out_row.iter_mut().zip(b_row) {
                *o += a_ik * b_kj;
            }
        }
    }
}

/// Transposes a 2-D tensor.
///
/// # Panics
///
/// Panics when the input is not 2-D.
pub fn transpose(a: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "transpose input must be 2-D");
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a.data()[i * n + j];
        }
    }
    Tensor::from_vec(&[n, m], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            eye.data_mut()[i * 5 + i] = 1.0;
        }
        let c = matmul(&a, &eye);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // Big enough to trip the parallel threshold.
        let a = Tensor::randn(&[128, 64], 1.0, &mut rng);
        let b = Tensor::randn(&[64, 128], 1.0, &mut rng);
        let c = matmul(&a, &b);
        // Serial reference.
        let mut reference = vec![0.0f32; 128 * 128];
        gemm_rows(a.data(), b.data(), &mut reference, 0, 128, 64, 128);
        for (x, y) in c.data().iter().zip(&reference) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Tensor::randn(&[4, 7], 1.0, &mut rng);
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }
}
