use crate::Tensor;

/// SiLU (swish) activation `x * sigmoid(x)` applied element-wise.
pub fn silu(x: &Tensor) -> Tensor {
    let data = x.data().iter().map(|&v| v * sigmoid(v)).collect();
    Tensor::from_vec(x.shape(), data)
}

/// In-place SiLU: `x[i] = x[i] * sigmoid(x[i])` — same arithmetic as
/// [`silu`] without the allocation, for the workspace-backed inference
/// path.
pub fn silu_in_place(x: &mut Tensor) {
    for v in x.data_mut() {
        *v = silu_val(*v);
    }
}

/// Scalar SiLU, shared by every activation path (including the fused GEMM
/// epilogues) so they all stay bit-equal: `v * sigmoid(v)` with `sigmoid`
/// evaluated exactly as the layer-level code always has.
#[inline]
pub(crate) fn silu_val(v: f32) -> f32 {
    v * sigmoid(v)
}

/// Gradient of SiLU: given the forward input `x` and upstream gradient
/// `grad_out`, returns `grad_out * d silu(x)/dx`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn silu_backward(x: &Tensor, grad_out: &Tensor) -> Tensor {
    assert_eq!(x.shape(), grad_out.shape(), "shape mismatch");
    let data = x
        .data()
        .iter()
        .zip(grad_out.data())
        .map(|(&v, &g)| {
            let s = sigmoid(v);
            g * (s * (1.0 + v * (1.0 - s)))
        })
        .collect();
    Tensor::from_vec(x.shape(), data)
}

/// A SiLU layer caching its input for the backward pass.
#[derive(Debug, Default, Clone)]
pub struct Silu {
    cache: Option<Tensor>,
}

impl Silu {
    /// Creates the layer.
    pub fn new() -> Self {
        Silu { cache: None }
    }

    /// Forward pass, caching the input.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache = Some(x.clone());
        silu(x)
    }

    /// Backward pass using the cached input.
    ///
    /// # Panics
    ///
    /// Panics when called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.as_ref().expect("backward before forward");
        silu_backward(x, grad_out)
    }
}

/// Numerically stable row-wise softmax over a 2-D tensor.
///
/// # Panics
///
/// Panics when the input is not 2-D.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 2, "softmax_rows expects 2-D input");
    let mut out = x.clone();
    softmax_rows_in_place(out.data_mut(), x.shape()[1]);
    out
}

/// In-place row-wise softmax over row-major data with `cols` columns —
/// same arithmetic (and accumulation order) as [`softmax_rows`] without
/// the allocation.
///
/// # Panics
///
/// Panics when the data length is not a multiple of `cols`.
pub fn softmax_rows_in_place(data: &mut [f32], cols: usize) {
    assert!(
        cols > 0 && data.len().is_multiple_of(cols),
        "data length must be a multiple of the column count"
    );
    for row in data.chunks_mut(cols) {
        softmax_row(row);
    }
}

/// Row-wise softmax fused with a uniform logit scale: equivalent to
/// multiplying every element by `scale` and then calling
/// [`softmax_rows_in_place`], bit for bit, but the scale rides along in
/// the max pass instead of needing its own sweep. This is the attention
/// score path (`softmax(q^T k / sqrt(c))`).
///
/// # Panics
///
/// Panics when the data length is not a multiple of `cols`.
pub fn scale_and_softmax_rows_in_place(data: &mut [f32], cols: usize, scale: f32) {
    assert!(
        cols > 0 && data.len().is_multiple_of(cols),
        "data length must be a multiple of the column count"
    );
    for row in data.chunks_mut(cols) {
        let mut max = f32::NEG_INFINITY;
        for v in row.iter_mut() {
            *v *= scale;
            max = max.max(*v);
        }
        exp_and_normalise(row, max);
    }
}

/// One softmax row, split into three slice passes (max, exp, divide) so
/// each loop body is branch-free and a straight-line candidate for the
/// autovectoriser. The accumulation order of every pass matches the
/// original single-loop form (sequential left-to-right), so results are
/// bit-identical.
#[inline]
fn softmax_row(row: &mut [f32]) {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    exp_and_normalise(row, max);
}

#[inline]
fn exp_and_normalise(row: &mut [f32], max: f32) {
    for v in row.iter_mut() {
        *v = (*v - max).exp();
    }
    let mut denom = 0.0f32;
    for &v in row.iter() {
        denom += v;
    }
    // Division (not multiplication by the reciprocal) keeps the exact
    // rounding of the historical implementation.
    for v in row.iter_mut() {
        *v /= denom;
    }
}

/// Backward of row-wise softmax: given the softmax output `y` and upstream
/// gradient `grad_out`, returns the gradient with respect to the logits.
///
/// # Panics
///
/// Panics on shape mismatch or non-2-D input.
pub fn softmax_rows_backward(y: &Tensor, grad_out: &Tensor) -> Tensor {
    assert_eq!(y.shape(), grad_out.shape(), "shape mismatch");
    assert_eq!(y.shape().len(), 2, "softmax_rows expects 2-D input");
    let (rows, cols) = (y.shape()[0], y.shape()[1]);
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let yr = &y.data()[r * cols..(r + 1) * cols];
        let gr = &grad_out.data()[r * cols..(r + 1) * cols];
        let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
        for ((o, &yv), &gv) in out[r * cols..(r + 1) * cols].iter_mut().zip(yr).zip(gr) {
            *o = yv * (gv - dot);
        }
    }
    Tensor::from_vec(&[rows, cols], out)
}

fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::finite_diff;
    use rand::SeedableRng;

    #[test]
    fn silu_known_values() {
        let x = Tensor::from_vec(&[3], vec![0.0, 10.0, -10.0]);
        let y = silu(&x);
        assert!((y.data()[0] - 0.0).abs() < 1e-6);
        assert!((y.data()[1] - 10.0).abs() < 1e-3);
        assert!(y.data()[2].abs() < 1e-3);
    }

    #[test]
    fn silu_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let x = Tensor::randn(&[17], 1.0, &mut rng);
        let grad_out = Tensor::full(&[17], 1.0);
        let analytic = silu_backward(&x, &grad_out);
        let numeric = finite_diff(&x, |t| silu(t).sum());
        for (a, n) in analytic.data().iter().zip(numeric.data()) {
            assert!((a - n).abs() < 1e-2, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = Tensor::randn(&[4, 9], 3.0, &mut rng);
        let y = softmax_rows(&x);
        for r in 0..4 {
            let s: f32 = y.data()[r * 9..(r + 1) * 9].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn scaled_softmax_matches_scale_then_softmax_bit_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x = Tensor::randn(&[6, 17], 2.0, &mut rng);
        let scale = 0.37f32;
        let mut fused: Vec<f32> = x.data().to_vec();
        scale_and_softmax_rows_in_place(&mut fused, 17, scale);
        let mut reference: Vec<f32> = x.data().to_vec();
        for v in reference.iter_mut() {
            *v *= scale;
        }
        softmax_rows_in_place(&mut reference, 17);
        assert_eq!(fused, reference);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = Tensor::randn(&[2, 5], 1.0, &mut rng);
        // Loss: weighted sum of softmax outputs.
        let w = Tensor::randn(&[2, 5], 1.0, &mut rng);
        let y = softmax_rows(&x);
        let analytic = softmax_rows_backward(&y, &w);
        let w2 = w.clone();
        let numeric = finite_diff(&x, move |t| {
            softmax_rows(t)
                .data()
                .iter()
                .zip(w2.data())
                .map(|(a, b)| a * b)
                .sum()
        });
        for (a, n) in analytic.data().iter().zip(numeric.data()) {
            assert!((a - n).abs() < 1e-2, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn silu_layer_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let mut layer = Silu::new();
        let y = layer.forward(&x);
        assert_eq!(y, silu(&x));
        let g = layer.backward(&Tensor::full(&[2, 3], 1.0));
        assert_eq!(g.shape(), x.shape());
    }
}
