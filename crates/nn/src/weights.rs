//! Model weight persistence.
//!
//! The paper trains for 17 hours on 8 GPUs and then samples from the frozen
//! model; any practical reproduction needs to decouple training from
//! sampling the same way. This module serialises every parameter of a
//! network (in the stable `params_mut` order) into a self-describing
//! little-endian binary blob and restores it with full shape checking.

use crate::Param;
use std::fmt;

/// Magic bytes identifying a DiffPattern weight blob.
const MAGIC: &[u8; 8] = b"DPWEIGHT";
/// Format version.
const VERSION: u32 = 1;

/// Error type for weight (de)serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WeightsError {
    /// The blob does not start with the expected magic/version.
    BadHeader,
    /// The blob ends before the declared data.
    Truncated,
    /// The blob's parameter list does not match the network.
    ParameterMismatch {
        /// Parameter index at which the mismatch was detected.
        index: usize,
        /// Shape expected by the network.
        expected: Vec<usize>,
        /// Shape found in the blob.
        found: Vec<usize>,
    },
    /// The blob declares a different parameter count than the network has.
    CountMismatch {
        /// Parameters in the network.
        expected: usize,
        /// Parameters in the blob.
        found: usize,
    },
}

impl fmt::Display for WeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightsError::BadHeader => write!(f, "not a DiffPattern weight blob"),
            WeightsError::Truncated => write!(f, "weight blob is truncated"),
            WeightsError::ParameterMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "parameter {index}: expected shape {expected:?}, blob has {found:?}"
            ),
            WeightsError::CountMismatch { expected, found } => {
                write!(f, "network has {expected} parameters, blob has {found}")
            }
        }
    }
}

impl std::error::Error for WeightsError {}

/// Little-endian read cursor over a byte slice (local stand-in for the
/// `bytes::Buf` subset this module needs).
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn advance(&mut self, n: usize) {
        self.0 = &self.0[n..];
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.0[..4].try_into().expect("checked"));
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.0[..8].try_into().expect("checked"));
        self.advance(8);
        v
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Serialises parameters (values only, not gradients) into a binary blob.
/// Takes shared references — pair it with [`crate::UNet::params`], so a
/// network can be saved without mutable access.
pub fn save_params(params: &[&Param]) -> Vec<u8> {
    let total: usize = params
        .iter()
        .map(|p| 4 + p.value.shape().len() * 8 + p.value.len() * 4)
        .sum();
    let mut buf = Vec::with_capacity(16 + total);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        buf.extend_from_slice(&(p.value.shape().len() as u32).to_le_bytes());
        for &d in p.value.shape() {
            buf.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in p.value.data() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    buf
}

/// Restores parameter values from a blob produced by [`save_params`].
///
/// # Errors
///
/// Returns [`WeightsError`] when the blob is malformed or its parameter
/// list does not exactly match the network's.
pub fn load_params(params: &mut [&mut Param], blob: &[u8]) -> Result<(), WeightsError> {
    let mut buf = Reader(blob);
    if buf.remaining() < 16 || &blob[..8] != MAGIC {
        return Err(WeightsError::BadHeader);
    }
    buf.advance(8);
    if buf.get_u32_le() != VERSION {
        return Err(WeightsError::BadHeader);
    }
    let count = buf.get_u32_le() as usize;
    if count != params.len() {
        return Err(WeightsError::CountMismatch {
            expected: params.len(),
            found: count,
        });
    }
    for (index, p) in params.iter_mut().enumerate() {
        if buf.remaining() < 4 {
            return Err(WeightsError::Truncated);
        }
        let rank = buf.get_u32_le() as usize;
        if buf.remaining() < rank * 8 {
            return Err(WeightsError::Truncated);
        }
        let shape: Vec<usize> = (0..rank).map(|_| buf.get_u64_le() as usize).collect();
        if shape != p.value.shape() {
            return Err(WeightsError::ParameterMismatch {
                index,
                expected: p.value.shape().to_vec(),
                found: shape,
            });
        }
        let len = p.value.len();
        if buf.remaining() < len * 4 {
            return Err(WeightsError::Truncated);
        }
        for v in p.value.data_mut() {
            *v = buf.get_f32_le();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tensor, UNet, UNetConfig};
    use rand::SeedableRng;

    fn tiny() -> UNetConfig {
        UNetConfig {
            in_channels: 1,
            out_channels: 2,
            base_channels: 2,
            channel_mults: vec![1],
            num_res_blocks: 1,
            attn_resolutions: vec![],
            time_dim: 4,
            groups: 1,
            dropout: 0.0,
        }
    }

    #[test]
    fn round_trip_restores_outputs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut a = UNet::new(&tiny(), &mut rng);
        let mut b = UNet::new(&tiny(), &mut rng); // different random weights
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let ya = a.forward(&x, &[2]);
        assert!(ya.sub(&b.forward(&x, &[2])).max_abs() > 1e-6);

        let blob = save_params(&a.params());
        load_params(&mut b.params_mut(), &blob).unwrap();
        let yb = b.forward(&x, &[2]);
        for (p, q) in ya.data().iter().zip(yb.data()) {
            assert!((p - q).abs() < 1e-7);
        }
    }

    #[test]
    fn bad_header_is_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut net = UNet::new(&tiny(), &mut rng);
        assert_eq!(
            load_params(&mut net.params_mut(), b"NOTMAGIC0000"),
            Err(WeightsError::BadHeader)
        );
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut net = UNet::new(&tiny(), &mut rng);
        let blob = save_params(&net.params());
        let cut = &blob[..blob.len() / 2];
        assert_eq!(
            load_params(&mut net.params_mut(), cut),
            Err(WeightsError::Truncated)
        );
    }

    #[test]
    fn mismatched_architecture_is_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let small = UNet::new(&tiny(), &mut rng);
        let big_config = UNetConfig {
            base_channels: 4,
            ..tiny()
        };
        let mut big = UNet::new(&big_config, &mut rng);
        let blob = save_params(&small.params());
        let err = load_params(&mut big.params_mut(), &blob).unwrap_err();
        assert!(matches!(
            err,
            WeightsError::ParameterMismatch { .. } | WeightsError::CountMismatch { .. }
        ));
    }
}
