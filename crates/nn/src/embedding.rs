use crate::{Tensor, Workspace};

/// Sinusoidal position embedding of diffusion time steps (paper §IV-A,
/// following "Attention is All You Need").
///
/// Returns a `(batch, dim)` tensor where row `i` embeds `steps[i]`:
/// `emb[2k] = sin(t / 10000^(2k/dim))`, `emb[2k+1] = cos(...)`.
///
/// # Panics
///
/// Panics when `dim` is zero or odd.
pub fn sinusoidal_embedding(steps: &[usize], dim: usize) -> Tensor {
    let mut out = Tensor::zeros(&[steps.len(), dim.max(1)]);
    embed_into(steps, dim, &mut out);
    out
}

/// [`sinusoidal_embedding`] drawing its output from a [`Workspace`] — the
/// allocation-free variant the U-Net inference path uses.
///
/// # Panics
///
/// Panics when `dim` is zero or odd.
pub fn sinusoidal_embedding_ws(steps: &[usize], dim: usize, ws: &mut Workspace) -> Tensor {
    let mut out = ws.take_uninit(&[steps.len(), dim.max(1)]);
    embed_into(steps, dim, &mut out);
    out
}

fn embed_into(steps: &[usize], dim: usize, out: &mut Tensor) {
    assert!(
        dim > 0 && dim.is_multiple_of(2),
        "embedding dim must be even"
    );
    let half = dim / 2;
    for (i, &t) in steps.iter().enumerate() {
        let row = &mut out.data_mut()[i * dim..(i + 1) * dim];
        for k in 0..half {
            let freq = (10_000f32).powf(-(k as f32) / half as f32);
            let angle = t as f32 * freq;
            row[2 * k] = angle.sin();
            row[2 * k + 1] = angle.cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_range() {
        let e = sinusoidal_embedding(&[0, 1, 500], 16);
        assert_eq!(e.shape(), &[3, 16]);
        assert!(e.data().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn step_zero_is_cosine_one() {
        let e = sinusoidal_embedding(&[0], 8);
        for k in 0..4 {
            assert_eq!(e.data()[2 * k], 0.0);
            assert_eq!(e.data()[2 * k + 1], 1.0);
        }
    }

    #[test]
    fn distinct_steps_have_distinct_embeddings() {
        let e = sinusoidal_embedding(&[1, 2], 32);
        let a = &e.data()[..32];
        let b = &e.data()[32..];
        let diff: f32 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 0.1);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_dim_panics() {
        let _ = sinusoidal_embedding(&[1], 7);
    }
}
