use crate::{Param, Tensor};

/// Adam hyper-parameters (defaults follow the paper's training setup:
/// learning rate 2e-4, gradient clip 1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// Global-norm gradient clip; `None` disables clipping.
    pub grad_clip: Option<f32>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 2e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            grad_clip: Some(1.0),
        }
    }
}

/// The Adam optimizer with optional global-norm gradient clipping.
///
/// Moment buffers are kept inside the optimizer, keyed by parameter order,
/// so the same `Adam` instance must always be stepped with the same
/// parameter list (which [`crate::UNet::params_mut`] guarantees by
/// returning parameters in a stable order).
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an optimizer.
    pub fn new(config: AdamConfig) -> Self {
        Adam {
            config,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Applies one update to `params` using their accumulated gradients,
    /// then zeroes the gradients.
    ///
    /// # Panics
    ///
    /// Panics when the parameter list changes shape between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed");

        // Global-norm clipping across all parameters.
        if let Some(clip) = self.config.grad_clip {
            let norm_sq: f32 = params
                .iter()
                .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
                .sum();
            let norm = norm_sq.sqrt();
            if norm > clip {
                let scale = clip / norm;
                for p in params.iter_mut() {
                    for g in p.grad.data_mut() {
                        *g *= scale;
                    }
                }
            }
        }

        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.config.beta1.powf(t);
        let bc2 = 1.0 - self.config.beta2.powf(t);

        for (i, p) in params.iter_mut().enumerate() {
            assert_eq!(
                self.m[i].shape(),
                p.value.shape(),
                "parameter {i} changed shape"
            );
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            let grads = p.grad.data();
            // Update moments and compute the step in one pass.
            let mut updates = vec![0.0f32; grads.len()];
            for (j, &g) in grads.iter().enumerate() {
                m[j] = self.config.beta1 * m[j] + (1.0 - self.config.beta1) * g;
                v[j] = self.config.beta2 * v[j] + (1.0 - self.config.beta2) * g * g;
                let m_hat = m[j] / bc1;
                let v_hat = v[j] / bc2;
                updates[j] = self.config.lr * m_hat / (v_hat.sqrt() + self.config.eps);
            }
            for (value, u) in p.value.data_mut().iter_mut().zip(&updates) {
                *value -= u;
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimising f(x) = x^2 with Adam should converge to 0.
    #[test]
    fn converges_on_quadratic() {
        let mut p = Param::new(Tensor::full(&[1], 5.0));
        let mut adam = Adam::new(AdamConfig {
            lr: 0.1,
            grad_clip: None,
            ..AdamConfig::default()
        });
        for _ in 0..500 {
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * x;
            adam.step(&mut [&mut p]);
        }
        assert!(p.value.data()[0].abs() < 1e-2, "{}", p.value.data()[0]);
    }

    #[test]
    fn gradient_is_zeroed_after_step() {
        let mut p = Param::new(Tensor::full(&[3], 1.0));
        for g in p.grad.data_mut() {
            *g = 1.0;
        }
        let mut adam = Adam::new(AdamConfig::default());
        adam.step(&mut [&mut p]);
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
        assert_eq!(adam.steps_taken(), 1);
    }

    #[test]
    fn clipping_bounds_the_step() {
        let mut p = Param::new(Tensor::full(&[1], 0.0));
        p.grad.data_mut()[0] = 1e6;
        let mut adam = Adam::new(AdamConfig {
            lr: 1.0,
            grad_clip: Some(1.0),
            ..AdamConfig::default()
        });
        adam.step(&mut [&mut p]);
        // First Adam step with bias correction moves by ~lr regardless, but
        // clipping must have prevented inf/nan.
        assert!(p.value.data()[0].is_finite());
    }

    #[test]
    fn multi_param_moments_are_independent() {
        let mut a = Param::new(Tensor::full(&[1], 1.0));
        let mut b = Param::new(Tensor::full(&[2], 1.0));
        let mut adam = Adam::new(AdamConfig {
            lr: 0.01,
            grad_clip: None,
            ..AdamConfig::default()
        });
        a.grad.data_mut()[0] = 1.0;
        // b has zero grad: must not move.
        adam.step(&mut [&mut a, &mut b]);
        assert!(a.value.data()[0] < 1.0);
        assert!(b.value.data().iter().all(|&v| v == 1.0));
    }
}
