use crate::activation::silu_val;
use crate::{Param, Tensor, Workspace};

/// Group normalisation over NCHW tensors (the DDPM U-Net's normaliser).
///
/// Channels are split into `groups`; each `(batch, group)` slice is
/// standardised to zero mean / unit variance and then scaled and shifted by
/// the per-channel affine parameters `gamma` and `beta`.
#[derive(Debug, Clone)]
pub struct GroupNorm {
    /// Per-channel scale, initialised to one.
    pub gamma: Param,
    /// Per-channel shift, initialised to zero.
    pub beta: Param,
    groups: usize,
    eps: f32,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    input: Tensor,
    normalized: Tensor,
    inv_std: Vec<f32>, // per (n, group)
}

impl GroupNorm {
    /// Creates a GroupNorm layer.
    ///
    /// # Panics
    ///
    /// Panics when `channels` is not divisible by `groups` or `groups` is
    /// zero.
    pub fn new(groups: usize, channels: usize) -> Self {
        assert!(groups > 0, "groups must be positive");
        assert_eq!(channels % groups, 0, "channels must divide into groups");
        GroupNorm {
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            groups,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channel groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The variance stabiliser, for fused kernels that replicate this
    /// layer's arithmetic outside it.
    pub(crate) fn eps(&self) -> f32 {
        self.eps
    }

    /// Forward pass (training mode: caches what `backward` needs).
    ///
    /// # Panics
    ///
    /// Panics on non-4-D input or channel mismatch.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let (out, normalized, inv_std) = self.compute(x);
        self.cache = Some(Cache {
            input: x.clone(),
            normalized,
            inv_std,
        });
        out
    }

    /// Inference forward pass from a shared reference: identical
    /// arithmetic to [`GroupNorm::forward`] (bit-equal outputs, same
    /// accumulation order) with no caching; the output tensor comes from
    /// `ws`. Fused: the intermediate normalized tensor is never
    /// materialised.
    ///
    /// # Panics
    ///
    /// Same conditions as [`GroupNorm::forward`].
    pub fn infer(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let (n, c, h, w) = self.check_input(x);
        let cg = c / self.groups;
        let hw = h * w;
        let group_len = (cg * hw) as f32;
        let mut out = ws.take_uninit(x.shape());
        for ni in 0..n {
            for g in 0..self.groups {
                let start = (ni * c + g * cg) * hw;
                let xs = &x.data()[start..start + cg * hw];
                let (mean, inv_std) = group_stats(xs, group_len, self.eps);
                let os = &mut out.data_mut()[start..start + cg * hw];
                for (ci, (orow, xrow)) in os.chunks_mut(hw).zip(xs.chunks(hw)).enumerate() {
                    let gamma = self.gamma.value.data()[g * cg + ci];
                    let beta = self.beta.value.data()[g * cg + ci];
                    for (o, &v) in orow.iter_mut().zip(xrow) {
                        let xhat = (v - mean) * inv_std;
                        *o = gamma * xhat + beta;
                    }
                }
            }
        }
        out
    }

    /// GroupNorm immediately followed by SiLU, in one pass: bit-identical
    /// to [`GroupNorm::infer`] + [`crate::silu_in_place`] (the normalised
    /// affine value is materialised as the same f32 before the activation
    /// reads it), but the intermediate tensor is never written out cold.
    /// This is the norm-SiLU prefix of every residual block and of the
    /// output head.
    ///
    /// # Panics
    ///
    /// Same conditions as [`GroupNorm::forward`].
    pub fn infer_silu(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let (n, c, h, w) = self.check_input(x);
        let cg = c / self.groups;
        let hw = h * w;
        let group_len = (cg * hw) as f32;
        let mut out = ws.take_uninit(x.shape());
        for ni in 0..n {
            for g in 0..self.groups {
                let start = (ni * c + g * cg) * hw;
                let xs = &x.data()[start..start + cg * hw];
                let (mean, inv_std) = group_stats(xs, group_len, self.eps);
                let os = &mut out.data_mut()[start..start + cg * hw];
                for (ci, (orow, xrow)) in os.chunks_mut(hw).zip(xs.chunks(hw)).enumerate() {
                    let gamma = self.gamma.value.data()[g * cg + ci];
                    let beta = self.beta.value.data()[g * cg + ci];
                    for (o, &v) in orow.iter_mut().zip(xrow) {
                        let xhat = (v - mean) * inv_std;
                        *o = silu_val(gamma * xhat + beta);
                    }
                }
            }
        }
        out
    }

    fn check_input(&self, x: &Tensor) -> (usize, usize, usize, usize) {
        assert_eq!(x.shape().len(), 4, "groupnorm expects NCHW input");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.gamma.value.len(), "channel mismatch");
        (n, c, h, w)
    }

    /// Shared normalisation kernel: returns `(out, normalized, inv_std)`.
    fn compute(&self, x: &Tensor) -> (Tensor, Tensor, Vec<f32>) {
        let (n, c, h, w) = self.check_input(x);
        let cg = c / self.groups;
        let hw = h * w;
        let group_len = (cg * hw) as f32;

        let mut normalized = Tensor::zeros(x.shape());
        let mut out = Tensor::zeros(x.shape());
        let mut inv_stds = vec![0.0f32; n * self.groups];

        for ni in 0..n {
            for g in 0..self.groups {
                let start = (ni * c + g * cg) * hw;
                let xs = &x.data()[start..start + cg * hw];
                let (mean, inv_std) = group_stats(xs, group_len, self.eps);
                inv_stds[ni * self.groups + g] = inv_std;
                for ci in 0..cg {
                    let gamma = self.gamma.value.data()[g * cg + ci];
                    let beta = self.beta.value.data()[g * cg + ci];
                    let span = start + ci * hw..start + (ci + 1) * hw;
                    for ((nv, ov), &v) in normalized.data_mut()[span.clone()]
                        .iter_mut()
                        .zip(&mut out.data_mut()[span])
                        .zip(&xs[ci * hw..(ci + 1) * hw])
                    {
                        let xhat = (v - mean) * inv_std;
                        *nv = xhat;
                        *ov = gamma * xhat + beta;
                    }
                }
            }
        }

        (out, normalized, inv_stds)
    }

    /// Backward pass: accumulates `gamma`/`beta` gradients, returns grad wrt
    /// input.
    ///
    /// # Panics
    ///
    /// Panics when called before `forward` or on shape mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let x = &cache.input;
        assert_eq!(grad_out.shape(), x.shape(), "grad_out shape mismatch");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let cg = c / self.groups;
        let group_len = (cg * h * w) as f32;

        // Per-channel affine gradients.
        for ci in 0..c {
            let mut dg = 0.0f32;
            let mut db = 0.0f32;
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        let g = grad_out.at4(ni, ci, hi, wi);
                        dg += g * cache.normalized.at4(ni, ci, hi, wi);
                        db += g;
                    }
                }
            }
            self.gamma.grad.data_mut()[ci] += dg;
            self.beta.grad.data_mut()[ci] += db;
        }

        // Input gradient per (n, group):
        // dxhat = grad_out * gamma
        // dx = inv_std/Ng * (Ng*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
        let mut grad_in = Tensor::zeros(x.shape());
        for ni in 0..n {
            for g in 0..self.groups {
                let inv_std = cache.inv_std[ni * self.groups + g];
                let mut sum_dxhat = 0.0f32;
                let mut sum_dxhat_xhat = 0.0f32;
                for ci in g * cg..(g + 1) * cg {
                    let gamma = self.gamma.value.data()[ci];
                    for hi in 0..h {
                        for wi in 0..w {
                            let dxhat = grad_out.at4(ni, ci, hi, wi) * gamma;
                            sum_dxhat += dxhat;
                            sum_dxhat_xhat += dxhat * cache.normalized.at4(ni, ci, hi, wi);
                        }
                    }
                }
                for ci in g * cg..(g + 1) * cg {
                    let gamma = self.gamma.value.data()[ci];
                    for hi in 0..h {
                        for wi in 0..w {
                            let dxhat = grad_out.at4(ni, ci, hi, wi) * gamma;
                            let xhat = cache.normalized.at4(ni, ci, hi, wi);
                            let dx = inv_std / group_len
                                * (group_len * dxhat - sum_dxhat - xhat * sum_dxhat_xhat);
                            grad_in.set4(ni, ci, hi, wi, dx);
                        }
                    }
                }
            }
        }
        grad_in
    }

    /// Mutable access to the parameters, in a stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    /// Shared access to the parameters, in the same stable order as
    /// [`GroupNorm::params_mut`].
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }
}

/// Mean and inverse standard deviation of one `(batch, group)` slice,
/// accumulated in memory order (the order every code path shares so
/// `forward`, `infer` and the fused GEMM epilogues stay bit-equal).
pub(crate) fn group_stats(xs: &[f32], group_len: f32, eps: f32) -> (f32, f32) {
    let mut mean = 0.0f32;
    for &v in xs {
        mean += v;
    }
    mean /= group_len;
    let mut var = 0.0f32;
    for &v in xs {
        let d = v - mean;
        var += d * d;
    }
    var /= group_len;
    (mean, 1.0 / (var + eps).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{assert_close, finite_diff};
    use rand::SeedableRng;

    #[test]
    fn infer_matches_forward_bit_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut norm = GroupNorm::new(2, 6);
        for (g, b) in norm
            .gamma
            .value
            .data_mut()
            .iter_mut()
            .zip([0.5, -1.0, 2.0, 1.5, 0.1, -0.3])
        {
            *g = b;
        }
        let x = Tensor::randn(&[2, 6, 4, 4], 2.0, &mut rng);
        let mut ws = Workspace::new();
        assert_eq!(norm.infer(&x, &mut ws), norm.forward(&x));
    }

    #[test]
    fn infer_silu_matches_infer_then_silu_bit_exactly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut norm = GroupNorm::new(2, 6);
        for (g, b) in norm
            .gamma
            .value
            .data_mut()
            .iter_mut()
            .zip([0.5, -1.0, 2.0, 1.5, 0.1, -0.3])
        {
            *g = b;
        }
        let x = Tensor::randn(&[3, 6, 4, 4], 2.0, &mut rng);
        let mut ws = Workspace::new();
        let fused = norm.infer_silu(&x, &mut ws);
        let mut reference = norm.infer(&x, &mut ws);
        crate::silu_in_place(&mut reference);
        assert_eq!(fused, reference);
    }

    #[test]
    fn output_is_standardised_per_group() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut norm = GroupNorm::new(2, 4);
        let x = Tensor::randn(&[2, 4, 5, 5], 3.0, &mut rng);
        let y = norm.forward(&x);
        // With gamma=1 beta=0 each (n, group) slice has ~zero mean, unit var.
        for ni in 0..2 {
            for g in 0..2 {
                let mut vals = Vec::new();
                for ci in g * 2..(g + 1) * 2 {
                    for hi in 0..5 {
                        for wi in 0..5 {
                            vals.push(y.at4(ni, ci, hi, wi));
                        }
                    }
                }
                let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
                let var: f32 =
                    vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
                assert!(mean.abs() < 1e-4, "mean {mean}");
                assert!((var - 1.0).abs() < 1e-2, "var {var}");
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let norm = GroupNorm::new(2, 4);
        let x = Tensor::randn(&[1, 4, 3, 3], 1.0, &mut rng);
        // Non-trivial loss weights to exercise all terms.
        let w = Tensor::randn(&[1, 4, 3, 3], 1.0, &mut rng);
        let mut live = norm.clone();
        let _ = live.forward(&x);
        let analytic = live.backward(&w);
        let base = norm.clone();
        let w2 = w.clone();
        let numeric = finite_diff(&x, move |t| {
            let mut n = base.clone();
            n.forward(t)
                .data()
                .iter()
                .zip(w2.data())
                .map(|(a, b)| a * b)
                .sum()
        });
        assert_close(&analytic, &numeric, 3e-2, "groupnorm dx");
    }

    #[test]
    fn affine_gradients_match_finite_difference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let norm = GroupNorm::new(1, 2);
        let x = Tensor::randn(&[2, 2, 2, 2], 1.0, &mut rng);
        let mut live = norm.clone();
        let y = live.forward(&x);
        let _ = live.backward(&Tensor::full(y.shape(), 1.0));

        let base = norm.clone();
        let x2 = x.clone();
        let numeric_gamma = finite_diff(&norm.gamma.value, move |g| {
            let mut n = base.clone();
            n.gamma.value = g.clone();
            n.forward(&x2).sum()
        });
        assert_close(&live.gamma.grad, &numeric_gamma, 2e-2, "groupnorm dgamma");

        let base = norm.clone();
        let x2 = x.clone();
        let numeric_beta = finite_diff(&norm.beta.value, move |b| {
            let mut n = base.clone();
            n.beta.value = b.clone();
            n.forward(&x2).sum()
        });
        assert_close(&live.beta.grad, &numeric_beta, 2e-2, "groupnorm dbeta");
    }

    #[test]
    #[should_panic(expected = "channels must divide")]
    fn bad_group_count_panics() {
        let _ = GroupNorm::new(3, 4);
    }
}
