//! Numeric precision of prepacked inference weights.
//!
//! The GEMM kernels always accumulate in f32; the knob here controls only
//! the representation of the *frozen packed weight copies* built by the
//! `prepack_with` family. [`Precision::Bf16`] rounds every packed weight
//! value to its nearest bfloat16 (round-to-nearest-even) and stores it
//! re-widened to f32, halving the effective weight mantissa while keeping
//! the kernels, layouts and accumulation order untouched. Biases and
//! normalisation parameters stay exact — they are O(channels), not
//! O(channels²), so rounding them buys nothing.
//!
//! The accuracy contract: [`Precision::Exact`] (the default everywhere)
//! is bit-identical to the unpacked path. `Bf16` changes sampled outputs
//! — it is opt-in, and downstream legality is still guaranteed because
//! the pattern solver operates on whatever the sampler emits.

/// Weight precision of the prepacked inference path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Packed weights are exact f32 copies: inference is bit-identical to
    /// the unpacked path. The default.
    #[default]
    Exact,
    /// Packed weights are rounded to bfloat16 (stored widened to f32, so
    /// the kernels are unchanged); accumulation stays f32.
    Bf16,
}

impl Precision {
    /// Stable lowercase name, used by CLIs and the wire codec.
    pub fn name(self) -> &'static str {
        match self {
            Precision::Exact => "exact",
            Precision::Bf16 => "bf16",
        }
    }

    /// Parses the stable name produced by [`Precision::name`].
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "exact" => Some(Precision::Exact),
            "bf16" => Some(Precision::Bf16),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Rounds an f32 to its nearest bfloat16 value (round-to-nearest-even)
/// and returns it widened back to f32 — i.e. the low 16 mantissa bits are
/// cleared after rounding. Infinities pass through; NaNs stay NaN (the
/// payload may change).
pub fn bf16_round(v: f32) -> f32 {
    let bits = v.to_bits();
    if v.is_nan() {
        // Force a quiet NaN without letting the rounding add wrap the
        // payload into an infinity bit pattern.
        return f32::from_bits((bits | 0x0040_0000) & 0xFFFF_0000);
    }
    let rounded = bits.wrapping_add(0x7FFF + ((bits >> 16) & 1));
    f32::from_bits(rounded & 0xFFFF_0000)
}

/// Rounds a slice in place with [`bf16_round`].
pub(crate) fn bf16_round_slice(values: &mut [f32]) {
    for v in values {
        *v = bf16_round(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in [Precision::Exact, Precision::Bf16] {
            assert_eq!(Precision::parse(p.name()), Some(p));
        }
        assert_eq!(Precision::parse("fp8"), None);
        assert_eq!(Precision::default(), Precision::Exact);
    }

    #[test]
    fn bf16_round_known_values() {
        // Values exactly representable in bf16 are unchanged.
        let bf16_max = f32::from_bits(0x7F7F_0000);
        for v in [0.0f32, 1.0, -2.0, 0.5, 1.5, f32::INFINITY, -bf16_max] {
            assert_eq!(bf16_round(v), v, "{v}");
        }
        // 1 + 2^-8 is exactly halfway between the bf16 neighbours 1.0 and
        // 1 + 2^-7; nearest-even sends it down to 1.0.
        let half_way = f32::from_bits(0x3F80_8000);
        assert_eq!(bf16_round(half_way), 1.0);
        // Just above the halfway point rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(bf16_round(above), f32::from_bits(0x3F81_0000));
        // Relative error is bounded by the bf16 epsilon.
        for i in 0..1000 {
            let v = 0.37f32 * i as f32 - 180.0;
            let r = bf16_round(v);
            if v != 0.0 {
                assert!(((r - v) / v).abs() <= 1.0 / 256.0, "{v} -> {r}");
            }
        }
    }

    #[test]
    fn bf16_round_preserves_nan_and_sign() {
        assert!(bf16_round(f32::NAN).is_nan());
        assert_eq!(bf16_round(-0.0f32).to_bits(), (-0.0f32).to_bits());
        assert_eq!(bf16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }
}
